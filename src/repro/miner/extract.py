"""Documentation → syntax DSL extraction.

The deterministic stand-in for the paper's tuned LLM (see DESIGN.md
substitution table): a rule-based reader of SYNOPSIS/OPTIONS sections
emitting :class:`~repro.miner.syntax.SyntaxSpec` terms.  Exactly like
the paper's frontend, anything it emits is confined to the guardrail DSL
— downstream stages (generation, probing, compilation) cannot observe
any difference in provenance.
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from .manpages import load_page, sections
from .syntax import FlagSpec, OperandSpec, SyntaxSpec


class ExtractionError(ValueError):
    """The documentation does not describe a usable invocation syntax."""


_FLAG_GROUP = re.compile(r"\[-([A-Za-z0-9]+)\]")
_FLAG_WITH_ARG = re.compile(r"\[-([A-Za-z0-9])\s+(\w+)\]")
_OPERAND = re.compile(r"(\[)?(\w+?)(\.\.\.)?(\])?\s*$")
_OPTION_LINE = re.compile(r"^\s+-([A-Za-z0-9])(?:\s+(\w+))?\s*$|^\s+-([A-Za-z0-9])\s{2,}(\S.*)$")

#: operand names that denote file-system paths
_PATHY = {"file", "files", "dir", "directory", "path", "source_file",
          "target_file", "ref_file", "pathname"}


def extract_syntax(name: str, page_text: Optional[str] = None) -> SyntaxSpec:
    """Derive a command's invocation syntax from its documentation."""
    text = page_text if page_text is not None else load_page(name)
    parts = sections(text)
    synopsis = parts.get("SYNOPSIS", "").strip()
    if not synopsis:
        raise ExtractionError(f"{name}: documentation has no SYNOPSIS")

    spec = SyntaxSpec(name=name)
    name_section = parts.get("NAME", "")
    if "-" in name_section:
        spec.summary = name_section.split("-", 1)[1].strip()

    first_line = synopsis.splitlines()[0].strip()
    if not first_line.startswith(name):
        raise ExtractionError(f"{name}: SYNOPSIS does not start with the command")
    rest = first_line[len(name):].strip()

    # flags with arguments: [-m mode]
    for match in _FLAG_WITH_ARG.finditer(rest):
        char, hint = match.groups()
        spec.flags[char] = FlagSpec(char, takes_arg=True, arg_hint=hint)
    rest = _FLAG_WITH_ARG.sub("", rest)

    # grouped boolean flags: [-firRdv]
    for match in _FLAG_GROUP.finditer(rest):
        for char in match.group(1):
            if char not in spec.flags:
                spec.flags[char] = FlagSpec(char)
    rest = _FLAG_GROUP.sub("", rest).strip()

    # operands
    spec.operands = _parse_operands(rest)

    # OPTIONS section: descriptions and takes-arg confirmation
    options = parts.get("OPTIONS")
    if options is None:
        spec.incomplete = True
    else:
        _enrich_from_options(spec, options)

    return spec


def _parse_operands(rest: str) -> OperandSpec:
    rest = rest.strip()
    if not rest:
        return OperandSpec(min_count=0, max_count=0, kind="none", name="")
    words = rest.split()
    if len(words) == 2 and all(w.rstrip(".") for w in words):
        # e.g. "source_file target_file"
        kind = "path" if any(w in _PATHY for w in words) else "string"
        return OperandSpec(min_count=2, max_count=2, kind=kind, name=words[0])
    token = words[0]
    optional = token.startswith("[")
    token = token.strip("[]")
    variadic = token.endswith("...")
    token = token.rstrip(".")
    kind = "path" if token in _PATHY else "string"
    return OperandSpec(
        min_count=0 if optional else 1,
        max_count=None if variadic else 1,
        kind=kind,
        name=token or "file",
    )


def _enrich_from_options(spec: SyntaxSpec, options_text: str) -> None:
    current_flag: Optional[str] = None
    for line in options_text.splitlines():
        match = re.match(r"^\s+-([A-Za-z0-9])(\s+(\w+))?\s*$", line)
        if match:
            char, _, arg = match.groups()
            existing = spec.flags.get(char)
            spec.flags[char] = FlagSpec(
                char,
                takes_arg=bool(arg) or (existing.takes_arg if existing else False),
                arg_hint=arg or (existing.arg_hint if existing else ""),
                description=existing.description if existing else "",
            )
            current_flag = char
            continue
        match = re.match(r"^\s+-([A-Za-z0-9])\s{2,}(\S.*)$", line)
        if match:
            char, description = match.groups()
            existing = spec.flags.get(char)
            spec.flags[char] = FlagSpec(
                char,
                takes_arg=existing.takes_arg if existing else False,
                arg_hint=existing.arg_hint if existing else "",
                description=description.strip(),
            )
            current_flag = char
            continue
        if current_flag and line.strip():
            existing = spec.flags[current_flag]
            spec.flags[current_flag] = FlagSpec(
                existing.char,
                existing.takes_arg,
                existing.arg_hint,
                (existing.description + " " + line.strip()).strip(),
            )
