"""The guardrail DSL: invocation syntax per the XBD utility conventions.

Fig. 4 (left): the LLM's output is *guardrailed via a domain-specific
language designed to express only legitimate invocations*.  This module
is that DSL — whatever front end produced it (LLM or our deterministic
extractor), only terms of this grammar flow into invocation generation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class FlagSpec:
    char: str
    takes_arg: bool = False
    arg_hint: str = ""
    description: str = ""

    def render(self) -> str:
        if self.takes_arg:
            return f"-{self.char} {self.arg_hint or 'value'}"
        return f"-{self.char}"


@dataclass(frozen=True)
class OperandSpec:
    """``file...`` → min 1 unbounded paths; ``[file...]`` → min 0; ...

    kind: "path" when the operand names a file-system object.
    """

    min_count: int = 0
    max_count: Optional[int] = None
    kind: str = "path"
    name: str = "file"


@dataclass
class SyntaxSpec:
    """A command's legitimate invocation syntax."""

    name: str
    flags: Dict[str, FlagSpec] = field(default_factory=dict)
    operands: OperandSpec = field(default_factory=OperandSpec)
    summary: str = ""
    #: True when the source documentation was incomplete (no OPTIONS)
    incomplete: bool = False

    def validate(self, argv: Sequence[str]) -> Optional[str]:
        """None when argv is a legitimate invocation, else the reason."""
        if not argv or argv[0] != self.name:
            return f"expected command {self.name!r}"
        operand_count = 0
        idx = 1
        while idx < len(argv):
            arg = argv[idx]
            if arg.startswith("-") and arg != "-" and operand_count == 0:
                for char in arg[1:]:
                    spec = self.flags.get(char)
                    if spec is None:
                        return f"unknown flag -{char}"
                    if spec.takes_arg:
                        idx += 1
                        if idx >= len(argv):
                            return f"-{char} requires an argument"
                        break
            else:
                operand_count += 1
            idx += 1
        if operand_count < self.operands.min_count:
            return (
                f"needs at least {self.operands.min_count} operand(s), "
                f"got {operand_count}"
            )
        if (
            self.operands.max_count is not None
            and operand_count > self.operands.max_count
        ):
            return f"accepts at most {self.operands.max_count} operand(s)"
        return None

    def flag_combinations(
        self, max_flags: int = 2, exclude: Sequence[str] = ("i", "v")
    ) -> Iterator[Tuple[str, ...]]:
        """Flag sets to sweep: ∅, singletons, pairs (the paper's
        ``rm { , -f, -r, -f -r } $p``).  Interactive/cosmetic flags are
        excluded from probing."""
        chars = [
            c
            for c, spec in sorted(self.flags.items())
            if c not in exclude and not spec.takes_arg
        ]
        for size in range(0, max_flags + 1):
            for combo in itertools.combinations(chars, size):
                yield tuple("-" + c for c in combo)

    def render(self) -> str:
        flag_text = "".join(sorted(self.flags))
        flag_part = f" [-{flag_text}]" if flag_text else ""
        operand = self.operands.name
        if self.operands.max_count is None:
            operand += "..."
        if self.operands.min_count == 0:
            operand = f"[{operand}]"
        return f"{self.name}{flag_part} {operand}"
