"""Invocation and environment generation (Fig. 4, left → mid).

From a syntax DSL term, generate all valid invocations — sweeping flag
combinations — paired with the execution environments to probe them in:
the operand as an extant file, an extant directory (with contents), or a
missing path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .syntax import SyntaxSpec

#: Operand scenarios: the relevant file-system states of §3 ("including
#: cases where $p is a file, a directory, or non-existent").
SCENARIOS = ("file", "dir", "missing")


@dataclass(frozen=True)
class Invocation:
    """One probe configuration."""

    name: str
    flags: Tuple[str, ...]
    scenarios: Tuple[str, ...]  # one per operand

    def argv(self, operand_paths: Sequence[str]) -> List[str]:
        return [self.name, *self.flags, *operand_paths]

    def describe(self) -> str:
        flag_text = " ".join(self.flags) or "(no flags)"
        return f"{self.name} {flag_text} on {'/'.join(self.scenarios)}"


def generate_invocations(
    spec: SyntaxSpec,
    max_flags: int = 2,
    scenarios: Sequence[str] = SCENARIOS,
) -> List[Invocation]:
    """The probe matrix: flag sweeps × operand-state sweeps."""
    n_operands = spec.operands.min_count
    if n_operands == 0 and spec.operands.max_count != 0:
        n_operands = 1  # probe optional operands with one operand present
    result: List[Invocation] = []
    for flags in spec.flag_combinations(max_flags=max_flags):
        if n_operands == 0:
            result.append(Invocation(spec.name, flags, ()))
            continue
        for combo in itertools.product(scenarios, repeat=n_operands):
            result.append(Invocation(spec.name, flags, combo))
    return result


def validate_all(spec: SyntaxSpec, invocations: Sequence[Invocation]) -> None:
    """Guardrail re-check: every generated invocation must be legitimate
    under the DSL term (defence against frontend drift)."""
    for invocation in invocations:
        operands = [f"op{i}" for i in range(len(invocation.scenarios))]
        reason = spec.validate(invocation.argv(operands))
        if reason is not None:
            raise ValueError(
                f"generated an illegitimate invocation "
                f"{invocation.describe()}: {reason}"
            )
