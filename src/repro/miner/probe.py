"""Instrumented probing (Fig. 4, mid).

Each invocation is executed in a freshly instantiated concrete
environment, with interposition recording its interactions.  Two probe
executors are provided:

- :class:`SubprocessProber` — runs the *real* binary in a temporary
  directory and derives the trace from before/after file-system
  snapshots (our substitute for system-call tracing; see DESIGN.md);
- :class:`ModelProber` — a pure-Python executable model of the classic
  utilities, used where binaries are unavailable and for fast
  deterministic benchmarking.

Both produce identical :class:`ProbeTrace` records, so the downstream
spec compiler cannot tell them apart.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .generate import Invocation

Snapshot = Dict[str, str]  # relpath -> "file" | "dir"


@dataclass
class ProbeTrace:
    """What one probed execution did."""

    invocation: Invocation
    exit_code: int
    before: Snapshot
    after: Snapshot
    stdout: str = ""
    stderr: str = ""
    #: the probed process hung past the prober's timeout (on both the
    #: initial attempt and the backed-off retry) and was killed; the
    #: trace reflects whatever the partial execution left behind
    timed_out: bool = False

    @property
    def deleted(self) -> List[str]:
        return sorted(set(self.before) - set(self.after))

    @property
    def created(self) -> List[str]:
        return sorted(set(self.after) - set(self.before))

    def operand_outcome(self, idx: int = 0) -> Tuple[Optional[str], Optional[str]]:
        """(kind before, kind after) of operand ``opN``."""
        name = f"op{idx}"
        return self.before.get(name), self.after.get(name)


def _setup_environment(root: str, scenarios: Sequence[str]) -> List[str]:
    """Materialise operand states; returns operand paths (relative)."""
    operands = []
    for idx, scenario in enumerate(scenarios):
        name = f"op{idx}"
        path = os.path.join(root, name)
        if scenario == "file":
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("probe-content\n")
        elif scenario == "dir":
            os.mkdir(path)
            with open(os.path.join(path, "inner.txt"), "w", encoding="utf-8") as handle:
                handle.write("inner\n")
        elif scenario == "missing":
            pass
        else:
            raise ValueError(f"unknown scenario {scenario!r}")
        operands.append(name)
    return operands


def _snapshot(root: str) -> Snapshot:
    result: Snapshot = {}
    for dirpath, dirnames, filenames in os.walk(root):
        for dirname in dirnames:
            rel = os.path.relpath(os.path.join(dirpath, dirname), root)
            result[rel] = "dir"
        for filename in filenames:
            rel = os.path.relpath(os.path.join(dirpath, filename), root)
            result[rel] = "file"
    return result


def _kill_process_group(proc: "subprocess.Popen") -> None:
    """Kill the probed process and everything it spawned (it runs in its
    own session, so the group id equals its pid)."""
    try:
        if hasattr(os, "killpg"):
            os.killpg(proc.pid, signal.SIGKILL)
        else:
            proc.kill()
    except (ProcessLookupError, PermissionError, OSError):
        proc.kill()


class SubprocessProber:
    """Probe by executing the real utility in a sandbox directory.

    A probed binary that hangs (interactive prompt, network wait, fork
    bomb) is killed along with its whole process group when ``timeout``
    expires, then retried once after ``retry_backoff`` seconds in a
    fresh sandbox with a doubled deadline.  A second hang yields a
    :class:`ProbeTrace` with ``timed_out=True`` and exit code 124 (the
    ``timeout(1)`` convention) instead of an exception, so one
    pathological invocation cannot abort a mining run.
    """

    #: exit code reported for killed-on-timeout probes (timeout(1) convention)
    TIMEOUT_EXIT = 124

    def __init__(self, timeout: float = 5.0, retry_backoff: float = 0.5):
        self.timeout = timeout
        self.retry_backoff = retry_backoff

    def available(self, name: str) -> bool:
        return shutil.which(name) is not None

    def probe(self, invocation: Invocation) -> ProbeTrace:
        trace = self._attempt(invocation, self.timeout)
        if trace.timed_out:
            time.sleep(self.retry_backoff)
            trace = self._attempt(invocation, self.timeout * 2)
        return trace

    def _attempt(self, invocation: Invocation, timeout: float) -> ProbeTrace:
        with tempfile.TemporaryDirectory(prefix="repro-probe-") as root:
            operands = _setup_environment(root, invocation.scenarios)
            before = _snapshot(root)
            proc = subprocess.Popen(
                invocation.argv(operands),
                cwd=root,
                stdin=subprocess.DEVNULL,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                start_new_session=True,
            )
            timed_out = False
            try:
                stdout, stderr = proc.communicate(timeout=timeout)
            except subprocess.TimeoutExpired:
                timed_out = True
                _kill_process_group(proc)
                try:
                    stdout, stderr = proc.communicate(timeout=5.0)
                except subprocess.TimeoutExpired:
                    stdout, stderr = "", ""
            after = _snapshot(root)
            return ProbeTrace(
                invocation=invocation,
                exit_code=self.TIMEOUT_EXIT if timed_out else proc.returncode,
                before=before,
                after=after,
                stdout=stdout or "",
                stderr=stderr or "",
                timed_out=timed_out,
            )


class ModelProber:
    """Executable Python models of the classic utilities.

    Deliberately written from the POSIX descriptions (not from our spec
    corpus) so that E7's mined-vs-handwritten comparison stays a real
    cross-check.
    """

    def available(self, name: str) -> bool:
        return name in _MODELS

    def probe(self, invocation: Invocation) -> ProbeTrace:
        fs: Dict[str, str] = {}
        operands = []
        for idx, scenario in enumerate(invocation.scenarios):
            name = f"op{idx}"
            if scenario == "file":
                fs[name] = "file"
            elif scenario == "dir":
                fs[name] = "dir"
                fs[f"{name}/inner.txt"] = "file"
            operands.append(name)
        before = dict(fs)
        model = _MODELS[invocation.name]
        exit_code, stdout, stderr = model(set(invocation.flags), operands, fs)
        return ProbeTrace(
            invocation=invocation,
            exit_code=exit_code,
            before=before,
            after=fs,
            stdout=stdout,
            stderr=stderr,
        )


# -- utility models -----------------------------------------------------------


def _descendants(fs: Dict[str, str], path: str) -> List[str]:
    return [p for p in fs if p == path or p.startswith(path + "/")]


def _model_rm(flags, operands, fs):
    recursive = "-r" in flags or "-R" in flags
    force = "-f" in flags
    exit_code, stderr = 0, ""
    for op in operands:
        kind = fs.get(op)
        if kind is None:
            if not force:
                exit_code, stderr = 1, f"rm: {op}: No such file or directory\n"
            continue
        if kind == "dir" and not recursive and "-d" not in flags:
            exit_code, stderr = 1, f"rm: {op}: is a directory\n"
            continue
        if kind == "dir" and "-d" in flags and not recursive:
            if len(_descendants(fs, op)) > 1:
                exit_code, stderr = 1, f"rm: {op}: Directory not empty\n"
                continue
        for path in _descendants(fs, op):
            del fs[path]
    return exit_code, "", stderr


def _model_mkdir(flags, operands, fs):
    parents = "-p" in flags
    exit_code, stderr = 0, ""
    for op in operands:
        if op in fs:
            if not parents or fs[op] != "dir":
                exit_code, stderr = 1, f"mkdir: {op}: File exists\n"
            continue
        parent = os.path.dirname(op)
        if parent and parent not in fs:
            if parents:
                fs[parent] = "dir"
            else:
                exit_code, stderr = 1, f"mkdir: {parent}: No such file or directory\n"
                continue
        fs[op] = "dir"
    return exit_code, "", stderr


def _model_rmdir(flags, operands, fs):
    exit_code, stderr = 0, ""
    for op in operands:
        kind = fs.get(op)
        if kind != "dir":
            exit_code = 1
            stderr = f"rmdir: {op}: Not a directory\n" if kind else f"rmdir: {op}: No such file or directory\n"
            continue
        if len(_descendants(fs, op)) > 1:
            exit_code, stderr = 1, f"rmdir: {op}: Directory not empty\n"
            continue
        del fs[op]
    return exit_code, "", stderr


def _model_touch(flags, operands, fs):
    create = "-c" not in flags
    for op in operands:
        if op not in fs and create:
            fs[op] = "file"
    return 0, "", ""


def _model_cp(flags, operands, fs):
    if len(operands) < 2:
        return 1, "", "cp: missing operand\n"
    recursive = "-r" in flags or "-R" in flags
    *sources, dest = operands
    exit_code, stderr = 0, ""
    for src in sources:
        kind = fs.get(src)
        if kind is None:
            exit_code, stderr = 1, f"cp: {src}: No such file or directory\n"
            continue
        if kind == "dir" and not recursive:
            exit_code, stderr = 1, f"cp: {src} is a directory (not copied)\n"
            continue
        target = dest
        if fs.get(dest) == "dir":
            target = f"{dest}/{os.path.basename(src)}"
        for path in _descendants(fs, src):
            fs[target + path[len(src):]] = fs[path]
    return exit_code, "", stderr


def _model_mv(flags, operands, fs):
    if len(operands) < 2:
        return 1, "", "mv: missing operand\n"
    *sources, dest = operands
    exit_code, stderr = 0, ""
    for src in sources:
        kind = fs.get(src)
        if kind is None:
            exit_code, stderr = 1, f"mv: {src}: No such file or directory\n"
            continue
        target = dest
        if fs.get(dest) == "dir":
            target = f"{dest}/{os.path.basename(src)}"
        for path in sorted(_descendants(fs, src)):
            fs[target + path[len(src):]] = fs.pop(path)
    return exit_code, "", stderr


def _model_ln(flags, operands, fs):
    if len(operands) < 2:
        return 1, "", "ln: missing operand\n"
    src, dest = operands[0], operands[-1]
    if src not in fs and "-s" not in flags:
        return 1, "", f"ln: {src}: No such file or directory\n"
    if dest in fs:
        if "-f" not in flags:
            return 1, "", f"ln: {dest}: File exists\n"
        for path in _descendants(fs, dest):
            del fs[path]
    fs[dest] = "file"
    return 0, "", ""


def _model_cat(flags, operands, fs):
    out = []
    for op in operands:
        kind = fs.get(op)
        if kind is None:
            return 1, "".join(out), f"cat: {op}: No such file or directory\n"
        if kind == "dir":
            return 1, "".join(out), f"cat: {op}: Is a directory\n"
        out.append("probe-content\n")
    return 0, "".join(out), ""


def _model_ls(flags, operands, fs):
    out = []
    exit_code, stderr = 0, ""
    for op in operands or ["."]:
        kind = fs.get(op)
        if op != "." and kind is None:
            exit_code, stderr = 1, f"ls: {op}: No such file or directory\n"
            continue
        if kind == "dir":
            entries = sorted(
                p[len(op) + 1:] for p in fs if p.startswith(op + "/") and "/" not in p[len(op) + 1:]
            )
            out.extend(e + "\n" for e in entries)
        elif kind == "file":
            out.append(op + "\n")
    return exit_code, "".join(out), stderr


def _model_realpath(flags, operands, fs):
    out = []
    exit_code, stderr = 0, ""
    for op in operands:
        if op not in fs:
            exit_code, stderr = 1, f"realpath: {op}: No such file or directory\n"
            continue
        out.append(f"/sandbox/{op}\n")
    return exit_code, "".join(out), stderr


def _model_wc(flags, operands, fs):
    out = []
    exit_code, stderr = 0, ""
    for op in operands:
        kind = fs.get(op)
        if kind != "file":
            exit_code, stderr = 1, f"wc: {op}: cannot read\n"
            continue
        out.append(f"1 1 14 {op}\n")
    return exit_code, "".join(out), stderr


def _model_head(flags, operands, fs):
    return _model_cat(flags, operands, fs)


def _model_frob(flags, operands, fs):
    # the under-documented tool: succeeds on files, fails otherwise
    for op in operands:
        if fs.get(op) != "file":
            return 1, "", "frob: bad input\n"
    return 0, "frobbed\n", ""


_MODELS = {
    "rm": _model_rm,
    "mkdir": _model_mkdir,
    "rmdir": _model_rmdir,
    "touch": _model_touch,
    "cp": _model_cp,
    "mv": _model_mv,
    "ln": _model_ln,
    "cat": _model_cat,
    "ls": _model_ls,
    "realpath": _model_realpath,
    "wc": _model_wc,
    "head": _model_head,
    "frob": _model_frob,
}


def probe_all(
    invocations: Sequence[Invocation],
    prober: Optional[object] = None,
) -> List[ProbeTrace]:
    """Probe every invocation, preferring the supplied prober."""
    prober = prober if prober is not None else ModelProber()
    traces = []
    for invocation in invocations:
        if not prober.available(invocation.name):
            continue
        traces.append(prober.probe(invocation))
    return traces
