"""Access to the bundled man-page corpus.

Stands in for "man pages, markdown files, web pages, etc." (§3): a set
of roff-free text pages in the classic NAME/SYNOPSIS/OPTIONS layout.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

_PAGES_DIR = os.path.join(os.path.dirname(__file__), "pages")


def page_names() -> List[str]:
    return sorted(
        name[:-4] for name in os.listdir(_PAGES_DIR) if name.endswith(".txt")
    )


def load_page(name: str) -> str:
    path = os.path.join(_PAGES_DIR, f"{name}.txt")
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def sections(page: str) -> Dict[str, str]:
    """Split a page into its uppercase-headed sections."""
    result: Dict[str, str] = {}
    current: Optional[str] = None
    lines: List[str] = []
    for line in page.splitlines():
        stripped = line.strip()
        if stripped and stripped == stripped.upper() and not line.startswith(" ") and stripped.isascii() and all(c.isalpha() or c.isspace() for c in stripped):
            if current is not None:
                result[current] = "\n".join(lines).rstrip()
            current = stripped
            lines = []
        else:
            lines.append(line)
    if current is not None:
        result[current] = "\n".join(lines).rstrip()
    return result
