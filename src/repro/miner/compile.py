"""Trace → specification compilation (Fig. 4, right).

Applies a series of transformation rules to probe traces to produce
Hoare-triple clauses: group traces by observed behaviour, infer the
flag guard of each behaviour, derive pre/postconditions from the
before/after snapshots, and generalise across operand kinds.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..specs.ir import (
    Absent,
    Clause,
    CommandSpec,
    CopiesTo,
    Creates,
    Deletes,
    Exists,
    PathKind,
    Pre as Pre_t,
    Sel,
)
from .probe import ProbeTrace
from .syntax import SyntaxSpec


@dataclass(frozen=True)
class Behaviour:
    """The observable outcome of one probe, suitable for grouping."""

    scenario: str
    success: bool
    deleted: bool
    created_kind: Optional[str]
    stderr: bool


def _behaviour(trace: ProbeTrace) -> Behaviour:
    before, after = trace.operand_outcome(0)
    return Behaviour(
        scenario=trace.invocation.scenarios[0] if trace.invocation.scenarios else "none",
        success=(trace.exit_code == 0),
        deleted=(before is not None and after is None),
        created_kind=(after if before is None and after is not None else None),
        stderr=bool(trace.stderr),
    )


def compile_spec(syntax: SyntaxSpec, traces: Sequence[ProbeTrace]) -> CommandSpec:
    """Compile probe traces into a command specification."""
    if syntax.operands.min_count >= 2:
        clauses = _compile_two_operand(traces)
    elif syntax.operands.kind == "path" and any(t.invocation.scenarios for t in traces):
        clauses = _compile_unary(traces)
    else:
        clauses = _compile_opaque(traces)

    options = {flag.char: flag.takes_arg for flag in syntax.flags.values()}
    return CommandSpec(
        name=syntax.name,
        summary=syntax.summary,
        options=options,
        clauses=clauses,
        min_operands=syntax.operands.min_count,
        max_operands=syntax.operands.max_count,
        operands_are_paths=(syntax.operands.kind == "path"),
    )


# -- unary path commands -------------------------------------------------------


def _compile_unary(traces: Sequence[ProbeTrace]) -> List[Clause]:
    universe: Set[FrozenSet[str]] = set()
    groups: Dict[Behaviour, Set[FrozenSet[str]]] = defaultdict(set)
    for trace in traces:
        flagset = frozenset(trace.invocation.flags)
        universe.add(flagset)
        groups[_behaviour(trace)].add(flagset)

    all_flags = set().union(*universe) if universe else set()
    clauses: List[Clause] = []
    for behaviour, flagsets in sorted(
        groups.items(), key=lambda kv: (kv[0].scenario, not kv[0].success)
    ):
        for requires, forbids in _flag_guards(flagsets, universe, all_flags):
            clauses.append(_clause_of(behaviour, requires, forbids))
    return _generalise(clauses)


def _flag_guards(
    flagsets: Set[FrozenSet[str]],
    universe: Set[FrozenSet[str]],
    all_flags: Set[str],
) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
    """Infer (requires, forbids) guards covering exactly ``flagsets``."""
    requires = frozenset.intersection(*flagsets) if flagsets else frozenset()
    present = set().union(*flagsets) if flagsets else set()
    forbids = frozenset(all_flags - present)
    matched = {
        g for g in universe if requires <= g and not (forbids & g)
    }
    if matched == flagsets:
        return [(requires, forbids)]
    # inexact: fall back to one guard per flag set (precise but verbose)
    return [
        (g, frozenset(all_flags - g))
        for g in sorted(flagsets, key=sorted)
    ]


def _clause_of(
    behaviour: Behaviour, requires: FrozenSet[str], forbids: FrozenSet[str]
) -> Clause:
    pre: Tuple = ()
    effects: Tuple = ()
    if behaviour.scenario == "file":
        pre = (Exists(Sel.EACH, PathKind.FILE),)
    elif behaviour.scenario == "dir":
        pre = (Exists(Sel.EACH, PathKind.DIR),)
    elif behaviour.scenario == "missing":
        pre = (Absent(Sel.EACH),)
    if behaviour.deleted:
        effects = (Deletes(Sel.EACH, recursive=(behaviour.scenario == "dir")),)
    elif behaviour.created_kind is not None:
        kind = PathKind.DIR if behaviour.created_kind == "dir" else PathKind.FILE
        effects = (Creates(Sel.EACH, kind),)
    return Clause(
        pre=pre,
        effects=effects,
        exit_code=0 if behaviour.success else 1,
        requires_flags=requires,
        forbids_flags=forbids,
        stderr=behaviour.stderr,
        note=f"mined: {behaviour.scenario} operand",
    )


def _generalise(clauses: List[Clause]) -> List[Clause]:
    """Merge FILE/DIR clauses that differ only in operand kind."""
    result: List[Clause] = []
    used = set()
    for idx, clause in enumerate(clauses):
        if idx in used:
            continue
        partner = None
        for jdx in range(idx + 1, len(clauses)):
            if jdx in used:
                continue
            other = clauses[jdx]
            if (
                clause.exit_code == other.exit_code
                and clause.requires_flags == other.requires_flags
                and clause.forbids_flags == other.forbids_flags
                and _kind_of(clause) is not None
                and _kind_of(other) is not None
                and _kind_of(clause) != _kind_of(other)
                and _deletes(clause) == _deletes(other)
            ):
                partner = jdx
                break
        if partner is not None:
            used.add(partner)
            merged_effects = clause.effects
            if _deletes(clause):
                recursive = any(
                    isinstance(e, Deletes) and e.recursive
                    for e in clause.effects + clauses[partner].effects
                )
                merged_effects = (Deletes(Sel.EACH, recursive=recursive),)
            result.append(
                Clause(
                    pre=(Exists(Sel.EACH, PathKind.ANY),),
                    effects=merged_effects,
                    exit_code=clause.exit_code,
                    requires_flags=clause.requires_flags,
                    forbids_flags=clause.forbids_flags,
                    stderr=clause.stderr,
                    note="mined: any extant operand",
                )
            )
        else:
            result.append(clause)
    return result


def _kind_of(clause: Clause) -> Optional[PathKind]:
    for pre in clause.pre:
        if isinstance(pre, Exists):
            return pre.kind
    return None


def _deletes(clause: Clause) -> bool:
    return any(isinstance(e, Deletes) for e in clause.effects)


# -- two-operand commands ---------------------------------------------------------


def _compile_two_operand(traces: Sequence[ProbeTrace]) -> List[Clause]:
    """Clauses guarded on BOTH operands' states and the flag set."""
    universe: Set[FrozenSet[str]] = set()
    # (src_exists, dst_exists, success, src_gone) -> flag sets
    groups: Dict[Tuple[bool, bool, bool, bool], Set[FrozenSet[str]]] = defaultdict(set)
    for trace in traces:
        if len(trace.invocation.scenarios) < 2:
            continue
        flagset = frozenset(trace.invocation.flags)
        universe.add(flagset)
        src_before, src_after = trace.operand_outcome(0)
        dst_before, _ = trace.operand_outcome(1)
        key = (
            src_before is not None,
            dst_before is not None,
            trace.exit_code == 0,
            src_before is not None and src_after is None,
        )
        groups[key].add(flagset)

    all_flags = set().union(*universe) if universe else set()
    clauses: List[Clause] = []
    for (src_exists, dst_exists, success, src_gone), flagsets in sorted(
        groups.items(), key=lambda kv: (not kv[0][2], kv[0])
    ):
        pre: Tuple = (
            Exists(Sel.ALL_BUT_LAST, PathKind.ANY)
            if src_exists
            else Absent(Sel.ALL_BUT_LAST),
            Exists(Sel.LAST, PathKind.ANY) if dst_exists else Absent(Sel.LAST),
        )
        effects: Tuple = (CopiesTo(move=src_gone),) if success else ()
        for requires, forbids in _flag_guards(flagsets, universe, all_flags):
            clauses.append(
                Clause(
                    pre=pre,
                    effects=effects,
                    exit_code=0 if success else 1,
                    requires_flags=requires,
                    forbids_flags=forbids,
                    stderr=not success,
                    note=f"mined: src {'extant' if src_exists else 'missing'}, "
                    f"dst {'extant' if dst_exists else 'missing'}",
                )
            )
    return clauses


# -- commands without path operands ------------------------------------------------


def _compile_opaque(traces: Sequence[ProbeTrace]) -> List[Clause]:
    exit_codes = sorted({t.exit_code for t in traces})
    return [
        Clause(pre=(), effects=(), exit_code=code, note="mined: observed exit")
        for code in exit_codes
    ]


# -- E7 scoring ---------------------------------------------------------------------


def predict(
    spec: CommandSpec,
    flags: Sequence[str],
    scenario: str,
    dst_scenario: Optional[str] = None,
) -> Optional[Tuple[bool, bool]]:
    """What a spec predicts for operands in the given states:
    (success, primary-operand-gone-after).

    ``scenario`` describes the first/each operand; ``dst_scenario`` the
    last operand of two-operand commands.  Returns None when no clause
    applies (the spec is silent)."""
    applicable = spec.applicable_clauses(frozenset(flags))
    for clause in applicable:
        if _clause_matches(clause, scenario, dst_scenario):
            deleted = any(
                isinstance(e, Deletes) and e.sel in (Sel.EACH, Sel.FIRST, Sel.ALL_BUT_LAST)
                for e in clause.effects
            ) or any(
                isinstance(e, CopiesTo) and e.move for e in clause.effects
            )
            return clause.exit_code == 0, deleted
    return None


def _scenario_satisfies(pre: Pre_t, scenario: str) -> bool:
    if isinstance(pre, Exists):
        if scenario == "missing":
            return False
        if pre.kind is PathKind.FILE and scenario != "file":
            return False
        if pre.kind is PathKind.DIR and scenario != "dir":
            return False
        return True
    if isinstance(pre, Absent):
        return scenario == "missing"
    return True  # ParentExists etc.: satisfied in the probe sandbox


def _clause_matches(
    clause: Clause, scenario: str, dst_scenario: Optional[str]
) -> bool:
    for pre in clause.pre:
        sel = getattr(pre, "sel", Sel.EACH)
        if sel is Sel.LAST:
            if dst_scenario is None:
                continue  # no destination operand to test against
            if not _scenario_satisfies(pre, dst_scenario):
                return False
        else:
            if not _scenario_satisfies(pre, scenario):
                return False
    return True


@dataclass
class AgreementReport:
    command: str
    total: int
    agree: int
    disagreements: List[str]

    @property
    def rate(self) -> float:
        return self.agree / self.total if self.total else 1.0


def compare_specs(
    mined: CommandSpec,
    reference: CommandSpec,
    flag_combos: Sequence[Sequence[str]],
    scenarios: Sequence[str] = ("file", "dir", "missing"),
) -> AgreementReport:
    """E7: agreement between a mined spec and the hand-written corpus
    spec over the probe matrix (two-operand commands sweep both
    operands' states)."""
    two_operand = mined.min_operands >= 2
    total = agree = 0
    disagreements = []
    dst_options: Sequence[Optional[str]] = scenarios if two_operand else (None,)
    for flags in flag_combos:
        for scenario in scenarios:
            for dst in dst_options:
                lhs = predict(mined, flags, scenario, dst_scenario=dst)
                rhs = predict(reference, flags, scenario, dst_scenario=dst)
                if lhs is None or rhs is None:
                    continue
                total += 1
                if lhs == rhs:
                    agree += 1
                else:
                    where = f"on {scenario}" + (f"/{dst}" if dst else "")
                    disagreements.append(
                        f"{mined.name} {' '.join(flags) or '(none)'} {where}: "
                        f"mined={lhs} corpus={rhs}"
                    )
    return AgreementReport(mined.name, total, agree, disagreements)
