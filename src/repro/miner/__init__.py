"""Documentation mining with instrumented probing (paper §3, Fig. 4)."""

from .compile import AgreementReport, compare_specs, compile_spec, predict
from .extract import ExtractionError, extract_syntax
from .generate import SCENARIOS, Invocation, generate_invocations, validate_all
from .manpages import load_page, page_names, sections
from .probe import ModelProber, ProbeTrace, SubprocessProber, probe_all
from .syntax import FlagSpec, OperandSpec, SyntaxSpec


def mine_command(name: str, prober=None, max_flags: int = 2):
    """The full Fig. 4 pipeline for one command: docs -> DSL ->
    invocations -> probing -> Hoare-triple spec."""
    syntax = extract_syntax(name)
    invocations = generate_invocations(syntax, max_flags=max_flags)
    validate_all(syntax, invocations)
    traces = probe_all(invocations, prober=prober)
    return compile_spec(syntax, traces)


__all__ = [
    "mine_command", "extract_syntax", "ExtractionError",
    "generate_invocations", "validate_all", "Invocation", "SCENARIOS",
    "probe_all", "ModelProber", "SubprocessProber", "ProbeTrace",
    "compile_spec", "compare_specs", "predict", "AgreementReport",
    "SyntaxSpec", "FlagSpec", "OperandSpec",
    "page_names", "load_page", "sections",
]
