"""Semantics-preserving source rewrites for metamorphic testing.

Each rewrite maps shell source to shell source such that any POSIX
shell executes both identically; the metamorphic oracle then asserts
the analyzer's diagnostics are invariant under them.  Rewrites are
deliberately conservative — when a construct cannot be transformed
soundly it is left untouched (an identity rewrite is a valid, if
uninformative, metamorphic relation).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from .ast import (
    AndOr,
    Assignment,
    Background,
    BraceGroup,
    Case,
    CaseItem,
    Command,
    ElifClause,
    For,
    FunctionDef,
    If,
    Pipeline,
    Sequence,
    SimpleCommand,
    Subshell,
    While,
    Word,
)
from .parser import parse
from .printer import render

#: characters that expand, quote, glob, or delimit — a word made only of
#: characters *outside* this set means the same thing bare or quoted
_UNSAFE_CHARS = set(" \t\n'\"\\$`*?[]{}()<>|&;!~#=%")


def _quotable(raw: str) -> bool:
    """Is ``word`` ≡ ``"word"`` for any shell?  True only for non-empty
    purely-literal words: no expansions, no glob characters (quoting
    would suppress expansion), no quotes, not starting with ``~``."""
    if not raw:
        return False
    return not (_UNSAFE_CHARS & set(raw))


def _quote_word(word: Word, enabled: bool) -> Word:
    if enabled and _quotable(word.raw):
        return replace(word, raw=f'"{word.raw}"')
    return word


def quote_literals(node: Command) -> Command:
    """Double-quote every safely-quotable literal argument word.

    ``mkdir cache`` → ``mkdir "cache"``: quoting a word with no
    expansion or glob characters never changes what the command
    receives.  Command names (``words[0]``) and case patterns are left
    alone — quoting them is also sound in POSIX, but keeping them bare
    preserves a visibly larger safety margin for reserved-word and
    pattern-matching corners.
    """
    if isinstance(node, SimpleCommand):
        words = [
            _quote_word(w, enabled=(i > 0)) for i, w in enumerate(node.words)
        ]
        assignments = [
            Assignment(a.name, _quote_word(a.value, enabled=True), a.pos)
            for a in node.assignments
        ]
        return replace(node, words=words, assignments=assignments)
    if isinstance(node, Pipeline):
        return replace(node, commands=[quote_literals(c) for c in node.commands])
    if isinstance(node, AndOr):
        return replace(
            node, left=quote_literals(node.left), right=quote_literals(node.right)
        )
    if isinstance(node, Sequence):
        return replace(node, commands=[quote_literals(c) for c in node.commands])
    if isinstance(node, Background):
        return replace(node, command=quote_literals(node.command))
    if isinstance(node, (Subshell, BraceGroup)):
        return replace(node, body=quote_literals(node.body))
    if isinstance(node, If):
        return replace(
            node,
            cond=quote_literals(node.cond),
            then=quote_literals(node.then),
            elifs=[
                ElifClause(quote_literals(e.cond), quote_literals(e.then))
                for e in node.elifs
            ],
            else_=quote_literals(node.else_) if node.else_ is not None else None,
        )
    if isinstance(node, While):
        return replace(
            node, cond=quote_literals(node.cond), body=quote_literals(node.body)
        )
    if isinstance(node, For):
        words: Optional[List[Word]] = node.words
        if words is not None:
            words = [_quote_word(w, enabled=True) for w in words]
        return replace(node, words=words, body=quote_literals(node.body))
    if isinstance(node, Case):
        return replace(
            node,
            items=[
                CaseItem(
                    item.patterns,
                    quote_literals(item.body) if item.body is not None else None,
                )
                for item in node.items
            ],
        )
    if isinstance(node, FunctionDef):
        return replace(node, body=quote_literals(node.body))
    return node


# -- source-level rewrites (parse → transform → render) ----------------------


def rewrite_roundtrip(source: str) -> str:
    """Identity rewrite: print the parsed AST back to source."""
    return render(parse(source))


def rewrite_newlines(source: str) -> str:
    """``;``↔newline: top-level commands one per line."""
    return render(parse(source), multiline=True)


def rewrite_quotes(source: str) -> str:
    """Quote normalization: double-quote safely-quotable literals."""
    return render(quote_literals(parse(source)))


def rewrite_brace_group(source: str) -> str:
    """``{ }`` grouping: wrap the whole program in a brace group —
    ``{ list; }`` executes ``list`` in the current environment with no
    other effect."""
    node = parse(source)
    if not render(node).strip():
        return render(node)  # `{ ; }` is a syntax error: empty programs stay bare
    return render(BraceGroup(body=node, pos=node.pos))


#: name -> rewrite, in reporting order
REWRITES = {
    "roundtrip": rewrite_roundtrip,
    "newlines": rewrite_newlines,
    "quotes": rewrite_quotes,
    "brace-group": rewrite_brace_group,
}
