"""Shell glob patterns as regular languages.

Both ``case`` patterns and parameter-expansion patterns (``${v%pat}``)
use shell globs: ``*`` matches any string, ``?`` any single character,
``[...]`` a character class.  In pattern-matching contexts (unlike
pathname expansion) ``*`` crosses ``/`` boundaries, which is exactly the
semantics the Steam bug hinges on (``${0%/*}`` strips from the *last*
slash because ``%`` takes the smallest matching suffix).
"""

from __future__ import annotations

from typing import List, Optional

from ..rlang import Regex
from ..rlang.charclass import CharSet
from ..rlang.syntax import Alt, Concat, Epsilon, Lit, Node, Star, concat_all
from .ast import GlobPart, LiteralPart, Part, Word

#: Character set for glob ``*`` / ``?``: any character, including newline
#: (parameter values may contain embedded newlines).
_ANY = CharSet.universe()


def glob_to_regex(pattern: str) -> Regex:
    """Compile a concrete glob pattern to its regular language."""
    return Regex.from_ast(_glob_ast(pattern), pattern=f"glob:{pattern}")


def _glob_ast(pattern: str) -> Node:
    parts: List[Node] = []
    idx = 0
    while idx < len(pattern):
        char = pattern[idx]
        if char == "*":
            parts.append(Star(Lit(_ANY)))
            idx += 1
        elif char == "?":
            parts.append(Lit(_ANY))
            idx += 1
        elif char == "[":
            charset, idx = _glob_class(pattern, idx)
            parts.append(Lit(charset))
        elif char == "\\" and idx + 1 < len(pattern):
            parts.append(Lit(CharSet.of(pattern[idx + 1])))
            idx += 2
        else:
            parts.append(Lit(CharSet.of(char)))
            idx += 1
    return concat_all(*parts)


def _glob_class(pattern: str, idx: int) -> tuple:
    """Parse ``[...]`` starting at ``idx``; returns (CharSet, next_idx).
    An unterminated class is a literal ``[`` per shell semantics."""
    pos = idx + 1
    negate = False
    if pos < len(pattern) and pattern[pos] in "!^":
        negate = True
        pos += 1
    items = CharSet.empty()
    first = True
    while pos < len(pattern):
        char = pattern[pos]
        if char == "]" and not first:
            result = items.complement() if negate else items
            return result, pos + 1
        first = False
        if pos + 2 < len(pattern) and pattern[pos + 1] == "-" and pattern[pos + 2] != "]":
            items = items.union(CharSet.range(char, pattern[pos + 2]))
            pos += 3
        else:
            items = items.union(CharSet.of(char))
            pos += 1
    return CharSet.of("["), idx + 1  # unterminated: literal bracket


def word_pattern_to_regex(word: Word) -> Optional[Regex]:
    """The regular language of a *pattern word* (e.g. a case pattern).

    Quoted parts match literally; unquoted ``*``/``?`` are wildcards.
    Returns None when the pattern contains dynamic expansions (the
    pattern's language is then unknown).
    """
    nodes: List[Node] = []
    for part in word.parts:
        if isinstance(part, LiteralPart):
            if part.quoted:
                nodes.append(_literal_node(part.text))
            else:
                nodes.append(_glob_ast(part.text))
        elif isinstance(part, GlobPart):
            if part.char == "*":
                nodes.append(Star(Lit(_ANY)))
            else:
                nodes.append(Lit(_ANY))
        else:
            return None
    return Regex.from_ast(concat_all(*nodes), pattern=f"glob:{word.raw}")


def _literal_node(text: str) -> Node:
    return concat_all(*(Lit(CharSet.of(c)) for c in text))
