"""Abstract syntax for POSIX shell programs.

Words keep their internal structure (quoting, parameter expansions,
command substitutions, globs) because the analysis reasons about
expansion semantically — e.g. Fig. 1's ``"${0%/*}"`` must be visible as a
suffix-strip operation on ``$0``, not as an opaque string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from .tokens import Position

# ---------------------------------------------------------------------------
# Word structure
# ---------------------------------------------------------------------------


class Part:
    """Base class for word parts."""

    __slots__ = ()


@dataclass
class LiteralPart(Part):
    """Literal text; ``quoted`` marks text under quotes or backslashes
    (immune to field splitting and pathname expansion)."""

    text: str
    quoted: bool = False


@dataclass
class ParamPart(Part):
    """Parameter expansion ``$name`` / ``${name}`` / ``${name<op>word}``.

    ``op`` is one of ``:- - := = :? ? :+ + % %% # ##`` or ``len`` for
    ``${#name}``; ``arg`` is the operand word (None for plain expansion).
    ``quoted`` is True inside double quotes (no field splitting).
    """

    name: str
    op: Optional[str] = None
    arg: Optional["Word"] = None
    quoted: bool = False


@dataclass
class CmdSubPart(Part):
    """Command substitution ``$(...)`` or `` `...` ``."""

    command: "Command"
    source: str = ""
    quoted: bool = False


@dataclass
class ArithPart(Part):
    """Arithmetic expansion ``$((expr))`` (expression kept as text)."""

    expr: str
    quoted: bool = False


@dataclass
class GlobPart(Part):
    """An unquoted pathname-expansion metacharacter (``*`` or ``?``)."""

    char: str


@dataclass
class TildePart(Part):
    """A leading unquoted ``~`` or ``~user``."""

    user: str = ""


@dataclass
class Word:
    parts: List[Part] = field(default_factory=list)
    raw: str = ""
    pos: Position = field(default_factory=Position)

    def literal_text(self) -> Optional[str]:
        """The word's static string value, or None if any part expands
        dynamically."""
        chunks = []
        for part in self.parts:
            if isinstance(part, LiteralPart):
                chunks.append(part.text)
            elif isinstance(part, GlobPart):
                chunks.append(part.char)
            else:
                return None
        return "".join(chunks)

    def is_fully_quoted(self) -> bool:
        return all(
            (isinstance(p, LiteralPart) and p.quoted)
            or (isinstance(p, (ParamPart, CmdSubPart, ArithPart)) and p.quoted)
            for p in self.parts
        )

    def has_glob(self) -> bool:
        return any(isinstance(p, GlobPart) for p in self.parts)

    def expansions(self) -> List[Part]:
        return [p for p in self.parts if isinstance(p, (ParamPart, CmdSubPart, ArithPart))]

    def __repr__(self) -> str:
        return f"Word({self.raw!r})"


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


class Command:
    """Base class for command AST nodes."""

    __slots__ = ()


@dataclass
class Redirect:
    op: str  # one of < > >> << <<- <& >& <> >|
    target: Word
    fd: Optional[int] = None  # explicit IO_NUMBER if present
    heredoc_body: Optional[str] = None
    heredoc_quoted: bool = False


@dataclass
class Assignment:
    name: str
    value: Word
    pos: Position = field(default_factory=Position)


@dataclass
class SimpleCommand(Command):
    words: List[Word] = field(default_factory=list)
    assignments: List[Assignment] = field(default_factory=list)
    redirects: List[Redirect] = field(default_factory=list)
    pos: Position = field(default_factory=Position)

    @property
    def name(self) -> Optional[str]:
        """Static command name, when the first word is literal."""
        if self.words:
            return self.words[0].literal_text()
        return None


@dataclass
class Pipeline(Command):
    """``a | b | c`` with optional leading ``!``."""

    commands: List[Command]
    negated: bool = False
    pos: Position = field(default_factory=Position)


@dataclass
class AndOr(Command):
    """``left && right`` or ``left || right`` (left associative)."""

    left: Command
    op: str  # "&&" or "||"
    right: Command
    pos: Position = field(default_factory=Position)


@dataclass
class Sequence(Command):
    """Commands separated by ``;`` or newline."""

    commands: List[Command]
    pos: Position = field(default_factory=Position)


@dataclass
class Background(Command):
    """``cmd &``"""

    command: Command
    pos: Position = field(default_factory=Position)


@dataclass
class Subshell(Command):
    body: Command
    redirects: List[Redirect] = field(default_factory=list)
    pos: Position = field(default_factory=Position)


@dataclass
class BraceGroup(Command):
    body: Command
    redirects: List[Redirect] = field(default_factory=list)
    pos: Position = field(default_factory=Position)


@dataclass
class If(Command):
    cond: Command
    then: Command
    elifs: List["ElifClause"] = field(default_factory=list)
    else_: Optional[Command] = None
    redirects: List[Redirect] = field(default_factory=list)
    pos: Position = field(default_factory=Position)


@dataclass
class ElifClause:
    cond: Command
    then: Command


@dataclass
class While(Command):
    cond: Command
    body: Command
    until: bool = False  # True for `until` loops
    redirects: List[Redirect] = field(default_factory=list)
    pos: Position = field(default_factory=Position)


@dataclass
class For(Command):
    var: str
    words: Optional[List[Word]]  # None means implicit `in "$@"`
    body: Command
    redirects: List[Redirect] = field(default_factory=list)
    pos: Position = field(default_factory=Position)


@dataclass
class CaseItem:
    patterns: List[Word]
    body: Optional[Command]


@dataclass
class Case(Command):
    subject: Word
    items: List[CaseItem] = field(default_factory=list)
    redirects: List[Redirect] = field(default_factory=list)
    pos: Position = field(default_factory=Position)


@dataclass
class FunctionDef(Command):
    name: str
    body: Command
    pos: Position = field(default_factory=Position)


def walk(node: Union[Command, None]):
    """Yield every Command node in the subtree rooted at ``node``
    (pre-order), descending into command substitutions inside words."""
    if node is None:
        return
    yield node
    children: List[Optional[Command]] = []
    words: List[Word] = []
    if isinstance(node, SimpleCommand):
        words.extend(node.words)
        words.extend(a.value for a in node.assignments)
        words.extend(r.target for r in node.redirects)
    elif isinstance(node, Pipeline):
        children.extend(node.commands)
    elif isinstance(node, AndOr):
        children.extend([node.left, node.right])
    elif isinstance(node, Sequence):
        children.extend(node.commands)
    elif isinstance(node, Background):
        children.append(node.command)
    elif isinstance(node, (Subshell, BraceGroup)):
        children.append(node.body)
        words.extend(r.target for r in node.redirects)
    elif isinstance(node, If):
        children.extend([node.cond, node.then])
        for clause in node.elifs:
            children.extend([clause.cond, clause.then])
        children.append(node.else_)
        words.extend(r.target for r in node.redirects)
    elif isinstance(node, While):
        children.extend([node.cond, node.body])
        words.extend(r.target for r in node.redirects)
    elif isinstance(node, For):
        children.append(node.body)
        if node.words:
            words.extend(node.words)
        words.extend(r.target for r in node.redirects)
    elif isinstance(node, Case):
        words.append(node.subject)
        for item in node.items:
            words.extend(item.patterns)
            children.append(item.body)
        words.extend(r.target for r in node.redirects)
    elif isinstance(node, FunctionDef):
        children.append(node.body)
    for child in children:
        yield from walk(child)
    for word in words:
        yield from _walk_word(word)


def _walk_word(word: Word):
    for part in word.parts:
        if isinstance(part, CmdSubPart):
            yield from walk(part.command)
        elif isinstance(part, ParamPart) and part.arg is not None:
            yield from _walk_word(part.arg)


def first_pos(node: Union[Command, None]) -> Optional[Position]:
    """The position of the first positioned command in a subtree.

    Compound nodes built by the parser sometimes carry a default
    position while their leaves are located; provenance (effect-graph
    origins, hazard diagnostics) wants the earliest real location.
    """
    best: Optional[Position] = None
    for sub in walk(node):
        pos = getattr(sub, "pos", None)
        if pos is None:
            continue
        if best is None or (pos.line, pos.col) < (best.line, best.col):
            best = pos
    return best


def structure(node):
    """A position-free structural digest of an AST (or word/part), for
    equality in round-trip tests."""
    if node is None:
        return None
    if isinstance(node, Word):
        return ("word", tuple(structure(p) for p in node.parts))
    if isinstance(node, LiteralPart):
        return ("lit", node.text, node.quoted)
    if isinstance(node, ParamPart):
        return ("param", node.name, node.op, structure(node.arg), node.quoted)
    if isinstance(node, CmdSubPart):
        return ("cmdsub", structure(node.command), node.quoted)
    if isinstance(node, ArithPart):
        return ("arith", node.expr, node.quoted)
    if isinstance(node, GlobPart):
        return ("glob", node.char)
    if isinstance(node, TildePart):
        return ("tilde", node.user)
    if isinstance(node, Redirect):
        return ("redirect", node.op, node.fd, structure(node.target), node.heredoc_body)
    if isinstance(node, Assignment):
        return ("assign", node.name, structure(node.value))
    if isinstance(node, SimpleCommand):
        return (
            "simple",
            tuple(structure(w) for w in node.words),
            tuple(structure(a) for a in node.assignments),
            tuple(structure(r) for r in node.redirects),
        )
    if isinstance(node, Pipeline):
        return ("pipe", node.negated, tuple(structure(c) for c in node.commands))
    if isinstance(node, AndOr):
        return ("andor", node.op, structure(node.left), structure(node.right))
    if isinstance(node, Sequence):
        return ("seq", tuple(structure(c) for c in node.commands))
    if isinstance(node, Background):
        return ("bg", structure(node.command))
    if isinstance(node, Subshell):
        return ("subshell", structure(node.body), tuple(structure(r) for r in node.redirects))
    if isinstance(node, BraceGroup):
        return ("brace", structure(node.body), tuple(structure(r) for r in node.redirects))
    if isinstance(node, If):
        return (
            "if",
            structure(node.cond),
            structure(node.then),
            tuple((structure(c.cond), structure(c.then)) for c in node.elifs),
            structure(node.else_),
            tuple(structure(r) for r in node.redirects),
        )
    if isinstance(node, While):
        return ("while", node.until, structure(node.cond), structure(node.body),
                tuple(structure(r) for r in node.redirects))
    if isinstance(node, For):
        return (
            "for",
            node.var,
            tuple(structure(w) for w in node.words) if node.words is not None else None,
            structure(node.body),
            tuple(structure(r) for r in node.redirects),
        )
    if isinstance(node, Case):
        return (
            "case",
            structure(node.subject),
            tuple(
                (tuple(structure(p) for p in item.patterns), structure(item.body))
                for item in node.items
            ),
            tuple(structure(r) for r in node.redirects),
        )
    if isinstance(node, FunctionDef):
        return ("func", node.name, structure(node.body))
    raise TypeError(f"cannot digest {type(node).__name__}")
