"""POSIX shell front end: lexer, structured words, AST, parser."""

from .ast import (
    AndOr,
    ArithPart,
    Assignment,
    Background,
    BraceGroup,
    Case,
    CaseItem,
    CmdSubPart,
    Command,
    ElifClause,
    For,
    FunctionDef,
    GlobPart,
    If,
    LiteralPart,
    ParamPart,
    Part,
    Pipeline,
    Redirect,
    Sequence,
    SimpleCommand,
    Subshell,
    TildePart,
    While,
    Word,
    walk,
)
from .lexer import Lexer, ShellSyntaxError, tokenize
from .parser import MAX_NESTING_DEPTH, ParseDepthExceeded, Parser, parse
from .tokens import Position, Token, TokenKind

__all__ = [
    "parse", "tokenize", "walk", "Parser", "Lexer", "ShellSyntaxError",
    "ParseDepthExceeded", "MAX_NESTING_DEPTH",
    "Position", "Token", "TokenKind", "Command", "SimpleCommand", "Pipeline",
    "AndOr", "Sequence", "Background", "Subshell", "BraceGroup", "If",
    "ElifClause", "While", "For", "Case", "CaseItem", "FunctionDef",
    "Redirect", "Assignment", "Word", "Part", "LiteralPart", "ParamPart",
    "CmdSubPart", "ArithPart", "GlobPart", "TildePart",
]
