"""Structural interpretation of word tokens.

Converts a raw word slice (as produced by the lexer) into a list of
:class:`~repro.shell.ast.Part` values: quoted/unquoted literals,
parameter expansions with their operators, command substitutions
(recursively parsed), arithmetic expansions, globs, and tildes.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .ast import (
    ArithPart,
    CmdSubPart,
    Command,
    GlobPart,
    LiteralPart,
    ParamPart,
    Part,
    TildePart,
    Word,
)
from .tokens import Position

ParseCommand = Callable[[str], Command]

#: Parameter-expansion operators, longest first.
_PARAM_OPS = [":-", ":=", ":?", ":+", "%%", "##", "-", "=", "?", "+", "%", "#"]

_SPECIAL_PARAMS = set("@*#?-$!0123456789")


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char == "_"


class _WordParser:
    def __init__(self, raw: str, parse_command: ParseCommand):
        self.raw = raw
        self.pos = 0
        self.parse_command = parse_command
        self.parts: List[Part] = []
        self._literal: List[str] = []
        self._literal_quoted = False

    # -- literal accumulation ------------------------------------------------

    def _emit(self, text: str, quoted: bool) -> None:
        if not text:
            return
        if self._literal and self._literal_quoted != quoted:
            self._flush()
        self._literal.append(text)
        self._literal_quoted = quoted

    def _flush(self) -> None:
        if self._literal:
            self.parts.append(
                LiteralPart("".join(self._literal), self._literal_quoted)
            )
            self._literal = []
            self._literal_quoted = False

    def _push(self, part: Part) -> None:
        self._flush()
        self.parts.append(part)

    # -- cursor ----------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Optional[str]:
        idx = self.pos + ahead
        return self.raw[idx] if idx < len(self.raw) else None

    def _take(self) -> str:
        char = self.raw[self.pos]
        self.pos += 1
        return char

    # -- main -------------------------------------------------------------------

    def parse(self) -> List[Part]:
        if self._peek() == "~":
            self._parse_tilde()
        while self.pos < len(self.raw):
            char = self._take()
            if char == "\\":
                if self._peek() == "\n":
                    self._take()  # line continuation disappears entirely
                elif self.pos < len(self.raw):
                    self._emit(self._take(), quoted=True)
                continue
            if char == "'":
                end = self.raw.index("'", self.pos)
                self._emit(self.raw[self.pos : end], quoted=True)
                # Preserve "quoted empty string" — '' yields an explicit part.
                if end == self.pos:
                    self._push(LiteralPart("", quoted=True))
                self.pos = end + 1
                continue
            if char == '"':
                self._parse_double_quoted()
                continue
            if char == "$":
                self._parse_dollar(quoted=False)
                continue
            if char == "`":
                self._parse_backquote(quoted=False)
                continue
            if char in "*?":
                self._push(GlobPart(char))
                continue
            self._emit(char, quoted=False)
        self._flush()
        return self.parts

    def _parse_tilde(self) -> None:
        self._take()  # "~"
        user = []
        while (c := self._peek()) is not None and (c.isalnum() or c in "_-."):
            user.append(self._take())
        self._push(TildePart("".join(user)))

    def _parse_double_quoted(self) -> None:
        start = self.pos
        empty = True
        while True:
            char = self._peek()
            if char is None:
                raise ValueError(f"unterminated double quote in {self.raw!r}")
            if char == '"':
                self._take()
                if empty:
                    self._push(LiteralPart("", quoted=True))
                return
            empty = False
            self._take()
            if char == "\\" and self._peek() in ('"', "$", "`", "\\"):
                self._emit(self._take(), quoted=True)
            elif char == "\\" and self._peek() == "\n":
                self._take()  # line continuation
            elif char == "$":
                self._parse_dollar(quoted=True)
            elif char == "`":
                self._parse_backquote(quoted=True)
            else:
                self._emit(char, quoted=True)

    # -- expansions ----------------------------------------------------------------

    def _parse_dollar(self, quoted: bool) -> None:
        char = self._peek()
        if char == "{":
            self._take()
            self._parse_braced_param(quoted)
            return
        if char == "(":
            if self._peek(1) == "(":
                self._parse_arith(quoted)
            else:
                self._parse_command_sub(quoted)
            return
        if char is not None and char in _SPECIAL_PARAMS:
            self._push(ParamPart(self._take(), quoted=quoted))
            return
        if char is not None and _is_name_start(char):
            name = [self._take()]
            while (c := self._peek()) is not None and _is_name_char(c):
                name.append(self._take())
            self._push(ParamPart("".join(name), quoted=quoted))
            return
        # A lone "$" is literal.
        self._emit("$", quoted)

    def _parse_braced_param(self, quoted: bool) -> None:
        body = self._braced_body()
        if body.startswith("#") and len(body) > 1:
            self._push(ParamPart(body[1:], op="len", quoted=quoted))
            return
        idx = 0
        if idx < len(body) and body[idx] in _SPECIAL_PARAMS and not body[idx].isdigit():
            idx += 1
        else:
            while idx < len(body) and (
                _is_name_char(body[idx]) if idx else _is_name_start(body[idx]) or body[idx].isdigit()
            ):
                idx += 1
        name = body[:idx]
        rest = body[idx:]
        if not name:
            raise ValueError(f"bad parameter expansion ${{{body}}} in {self.raw!r}")
        if not rest:
            self._push(ParamPart(name, quoted=quoted))
            return
        for op in _PARAM_OPS:
            if rest.startswith(op):
                arg_raw = rest[len(op) :]
                arg = parse_word(arg_raw, self.parse_command, Position())
                self._push(ParamPart(name, op=op, arg=arg, quoted=quoted))
                return
        raise ValueError(f"unsupported parameter operator in ${{{body}}}")

    def _braced_body(self) -> str:
        depth = 1
        start = self.pos
        while depth:
            char = self._peek()
            if char is None:
                raise ValueError(f"unterminated ${{ in {self.raw!r}")
            if char == "\\":
                self.pos += 2
                continue
            if char == "'":
                self.pos = self.raw.index("'", self.pos + 1) + 1
                continue
            if char == '"':
                self._skip_dquotes_raw()
                continue
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    body = self.raw[start : self.pos]
                    self.pos += 1
                    return body
            self.pos += 1
        raise AssertionError("unreachable")

    def _skip_dquotes_raw(self) -> None:
        self.pos += 1  # opening "
        while True:
            char = self._peek()
            if char is None:
                raise ValueError(f"unterminated double quote in {self.raw!r}")
            if char == "\\":
                self.pos += 2
                continue
            self.pos += 1
            if char == '"':
                return

    def _parse_command_sub(self, quoted: bool) -> None:
        self._take()  # "("
        depth = 1
        start = self.pos
        while depth:
            char = self._peek()
            if char is None:
                raise ValueError(f"unterminated $( in {self.raw!r}")
            if char == "\\":
                self.pos += 2
                continue
            if char == "'":
                self.pos = self.raw.index("'", self.pos + 1) + 1
                continue
            if char == '"':
                self._skip_dquotes_raw()
                continue
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    break
            self.pos += 1
        source = self.raw[start : self.pos]
        self.pos += 1  # ")"
        self._push(CmdSubPart(self.parse_command(source), source=source, quoted=quoted))

    def _parse_arith(self, quoted: bool) -> None:
        self.pos += 2  # "(("
        start = self.pos
        depth = 2
        while depth:
            char = self._peek()
            if char is None:
                raise ValueError(f"unterminated $(( in {self.raw!r}")
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            self.pos += 1
        expr = self.raw[start : self.pos - 2]
        self._push(ArithPart(expr, quoted=quoted))

    def _parse_backquote(self, quoted: bool) -> None:
        chunks: List[str] = []
        while True:
            char = self._peek()
            if char is None:
                raise ValueError(f"unterminated backquote in {self.raw!r}")
            self.pos += 1
            if char == "`":
                break
            if char == "\\" and self._peek() in ("`", "$", "\\"):
                chunks.append(self.raw[self.pos])
                self.pos += 1
            else:
                chunks.append(char)
        source = "".join(chunks)
        self._push(CmdSubPart(self.parse_command(source), source=source, quoted=quoted))


def parse_word(raw: str, parse_command: ParseCommand, pos: Position) -> Word:
    """Parse raw word text into a structured :class:`Word`."""
    parser = _WordParser(raw, parse_command)
    return Word(parts=parser.parse(), raw=raw, pos=pos)
