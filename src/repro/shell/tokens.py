"""Token definitions for the POSIX shell lexer."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional


class TokenKind(Enum):
    WORD = auto()
    OPERATOR = auto()
    IO_NUMBER = auto()
    NEWLINE = auto()
    EOF = auto()


#: Multi-character operators, longest first (POSIX token recognition rule 2/3).
OPERATORS = [
    "<<-",
    "<<",
    ">>",
    "<&",
    ">&",
    "<>",
    ">|",
    "&&",
    "||",
    ";;",
    "|",
    "&",
    ";",
    "<",
    ">",
    "(",
    ")",
]

REDIRECT_OPERATORS = {"<", ">", ">>", "<<", "<<-", "<&", ">&", "<>", ">|"}

#: Reserved words, recognised only where a command word is expected.
RESERVED_WORDS = {
    "if",
    "then",
    "else",
    "elif",
    "fi",
    "do",
    "done",
    "case",
    "esac",
    "while",
    "until",
    "for",
    "in",
    "{",
    "}",
    "!",
}


@dataclass
class Position:
    """Line/column position (1-based) within the source script."""

    line: int = 1
    col: int = 1
    offset: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


@dataclass
class Token:
    kind: TokenKind
    text: str
    pos: Position = field(default_factory=Position)
    #: For WORD tokens: the raw source slice including quotes/expansions.
    #: (``text`` equals ``raw`` for words; kept separate for clarity.)
    raw: Optional[str] = None
    #: For ``<<`` heredoc redirections, the collected body (filled by lexer).
    heredoc_body: Optional[str] = None
    #: True when a heredoc delimiter was quoted (suppresses expansion).
    heredoc_quoted: bool = False

    def is_op(self, *texts: str) -> bool:
        return self.kind is TokenKind.OPERATOR and self.text in texts

    def is_word(self, *texts: str) -> bool:
        return self.kind is TokenKind.WORD and self.text in texts

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}@{self.pos})"
