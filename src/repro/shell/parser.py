"""Recursive-descent parser for the POSIX shell grammar.

Covers the constructs the paper's analysis reasons about: simple
commands with assignments and redirections, pipelines, and-or lists,
``;``/``&``/newline sequencing, subshells, brace groups, ``if``/``while``/
``until``/``for``/``case``, and function definitions.  Command
substitutions inside words are parsed recursively into full ASTs.
"""

from __future__ import annotations

from typing import List, Optional

from . import words as words_mod
from .ast import (
    AndOr,
    Assignment,
    Background,
    BraceGroup,
    Case,
    CaseItem,
    Command,
    ElifClause,
    For,
    FunctionDef,
    If,
    Pipeline,
    Redirect,
    Sequence,
    SimpleCommand,
    Subshell,
    While,
    Word,
)
from .lexer import ShellSyntaxError, tokenize
from .tokens import REDIRECT_OPERATORS, RESERVED_WORDS, Position, Token, TokenKind

#: Explicit nesting-depth ceiling (compound commands + command
#: substitutions).  Each level costs ~10 interpreter frames across the
#: parser and the symbolic engine, so this keeps pathological inputs
#: like ``((((...))))`` well inside CPython's recursion limit and turns
#: them into a catchable :class:`ParseDepthExceeded` instead of a
#: :class:`RecursionError`.
MAX_NESTING_DEPTH = 60


class ParseDepthExceeded(ShellSyntaxError):
    """Input nested deeper than the parser's explicit guard."""


class Parser:
    def __init__(self, source: str, max_depth: Optional[int] = None, depth: int = 0):
        self.source = source
        self.tokens = tokenize(source)
        self.idx = 0
        self.max_depth = MAX_NESTING_DEPTH if max_depth is None else max_depth
        #: current nesting depth; inherited by sub-parsers so command
        #: substitutions count toward the same ceiling
        self.depth = depth

    # -- token access -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.idx + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def take(self) -> Token:
        token = self.tokens[self.idx]
        if token.kind is not TokenKind.EOF:
            self.idx += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> ShellSyntaxError:
        token = token or self.peek()
        return ShellSyntaxError(message, token.pos)

    def expect_word(self, text: str) -> Token:
        token = self.take()
        if not token.is_word(text):
            raise self.error(f"expected {text!r}, found {token.text!r}", token)
        return token

    def expect_op(self, text: str) -> Token:
        token = self.take()
        if not token.is_op(text):
            raise self.error(f"expected {text!r}, found {token.text!r}", token)
        return token

    def skip_newlines(self) -> None:
        while self.peek().kind is TokenKind.NEWLINE:
            self.take()

    # -- words -----------------------------------------------------------

    def make_word(self, token: Token) -> Word:
        return words_mod.parse_word(token.text, self._parse_sub, token.pos)

    def _parse_sub(self, source: str) -> Command:
        """Parse a command substitution's body, inheriting the nesting
        depth so ``$($($(...)))`` chains count toward the same ceiling."""
        return Parser(
            source, max_depth=self.max_depth, depth=self.depth
        ).parse_program()

    # -- entry -------------------------------------------------------------

    def parse_program(self) -> Command:
        self.skip_newlines()
        commands: List[Command] = []
        while self.peek().kind is not TokenKind.EOF:
            commands.append(self.parse_and_or())
            sep = self.peek()
            if sep.is_op(";"):
                self.take()
                self.skip_newlines()
            elif sep.is_op("&"):
                self.take()
                commands[-1] = Background(commands[-1], pos=sep.pos)
                self.skip_newlines()
            elif sep.kind is TokenKind.NEWLINE:
                self.skip_newlines()
            elif sep.kind is TokenKind.EOF:
                break
            else:
                raise self.error(f"unexpected token {sep.text!r}", sep)
        if len(commands) == 1:
            return commands[0]
        return Sequence(commands)

    # -- command lists within compound constructs ----------------------------

    _LIST_ENDERS = {"then", "else", "elif", "fi", "do", "done", "esac", "}"}

    def _at_list_end(self) -> bool:
        token = self.peek()
        if token.kind is TokenKind.EOF:
            return True
        if token.kind is TokenKind.WORD and token.text in self._LIST_ENDERS:
            return True
        return token.is_op(")", ";;")

    def parse_list(self) -> Command:
        """A command list terminated by a reserved word or closing token."""
        self.skip_newlines()
        commands: List[Command] = []
        while not self._at_list_end():
            commands.append(self.parse_and_or())
            sep = self.peek()
            if sep.is_op(";"):
                self.take()
                self.skip_newlines()
            elif sep.is_op("&"):
                self.take()
                commands[-1] = Background(commands[-1], pos=sep.pos)
                self.skip_newlines()
            elif sep.kind is TokenKind.NEWLINE:
                self.skip_newlines()
            else:
                break
        if not commands:
            raise self.error("empty command list")
        if len(commands) == 1:
            return commands[0]
        return Sequence(commands)

    # -- and-or / pipeline -----------------------------------------------------

    def parse_and_or(self) -> Command:
        left = self.parse_pipeline()
        while self.peek().is_op("&&", "||"):
            op_token = self.take()
            self.skip_newlines()
            right = self.parse_pipeline()
            left = AndOr(left, op_token.text, right, pos=op_token.pos)
        return left

    def parse_pipeline(self) -> Command:
        negated = False
        if self.peek().is_word("!"):
            self.take()
            negated = True
        first = self.parse_command()
        commands = [first]
        while self.peek().is_op("|"):
            self.take()
            self.skip_newlines()
            commands.append(self.parse_command())
        if len(commands) == 1 and not negated:
            return first
        return Pipeline(commands, negated=negated, pos=_pos_of(first))

    # -- commands ---------------------------------------------------------------

    def parse_command(self) -> Command:
        self.depth += 1
        try:
            if self.depth > self.max_depth:
                raise ParseDepthExceeded(
                    f"command nesting exceeds {self.max_depth} levels",
                    self.peek().pos,
                )
            return self._parse_command()
        finally:
            self.depth -= 1

    def _parse_command(self) -> Command:
        token = self.peek()
        if token.is_op("("):
            return self._with_redirects(self.parse_subshell())
        if token.kind is TokenKind.WORD:
            if token.text == "{":
                return self._with_redirects(self.parse_brace_group())
            if token.text == "if":
                return self._with_redirects(self.parse_if())
            if token.text in ("while", "until"):
                return self._with_redirects(self.parse_while())
            if token.text == "for":
                return self._with_redirects(self.parse_for())
            if token.text == "case":
                return self._with_redirects(self.parse_case())
            if (
                self.peek(1).is_op("(")
                and self.peek(2).is_op(")")
                and token.text not in RESERVED_WORDS
            ):
                return self.parse_function_def()
        return self.parse_simple_command()

    def _with_redirects(self, command: Command) -> Command:
        redirects = self.parse_redirect_list()
        if redirects:
            command.redirects.extend(redirects)  # type: ignore[attr-defined]
        return command

    def parse_redirect_list(self) -> List[Redirect]:
        redirects = []
        while True:
            redirect = self.try_parse_redirect()
            if redirect is None:
                return redirects
            redirects.append(redirect)

    def try_parse_redirect(self) -> Optional[Redirect]:
        token = self.peek()
        fd: Optional[int] = None
        offset = 0
        if token.kind is TokenKind.IO_NUMBER:
            fd = int(token.text)
            token = self.peek(1)
            offset = 1
        if token.kind is TokenKind.OPERATOR and token.text in REDIRECT_OPERATORS:
            for _ in range(offset + 1):
                op_token = self.take()
            if op_token.text in ("<<", "<<-"):
                # The lexer attached the delimiter word and body.
                target = Word(
                    parts=[], raw=op_token.raw or "", pos=op_token.pos
                )
                return Redirect(
                    op=op_token.text,
                    target=target,
                    fd=fd,
                    heredoc_body=op_token.heredoc_body,
                    heredoc_quoted=op_token.heredoc_quoted,
                )
            word_token = self.take()
            if word_token.kind is not TokenKind.WORD:
                raise self.error("redirect requires a target word", word_token)
            return Redirect(
                op=op_token.text, target=self.make_word(word_token), fd=fd
            )
        return None

    def parse_simple_command(self) -> SimpleCommand:
        cmd = SimpleCommand(pos=self.peek().pos)
        seen_word = False
        while True:
            redirect = self.try_parse_redirect()
            if redirect is not None:
                cmd.redirects.append(redirect)
                continue
            token = self.peek()
            if token.kind is not TokenKind.WORD:
                break
            if not seen_word and not cmd.assignments and token.text in RESERVED_WORDS:
                break
            assignment = None if seen_word else _try_assignment(token)
            self.take()
            if assignment is not None:
                name, value_raw = assignment
                value = words_mod.parse_word(value_raw, self._parse_sub, token.pos)
                cmd.assignments.append(Assignment(name, value, token.pos))
            else:
                seen_word = True
                cmd.words.append(self.make_word(token))
        if not cmd.words and not cmd.assignments and not cmd.redirects:
            raise self.error(f"expected a command, found {self.peek().text!r}")
        return cmd

    # -- compound commands ---------------------------------------------------------

    def parse_subshell(self) -> Subshell:
        open_token = self.expect_op("(")
        body = self.parse_list()
        self.expect_op(")")
        return Subshell(body, pos=open_token.pos)

    def parse_brace_group(self) -> BraceGroup:
        open_token = self.expect_word("{")
        body = self.parse_list()
        self.expect_word("}")
        return BraceGroup(body, pos=open_token.pos)

    def parse_if(self) -> If:
        if_token = self.expect_word("if")
        cond = self.parse_list()
        self.expect_word("then")
        then = self.parse_list()
        elifs: List[ElifClause] = []
        else_: Optional[Command] = None
        while self.peek().is_word("elif"):
            self.take()
            elif_cond = self.parse_list()
            self.expect_word("then")
            elifs.append(ElifClause(elif_cond, self.parse_list()))
        if self.peek().is_word("else"):
            self.take()
            else_ = self.parse_list()
        self.expect_word("fi")
        return If(cond, then, elifs=elifs, else_=else_, pos=if_token.pos)

    def parse_while(self) -> While:
        kw_token = self.take()  # "while" or "until"
        cond = self.parse_list()
        self.expect_word("do")
        body = self.parse_list()
        self.expect_word("done")
        return While(cond, body, until=(kw_token.text == "until"), pos=kw_token.pos)

    def parse_for(self) -> For:
        for_token = self.expect_word("for")
        name_token = self.take()
        if name_token.kind is not TokenKind.WORD:
            raise self.error("expected a variable name after 'for'", name_token)
        iter_words: Optional[List[Word]] = None
        self.skip_newlines()
        if self.peek().is_word("in"):
            self.take()
            iter_words = []
            while self.peek().kind is TokenKind.WORD and not self.peek().is_word("do"):
                iter_words.append(self.make_word(self.take()))
            if self.peek().is_op(";"):
                self.take()
            self.skip_newlines()
        elif self.peek().is_op(";"):
            self.take()
            self.skip_newlines()
        self.expect_word("do")
        body = self.parse_list()
        self.expect_word("done")
        return For(name_token.text, iter_words, body, pos=for_token.pos)

    def parse_case(self) -> Case:
        case_token = self.expect_word("case")
        subject_token = self.take()
        if subject_token.kind is not TokenKind.WORD:
            raise self.error("expected a word after 'case'", subject_token)
        subject = self.make_word(subject_token)
        self.skip_newlines()
        self.expect_word("in")
        self.skip_newlines()
        items: List[CaseItem] = []
        while not self.peek().is_word("esac"):
            if self.peek().kind is TokenKind.EOF:
                raise self.error("missing 'esac'")
            if self.peek().is_op("("):
                self.take()
            patterns = [self._case_pattern()]
            while self.peek().is_op("|"):
                self.take()
                patterns.append(self._case_pattern())
            self.expect_op(")")
            self.skip_newlines()
            body: Optional[Command] = None
            if not self.peek().is_op(";;") and not self.peek().is_word("esac"):
                body = self.parse_list()
            items.append(CaseItem(patterns, body))
            if self.peek().is_op(";;"):
                self.take()
                self.skip_newlines()
        self.expect_word("esac")
        return Case(subject, items=items, pos=case_token.pos)

    def _case_pattern(self) -> Word:
        token = self.take()
        if token.kind is not TokenKind.WORD:
            raise self.error("expected a case pattern", token)
        return self.make_word(token)

    def parse_function_def(self) -> FunctionDef:
        name_token = self.take()
        self.expect_op("(")
        self.expect_op(")")
        self.skip_newlines()
        body = self.parse_command()
        return FunctionDef(name_token.text, body, pos=name_token.pos)


def _try_assignment(token: Token) -> Optional[tuple]:
    """``NAME=value`` detection (value may be empty)."""
    text = token.text
    eq = -1
    for idx, char in enumerate(text):
        if char == "=":
            eq = idx
            break
        if char == "\\" or char in "'\"$`":
            return None
    if eq <= 0:
        return None
    name = text[:eq]
    if not (name[0].isalpha() or name[0] == "_"):
        return None
    if not all(c.isalnum() or c == "_" for c in name):
        return None
    return name, text[eq + 1 :]


def _pos_of(command: Command) -> Position:
    return getattr(command, "pos", Position())


def parse(source: str, max_depth: Optional[int] = None) -> Command:
    """Parse shell ``source`` into a command AST.

    ``max_depth`` bounds construct nesting (default
    :data:`MAX_NESTING_DEPTH`); exceeding it raises
    :class:`ParseDepthExceeded` rather than :class:`RecursionError`.
    """
    return Parser(source, max_depth=max_depth).parse_program()
