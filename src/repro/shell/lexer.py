"""POSIX shell lexer.

Implements the token recognition algorithm of POSIX XCU §2.3: blanks
separate tokens, operators are matched longest-first, and words are
accumulated with full awareness of quoting (``'``, ``"``, ``\\``) and
dollar/backquote expansions so that metacharacters inside them do not
terminate the word.  Word tokens carry their raw source text; structural
interpretation of quotes and expansions happens in :mod:`repro.shell.words`.

Heredocs are collected by the lexer (they are a line-level phenomenon) and
attached to the ``<<``/``<<-`` operator token.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .tokens import OPERATORS, Position, Token, TokenKind


class ShellSyntaxError(ValueError):
    """Raised on malformed shell input."""

    def __init__(self, message: str, pos: Position):
        super().__init__(f"{message} at {pos}")
        self.pos = pos


_BLANK = " \t"
_METACHARS = set(" \t\n|&;<>()")


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        #: Heredoc operators on the current line awaiting their bodies,
        #: as (token, delimiter, strip_tabs) triples.
        self._pending_heredocs: List[Tuple[Token, str, bool]] = []

    # -- low-level cursor ----------------------------------------------------

    def _position(self) -> Position:
        return Position(self.line, self.col, self.pos)

    def _peek(self, ahead: int = 0) -> Optional[str]:
        idx = self.pos + ahead
        if idx < len(self.source):
            return self.source[idx]
        return None

    def _advance(self, count: int = 1) -> str:
        taken = self.source[self.pos : self.pos + count]
        for char in taken:
            if char == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return taken

    def _error(self, message: str) -> ShellSyntaxError:
        return ShellSyntaxError(message, self._position())

    # -- main loop ------------------------------------------------------------

    def tokens(self) -> List[Token]:
        result: List[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    def next_token(self) -> Token:
        self._skip_blanks_and_comments()
        start = self._position()
        char = self._peek()

        if char is None:
            if self._pending_heredocs:
                raise self._error("unterminated heredoc")
            return Token(TokenKind.EOF, "", start)

        if char == "\n":
            self._advance()
            self._collect_heredocs()
            return Token(TokenKind.NEWLINE, "\n", start)

        # IO_NUMBER: digits immediately followed by < or >
        if char.isdigit():
            idx = 0
            while (c := self._peek(idx)) is not None and c.isdigit():
                idx += 1
            if self._peek(idx) in ("<", ">"):
                digits = self._advance(idx)
                return Token(TokenKind.IO_NUMBER, digits, start)

        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                token = Token(TokenKind.OPERATOR, op, start)
                if op in ("<<", "<<-"):
                    self._register_heredoc(token, strip_tabs=(op == "<<-"))
                return token

        return self._lex_word(start)

    def _skip_blanks_and_comments(self) -> None:
        while True:
            char = self._peek()
            if char is None:
                return
            if char in _BLANK:
                self._advance()
            elif char == "\\" and self._peek(1) == "\n":
                self._advance(2)  # line continuation
            elif char == "#":
                while self._peek() is not None and self._peek() != "\n":
                    self._advance()
            else:
                return

    # -- words ---------------------------------------------------------------

    def _lex_word(self, start: Position) -> Token:
        begin = self.pos
        while True:
            char = self._peek()
            if char is None or char in _METACHARS:
                break
            if char == "\\":
                if self._peek(1) == "\n":
                    self._advance(2)
                    continue
                self._advance(2 if self._peek(1) is not None else 1)
                continue
            if char == "'":
                self._lex_single_quote()
                continue
            if char == '"':
                self._lex_double_quote()
                continue
            if char == "$":
                self._lex_dollar()
                continue
            if char == "`":
                self._lex_backquote()
                continue
            self._advance()
        raw = self.source[begin : self.pos]
        if not raw:
            raise self._error(f"unexpected character {char!r}")
        return Token(TokenKind.WORD, raw, start, raw=raw)

    def _lex_single_quote(self) -> None:
        self._advance()  # opening '
        while True:
            char = self._peek()
            if char is None:
                raise self._error("unterminated single quote")
            self._advance()
            if char == "'":
                return

    def _lex_double_quote(self) -> None:
        self._advance()  # opening "
        while True:
            char = self._peek()
            if char is None:
                raise self._error("unterminated double quote")
            if char == '"':
                self._advance()
                return
            if char == "\\" and self._peek(1) is not None:
                self._advance(2)
                continue
            if char == "$":
                self._lex_dollar()
                continue
            if char == "`":
                self._lex_backquote()
                continue
            self._advance()

    def _lex_dollar(self) -> None:
        self._advance()  # "$"
        char = self._peek()
        if char == "{":
            self._lex_braced_param()
        elif char == "(":
            if self._peek(1) == "(":
                self._lex_arith()
            else:
                self._lex_command_sub()
        # else: simple $var or bare $ — consumed by the word scanner

    def _lex_braced_param(self) -> None:
        self._advance()  # "{"
        depth = 1
        while depth:
            char = self._peek()
            if char is None:
                raise self._error("unterminated ${")
            if char == "\\" and self._peek(1) is not None:
                self._advance(2)
                continue
            if char == "'":
                self._lex_single_quote()
                continue
            if char == '"':
                self._lex_double_quote()
                continue
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
            self._advance()

    def _lex_command_sub(self) -> None:
        self._advance()  # "("
        depth = 1
        while depth:
            char = self._peek()
            if char is None:
                raise self._error("unterminated $(")
            if char == "\\" and self._peek(1) is not None:
                self._advance(2)
                continue
            if char == "'":
                self._lex_single_quote()
                continue
            if char == '"':
                self._lex_double_quote()
                continue
            if char == "`":
                self._lex_backquote()
                continue
            if char == "#":
                # comment inside command substitution
                while self._peek() is not None and self._peek() != "\n":
                    self._advance()
                continue
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            self._advance()

    def _lex_arith(self) -> None:
        self._advance(2)  # "(("
        depth = 2
        while depth:
            char = self._peek()
            if char is None:
                raise self._error("unterminated $((")
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            self._advance()

    def _lex_backquote(self) -> None:
        self._advance()  # "`"
        while True:
            char = self._peek()
            if char is None:
                raise self._error("unterminated backquote")
            if char == "\\" and self._peek(1) is not None:
                self._advance(2)
                continue
            self._advance()
            if char == "`":
                return

    # -- heredocs --------------------------------------------------------------

    def _register_heredoc(self, token: Token, strip_tabs: bool) -> None:
        # The delimiter word follows the operator; lex it here so the body
        # collection (at next newline) knows what to look for.
        self._skip_blanks_and_comments()
        start = self._position()
        delim_token = self._lex_word(start)
        delimiter, quoted = _strip_quotes(delim_token.text)
        token.heredoc_quoted = quoted
        self._pending_heredocs.append((token, delimiter, strip_tabs))
        # Stash the delimiter word on the operator token; the parser uses it
        # as the redirect target.
        token.raw = delim_token.text

    def _collect_heredocs(self) -> None:
        for token, delimiter, strip_tabs in self._pending_heredocs:
            lines: List[str] = []
            while True:
                if self.pos >= len(self.source):
                    raise self._error(f"heredoc delimiter {delimiter!r} not found")
                end = self.source.find("\n", self.pos)
                if end == -1:
                    end = len(self.source)
                line = self.source[self.pos : end]
                self._advance(end - self.pos)
                if self.pos < len(self.source):
                    self._advance()  # the newline
                check = line.lstrip("\t") if strip_tabs else line
                if check == delimiter:
                    break
                lines.append(line.lstrip("\t") if strip_tabs else line)
            token.heredoc_body = "".join(line + "\n" for line in lines)
        self._pending_heredocs = []


def _strip_quotes(text: str) -> Tuple[str, bool]:
    """Remove quoting from a heredoc delimiter; report whether any quoting
    was present (quoted delimiters suppress expansion of the body)."""
    result = []
    quoted = False
    idx = 0
    while idx < len(text):
        char = text[idx]
        if char == "\\" and idx + 1 < len(text):
            result.append(text[idx + 1])
            quoted = True
            idx += 2
        elif char == "'":
            end = text.index("'", idx + 1)
            result.append(text[idx + 1 : end])
            quoted = True
            idx = end + 1
        elif char == '"':
            end = text.index('"', idx + 1)
            result.append(text[idx + 1 : end])
            quoted = True
            idx = end + 1
        else:
            result.append(char)
            idx += 1
    return "".join(result), quoted


def tokenize(source: str) -> List[Token]:
    """Tokenise ``source`` into a list ending with an EOF token."""
    return Lexer(source).tokens()
