"""AST → shell source rendering.

Used by the fix-synthesis machinery and by round-trip testing: for every
AST, ``parse(render(ast))`` must produce a structurally equal AST.
Words are rendered from their *raw* source slice, which preserves the
author's quoting exactly.
"""

from __future__ import annotations

from typing import List

from .ast import (
    AndOr,
    Background,
    BraceGroup,
    Case,
    Command,
    For,
    FunctionDef,
    If,
    Pipeline,
    Redirect,
    Sequence,
    SimpleCommand,
    Subshell,
    While,
)


def render(node: Command, multiline: bool = False) -> str:
    """Render a command AST back to shell source.

    With ``multiline=True`` the top-level sequence is rendered one
    command per line instead of ``;``-joined — the two spellings are
    equivalent POSIX list terminators, which makes this the printer half
    of the ``;``↔newline metamorphic rewrite.
    """
    if multiline and isinstance(node, Sequence):
        return "\n".join(_render(c) for c in node.commands)
    return _render(node)


def command_label(node: Command, limit: int = 48) -> str:
    """A short one-line source rendering of a command, for provenance
    labels in event traces and hazard diagnostics."""
    try:
        text = " ".join(_render(node).split())
    except TypeError:
        text = type(node).__name__
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return text


def _close(rendered: str, closer: str) -> str:
    """Join a rendered command with what follows it, e.g. ``; fi`` or the
    next command of a sequence.  A trailing ``&`` already terminates the
    command, so no ``;`` may follow it (``a &; b`` is a syntax error)."""
    if rendered.rstrip().endswith("&"):
        return f"{rendered} {closer}"
    return f"{rendered}; {closer}"


def _render(node: Command) -> str:
    if isinstance(node, SimpleCommand):
        return _render_simple(node)
    if isinstance(node, Pipeline):
        body = " | ".join(_render(c) for c in node.commands)
        return ("! " + body) if node.negated else body
    if isinstance(node, AndOr):
        return f"{_render(node.left)} {node.op} {_render(node.right)}"
    if isinstance(node, Sequence):
        out = ""
        for command in node.commands:
            piece = _render(command)
            out = piece if not out else _close(out, piece)
        return out
    if isinstance(node, Background):
        return f"{_render(node.command)} &"
    if isinstance(node, Subshell):
        return f"({_render(node.body)})" + _render_redirects(node.redirects)
    if isinstance(node, BraceGroup):
        return "{ " + _close(_render(node.body), "}") + _render_redirects(
            node.redirects
        )
    if isinstance(node, If):
        text = f"if {_render(node.cond)}; then {_render(node.then)}"
        for clause in node.elifs:
            text = _close(
                text, f"elif {_render(clause.cond)}; then {_render(clause.then)}"
            )
        if node.else_ is not None:
            text = _close(text, f"else {_render(node.else_)}")
        return _close(text, "fi") + _render_redirects(node.redirects)
    if isinstance(node, While):
        keyword = "until" if node.until else "while"
        return (
            f"{keyword} {_render(node.cond)}; do "
            + _close(_render(node.body), "done")
            + _render_redirects(node.redirects)
        )
    if isinstance(node, For):
        if node.words is None:
            head = f"for {node.var}"
        else:
            items = " ".join(w.raw for w in node.words)
            head = f"for {node.var} in {items}" if items else f"for {node.var} in"
        return (
            f"{head}; do " + _close(_render(node.body), "done")
            + _render_redirects(node.redirects)
        )
    if isinstance(node, Case):
        arms = []
        for item in node.items:
            patterns = " | ".join(w.raw for w in item.patterns)
            body = _render(item.body) if item.body is not None else ""
            arms.append(f"{patterns}) {body} ;;")
        return (
            f"case {node.subject.raw} in " + " ".join(arms) + " esac"
            + _render_redirects(node.redirects)
        )
    if isinstance(node, FunctionDef):
        return f"{node.name}() {_render(node.body)}"
    raise TypeError(f"cannot render {type(node).__name__}")


def _render_simple(node: SimpleCommand) -> str:
    parts: List[str] = []
    for assignment in node.assignments:
        parts.append(f"{assignment.name}={assignment.value.raw}")
    parts.extend(word.raw for word in node.words)
    rendered = " ".join(parts)
    return rendered + _render_redirects(node.redirects)


def _render_redirects(redirects: List[Redirect]) -> str:
    chunks = []
    for redirect in redirects:
        fd = str(redirect.fd) if redirect.fd is not None else ""
        if redirect.op in ("<<", "<<-"):
            # heredocs cannot be rendered inline; emit a quoted echo-pipe
            # equivalent is out of scope — keep the operator + delimiter
            chunks.append(f" {fd}{redirect.op}{redirect.target.raw}")
        else:
            chunks.append(f" {fd}{redirect.op}{redirect.target.raw}")
    return "".join(chunks)
