"""Stream types: regular languages describing line shapes (paper §3).

A :class:`StreamType` describes the lines flowing through a Unix stream:
every line belongs to the ``line`` language.  The degenerate case — an
*empty* line language — means the stream can carry no lines at all,
which is exactly the Fig. 5 bug signal (``grep '^desc'`` composed with
``lsb_release`` output produces the empty language).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..rlang import Regex


class StreamType:
    """The set of possible streams, described per line."""

    __slots__ = ("line", "name")

    def __init__(self, line: Regex, name: Optional[str] = None):
        self.line = line
        self.name = name

    # -- constructors --------------------------------------------------------

    @classmethod
    def of(cls, pattern: str, name: Optional[str] = None) -> "StreamType":
        return cls(Regex.compile(pattern), name)

    @classmethod
    def any(cls) -> "StreamType":
        return cls(Regex.compile(".*"), "any")

    @classmethod
    def dead(cls) -> "StreamType":
        """A stream that cannot carry any line."""
        return cls(Regex.compile("a") & Regex.compile("b"), "dead")

    # -- queries ----------------------------------------------------------------

    def is_dead(self) -> bool:
        """True when no line can flow (the stream is necessarily empty)."""
        return self.line.is_empty()

    def admits(self, line_text: str) -> bool:
        return self.line.matches(line_text)

    def admits_stream(self, lines: Iterable[str]) -> bool:
        return all(self.line.matches(line) for line in lines)

    # -- algebra ------------------------------------------------------------------

    def intersect(self, other: "StreamType") -> "StreamType":
        return StreamType(self.line & other.line)

    def union(self, other: "StreamType") -> "StreamType":
        return StreamType(self.line | other.line)

    def __le__(self, other: "StreamType") -> bool:
        """Subtyping = line-language containment."""
        return self.line <= other.line

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamType):
            return NotImplemented
        return self.line == other.line

    def __hash__(self) -> int:
        return hash(self.line)

    def describe(self) -> str:
        if self.name:
            return self.name
        if self.line.pattern:
            return self.line.pattern
        example = self.line.example()
        if example is None:
            return "∅"
        return f"lang({example!r}...)"

    def __repr__(self) -> str:
        return f"StreamType({self.describe()})"
