"""Regular types for stream contents (paper §3-§4)."""

from .infer import (
    PipelineTypes,
    StageIssue,
    StageIssueKind,
    check_pipeline,
)
from .library import (
    GENERAL_NUMERIC,
    PRODUCES_ON_EMPTY,
    grep_line_language,
    named_type,
    named_type_names,
    register_named_type,
    signature_for,
    type_of,
)
from .signatures import (
    ConcatT,
    Concrete,
    Filtered,
    Mapped,
    Signature,
    TypeError_,
    TypeVarT,
    Var,
    apply_signature,
    filter_sig,
    identity,
    prefix_sig,
    producer,
    simple,
    suffix_sig,
)
from .types import StreamType

__all__ = [
    "StreamType", "Signature", "TypeVarT", "TypeError_", "apply_signature",
    "simple", "identity", "filter_sig", "prefix_sig", "suffix_sig", "producer",
    "Concrete", "Var", "ConcatT", "Filtered", "Mapped",
    "check_pipeline", "PipelineTypes", "StageIssue", "StageIssueKind",
    "named_type", "named_type_names", "register_named_type", "type_of",
    "signature_for", "grep_line_language", "GENERAL_NUMERIC", "PRODUCES_ON_EMPTY",
]

from .dataflow import DataflowGraph, FixpointResult, Stage, ring_invariant  # noqa: E402

__all__ += ["DataflowGraph", "FixpointResult", "Stage", "ring_invariant"]
