"""Pipeline stream-type inference and checking.

Given a pipeline ``c1 | c2 | ... | cn``, thread a stream type through
each stage's signature, collecting:

- **type errors** — a stage's input is not contained in its domain;
- **dead streams** — the composed language becomes empty (Fig. 5): the
  downstream consumer can never receive a line;
- **untyped stages** — no signature is available; inference degrades to
  ``any`` and the stage is reported as a monitoring candidate (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional, Sequence

from .library import PRODUCES_ON_EMPTY, signature_for
from .signatures import Signature, TypeError_, apply_signature
from .types import StreamType


class StageIssueKind(Enum):
    TYPE_ERROR = auto()
    DEAD_STREAM = auto()
    UNTYPED = auto()


@dataclass
class StageIssue:
    kind: StageIssueKind
    stage: int
    command: str
    message: str


@dataclass
class PipelineTypes:
    """Result of typing a pipeline: per-stage output types and issues."""

    stage_types: List[StreamType]
    issues: List[StageIssue] = field(default_factory=list)

    @property
    def output(self) -> StreamType:
        return self.stage_types[-1] if self.stage_types else StreamType.any()

    @property
    def output_dead(self) -> bool:
        return self.output.is_dead()

    def errors(self) -> List[StageIssue]:
        return [i for i in self.issues if i.kind is StageIssueKind.TYPE_ERROR]

    def dead_stages(self) -> List[StageIssue]:
        return [i for i in self.issues if i.kind is StageIssueKind.DEAD_STREAM]

    def untyped_stages(self) -> List[StageIssue]:
        return [i for i in self.issues if i.kind is StageIssueKind.UNTYPED]


def check_pipeline(
    argvs: Sequence[Sequence[str]],
    input_type: Optional[StreamType] = None,
    signatures: Optional[Sequence[Optional[Signature]]] = None,
) -> PipelineTypes:
    """Type-check a pipeline given each stage's argv.

    ``signatures`` overrides signature lookup per stage (annotations).
    """
    current = input_type if input_type is not None else StreamType.any()
    stage_types: List[StreamType] = []
    issues: List[StageIssue] = []

    for idx, argv in enumerate(argvs):
        name = argv[0] if argv else "<empty>"
        display = " ".join(argv)
        sig = None
        if signatures is not None and idx < len(signatures):
            sig = signatures[idx]
        if sig is None:
            sig = signature_for(argv)

        if sig is None:
            issues.append(
                StageIssue(
                    StageIssueKind.UNTYPED,
                    idx,
                    display,
                    f"no type available for {display!r}; consider a "
                    "`# @type` annotation or runtime monitoring",
                )
            )
            current = StreamType.any()
            stage_types.append(current)
            continue

        if current.is_dead() and name not in PRODUCES_ON_EMPTY:
            # dead input propagates through pure stream transformers
            current = StreamType.dead()
            stage_types.append(current)
            continue

        try:
            current = apply_signature(sig, current)
        except TypeError_ as exc:
            issues.append(
                StageIssue(StageIssueKind.TYPE_ERROR, idx, display, str(exc))
            )
            current = StreamType.any()
            stage_types.append(current)
            continue

        if current.is_dead():
            issues.append(
                StageIssue(
                    StageIssueKind.DEAD_STREAM,
                    idx,
                    display,
                    f"the output of {display!r} is the empty language: no "
                    "line of its input can pass this stage",
                )
            )
        stage_types.append(current)

    return PipelineTypes(stage_types, issues)
