"""The descriptive type library and per-invocation command signatures.

Paper §4 ("ergonomic annotations") calls for "an extensible library of
descriptive types" — ``any`` for ``.*``, ``url`` for curl inputs,
``longlist`` for ``ls -l`` output — plus signature inference for common
stream commands from their concrete argv.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..rlang import Regex
from .signatures import (
    Signature,
    filter_sig,
    identity,
    prefix_sig,
    producer,
    simple,
    suffix_sig,
)
from .types import StreamType

# ---------------------------------------------------------------------------
# Named descriptive types (§4)
# ---------------------------------------------------------------------------

_NAMED_PATTERNS: Dict[str, str] = {
    "any": r".*",
    "empty": r"",
    "word": r"\S+",
    "number": r"[+-]?[0-9]+(\.[0-9]+)?",
    "integer": r"[+-]?[0-9]+",
    "hex": r"[0-9a-f]+",
    "hexnum": r"0x[0-9a-f]+",
    "path": r"/?([^/\n]*/)*[^/\n]+",
    "abspath": r"/([^/\n]*/)*[^/\n]*",
    "url": r"(https?|ftp)://[^\s]+",
    "ipv4": r"([0-9]{1,3}\.){3}[0-9]{1,3}",
    "identifier": r"[A-Za-z_][A-Za-z0-9_]*",
    # `ls -l` lines: mode, links, owner, group, size, date, name
    "longlist": r"[bcdlps-][rwxsStT-]{9}\+?\s+[0-9]+\s+\S+\s+\S+\s+[0-9]+\s+.*",
    # label<TAB>value pairs, as printed by lsb_release -a
    "labelled": r"[^\t\n]+:\t.*",
    "lsb_release": r"(Distributor ID|Description|Release|Codename):\t.*",
    "tsv2": r"[^\t\n]*\t[^\t\n]*",
    "csv": r"[^,\n]*(,[^,\n]*)*",
    "keyvalue": r"[A-Za-z_][A-Za-z0-9_]*=.*",
}

_named_cache: Dict[str, StreamType] = {}


def named_type(name: str) -> Optional[StreamType]:
    """Look up a descriptive type by name (``any``, ``url``, ...)."""
    if name not in _NAMED_PATTERNS:
        return None
    if name not in _named_cache:
        _named_cache[name] = StreamType.of(_NAMED_PATTERNS[name], name)
    return _named_cache[name]


def named_type_names() -> List[str]:
    return sorted(_NAMED_PATTERNS)


def register_named_type(name: str, pattern: str) -> StreamType:
    """Extend the library (user annotations may define new names)."""
    _NAMED_PATTERNS[name] = pattern
    _named_cache.pop(name, None)
    return named_type(name)


def type_of(name_or_pattern: str) -> StreamType:
    """``typeOf`` introspection: a name from the library, else a pattern."""
    named = named_type(name_or_pattern)
    if named is not None:
        return named
    return StreamType.of(name_or_pattern)


# ---------------------------------------------------------------------------
# grep pattern -> line language
# ---------------------------------------------------------------------------


def grep_line_language(pattern: str, whole_line: bool = False) -> Regex:
    """The language of *lines selected by* a grep pattern.

    Grep matching is unanchored unless the pattern anchors it: ``desc``
    selects ``.*desc.*``; ``^desc`` selects ``desc.*``; ``desc$`` selects
    ``.*desc``.
    """
    anchored_start = pattern.startswith("^")
    anchored_end = pattern.endswith("$") and not pattern.endswith("\\$")
    core = pattern
    if anchored_start:
        core = core[1:]
    if anchored_end:
        core = core[:-1]
    lang = Regex.compile(core)
    if whole_line:
        return lang
    if not anchored_start:
        lang = Regex.compile(".*") + lang
    if not anchored_end:
        lang = lang + Regex.compile(".*")
    return lang


# ---------------------------------------------------------------------------
# Signatures for common stream commands from argv
# ---------------------------------------------------------------------------

#: Numeric-token line shape for `sort -g`/`sort -n`: a general number
#: (hex per strtod, or decimal) followed by end-of-token.  The paper's
#: example instance: ∀α ⊆ 0x[0-9a-f]+.* for hex pipelines.
GENERAL_NUMERIC = r"[+-]?(0x[0-9a-f]+|[0-9]+(\.[0-9]+)?)(\s.*)?"


def signature_for(argv: Sequence[str]) -> Optional[Signature]:
    """A stream-type signature for a concrete invocation, or None when
    the command is untyped (triggering §4's runtime monitoring)."""
    if not argv:
        return None
    name = argv[0]
    builder = _BUILDERS.get(name)
    if builder is None:
        return None
    return builder(list(argv[1:]))


def _split_flags(args: List[str]) -> (List[str], List[str]):
    flags, operands = [], []
    for arg in args:
        if arg.startswith("-") and arg != "-":
            flags.append(arg)
        else:
            operands.append(arg)
    return flags, operands


def _sig_grep(args: List[str]) -> Optional[Signature]:
    flags, operands = _split_flags(args)
    flagchars = set("".join(f[1:] for f in flags if not f.startswith("--")))
    pattern: Optional[str] = None
    for flag in flags:
        if flag.startswith("--regexp="):
            pattern = flag.split("=", 1)[1]
    if pattern is None:
        if "e" in flagchars:
            # best effort: `-e PAT` — find the operand after -e
            for idx, arg in enumerate(args):
                if arg == "-e" and idx + 1 < len(args):
                    pattern = args[idx + 1]
                    operands = [o for o in operands if o != pattern]
                    break
        elif operands:
            pattern = operands[0]
    if pattern is None:
        return None
    try:
        if "o" in flagchars:
            # -o emits the matched fragments themselves, one per line
            core = pattern.lstrip("^").rstrip("$")
            out = Regex.compile(core)
            label = f"grep -o {pattern!r}"
            return Signature(
                _any_expr(), _concrete_expr(out), label=label
            )
        line_lang = grep_line_language(pattern, whole_line="x" in flagchars)
        if "c" in flagchars:
            return simple(".*", "[0-9]+", label=f"grep -c {pattern!r}")
        if "v" in flagchars:
            return _filter_complement(line_lang, label=f"grep -v {pattern!r}")
        return _filter(line_lang, label=f"grep {pattern!r}")
    except Exception:
        return None  # unsupported pattern syntax: untyped


def _sig_sed(args: List[str]) -> Optional[Signature]:
    flags, operands = _split_flags(args)
    if not operands:
        return None
    script = operands[0]
    parsed = _parse_sed_subst(script)
    if parsed is None:
        return None
    pattern, replacement = parsed
    if "&" in replacement or "\\" in replacement:
        return None
    if pattern == "^":
        return prefix_sig(replacement, label=f"sed {script!r}")
    if pattern == "$":
        return suffix_sig(replacement, label=f"sed {script!r}")
    return None  # general substitution: untyped (monitoring territory)


def _parse_sed_subst(script: str):
    if len(script) < 4 or script[0] != "s":
        return None
    delim = script[1]
    parts = script[2:].split(delim)
    if len(parts) < 2:
        return None
    return parts[0], parts[1]


def _sig_sort(args: List[str]) -> Signature:
    flags, _ = _split_flags(args)
    flagchars = set("".join(f[1:] for f in flags if not f.startswith("--")))
    if flagchars & {"g", "n"}:
        return identity(label="sort -g", bound=GENERAL_NUMERIC)
    return identity(label="sort")


def _sig_cut(args: List[str]) -> Optional[Signature]:
    delim = "\t"
    for idx, arg in enumerate(args):
        if arg.startswith("-d") and len(arg) > 2:
            delim = arg[2:]
        elif arg == "-d" and idx + 1 < len(args):
            delim = args[idx + 1]
    escaped = "\\" + delim if delim in "\\^$.[]|()*+?{}" else delim
    return simple(".*", f"[^{escaped}\\n]*", label="cut")


def _sig_head_tail(args: List[str]) -> Signature:
    return identity(label="head/tail")


def _sig_wc(args: List[str]) -> Signature:
    return producer(r"\s*[0-9]+(\s+[0-9]+)*(\s+\S+)?", label="wc")


def _sig_cat(args: List[str]) -> Signature:
    return identity(label="cat")


def _sig_uniq(args: List[str]) -> Signature:
    flags, _ = _split_flags(args)
    if any("c" in f for f in flags):
        return Signature(
            Var_("α"),
            _concrete_then_var(r"\s*[0-9]+ ", "α"),
            vars=(TypeVarT_("α"),),
            label="uniq -c",
        )
    return identity(label="uniq")


def _sig_tr(args: List[str]) -> Optional[Signature]:
    flags, operands = _split_flags(args)
    if "-d" in flags and operands:
        # deleting characters: output lines lack them
        try:
            removed = _tr_charset(operands[0])
            kept = removed.complement()
            out = Regex.from_ast(_star_of(kept))
            return Signature(_any_expr(), _concrete_expr(out), label="tr -d")
        except Exception:
            return None
    if len(operands) >= 2 and not flags:
        # translation mode: ∀α. α -> h(α), the homomorphic image under
        # the SET1 -> SET2 character map
        try:
            translate = _tr_translator(operands[0], operands[1])
        except ValueError:
            return None
        return Signature(
            Var_("α"),
            Mapped_("α", translate, label=f"tr[{operands[0]}→{operands[1]}]"),
            vars=(TypeVarT_("α"),),
            label=f"tr {operands[0]} {operands[1]}",
        )
    return None


def _tr_expand(spec: str) -> List[str]:
    """Expand a tr SET into its character list (ranges supported)."""
    chars: List[str] = []
    idx = 0
    while idx < len(spec):
        if idx + 2 < len(spec) and spec[idx + 1] == "-" and ord(spec[idx]) <= ord(spec[idx + 2]):
            chars.extend(
                chr(code) for code in range(ord(spec[idx]), ord(spec[idx + 2]) + 1)
            )
            idx += 3
        else:
            chars.append(spec[idx])
            idx += 1
    return chars


def _tr_translator(set1: str, set2: str):
    """A CharSet->CharSet image function for ``tr SET1 SET2``."""
    from ..rlang.charclass import CharSet

    src = _tr_expand(set1)
    dst = _tr_expand(set2)
    if not src or not dst:
        raise ValueError("empty tr set")
    if len(dst) < len(src):
        dst = dst + [dst[-1]] * (len(src) - len(dst))  # POSIX pads SET2
    mapping = dict(zip(src, dst))
    src_charset = CharSet.of("".join(src))

    def translate(charset):
        untouched = charset.difference(src_charset)
        mapped = CharSet.of(
            "".join(mapping[c] for c in src if c in charset)
        )
        return untouched.union(mapped)

    return translate


def _tr_charset(spec: str):
    from ..rlang.charclass import CharSet

    result = CharSet.empty()
    idx = 0
    while idx < len(spec):
        if idx + 2 < len(spec) and spec[idx + 1] == "-":
            result = result.union(CharSet.range(spec[idx], spec[idx + 2]))
            idx += 3
        else:
            result = result.union(CharSet.of(spec[idx]))
            idx += 1
    return result


def _star_of(charset):
    from ..rlang.syntax import Lit, Star

    return Star(Lit(charset))


def _sig_lsb_release(args: List[str]) -> Signature:
    return producer(_NAMED_PATTERNS["lsb_release"], label="lsb_release")


def _sig_ls(args: List[str]) -> Signature:
    flags, _ = _split_flags(args)
    if any("l" in f for f in flags):
        return producer(_NAMED_PATTERNS["longlist"], label="ls -l")
    return producer(r"[^\n]*", label="ls")


def _sig_echo(args: List[str]) -> Signature:
    return producer(".*", label="echo")


def _sig_basename(args: List[str]) -> Signature:
    return producer(r"[^/\n]+", label="basename")


def _sig_dirname(args: List[str]) -> Signature:
    return producer(_NAMED_PATTERNS["path"] + "|/|\\.", label="dirname")


def _sig_seq(args: List[str]) -> Signature:
    return producer(r"-?[0-9]+(\.[0-9]+)?", label="seq")


def _sig_xargs(args: List[str]) -> Optional[Signature]:
    """``xargs CMD ...``: output is CMD's output (on unknowable input)."""
    idx = 0
    while idx < len(args):
        arg = args[idx]
        if arg in ("-n", "-I", "-P", "-d", "-s"):
            idx += 2
            continue
        if arg.startswith("-"):
            idx += 1
            continue
        break
    inner = args[idx:]
    if not inner:
        return None
    inner_sig = signature_for(inner)
    if inner_sig is None:
        return None
    try:
        out = apply_signature_to_any(inner_sig)
    except Exception:
        return None
    return Signature(
        _any_expr(), _concrete_expr(out.line), label=f"xargs {' '.join(inner)}"
    )


def apply_signature_to_any(sig: Signature):
    """The output type of a signature fed the universal input."""
    from .signatures import apply_signature
    from .types import StreamType

    return apply_signature(sig, StreamType.any())


def _sig_awk(args: List[str]) -> Optional[Signature]:
    """``awk '{print $N}'`` selects one whitespace-separated field."""
    flags, operands = _split_flags(args)
    if flags or not operands:
        return None
    import re as _re

    match = _re.fullmatch(r"\s*\{\s*print\s+\$([0-9]+)\s*\}\s*", operands[0])
    if match:
        return simple(".*", r"[^\s\n]*", label=f"awk print ${match.group(1)}")
    return None  # general awk programs: untyped


def _sig_nl(args: List[str]) -> Signature:
    return Signature(
        Var_("α"),
        _concrete_then_var(r"\s*[0-9]+\t", "α"),
        vars=(TypeVarT_("α"),),
        label="nl",
    )


# -- small expression helpers (avoid importing names circularly) -------------

from .signatures import Concrete as _Concrete  # noqa: E402
from .signatures import ConcatT as _ConcatT  # noqa: E402
from .signatures import Filtered as _Filtered  # noqa: E402
from .signatures import Mapped as Mapped_  # noqa: E402
from .signatures import TypeVarT as TypeVarT_  # noqa: E402
from .signatures import Var as Var_  # noqa: E402


def _any_expr():
    return _Concrete(Regex.compile("(.|\\n)*"))


def _concrete_expr(lang: Regex):
    return _Concrete(lang)


def _concrete_then_var(pattern: str, var: str):
    return _ConcatT((_Concrete(Regex.compile(pattern)), Var_(var)))


def _filter(lang: Regex, label: str) -> Signature:
    return Signature(
        Var_("α"), _Filtered("α", lang), vars=(TypeVarT_("α"),), label=label
    )


def _filter_complement(lang: Regex, label: str) -> Signature:
    return Signature(
        Var_("α"), _Filtered("α", ~lang), vars=(TypeVarT_("α"),), label=label
    )


_BUILDERS: Dict[str, Callable[[List[str]], Optional[Signature]]] = {
    "grep": _sig_grep,
    "egrep": _sig_grep,
    "fgrep": _sig_grep,
    "sed": _sig_sed,
    "sort": _sig_sort,
    "cut": _sig_cut,
    "head": _sig_head_tail,
    "tail": _sig_head_tail,
    "wc": _sig_wc,
    "cat": _sig_cat,
    "tac": _sig_cat,
    "uniq": _sig_uniq,
    "tr": _sig_tr,
    "lsb_release": _sig_lsb_release,
    "ls": _sig_ls,
    "echo": _sig_echo,
    "basename": _sig_basename,
    "dirname": _sig_dirname,
    "seq": _sig_seq,
    "nl": _sig_nl,
    "xargs": _sig_xargs,
    "awk": _sig_awk,
}

#: Commands that emit output even when their input stream is empty.
PRODUCES_ON_EMPTY = {"wc", "echo", "lsb_release", "ls", "seq", "basename", "dirname"}
