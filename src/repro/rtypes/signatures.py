"""Command type signatures, including polymorphic regular types (§4).

A signature describes a stream transformer::

    grep '^desc'  ::  .* -> desc.*              (simple)
    grep '^desc'  ::  ∀α. α -> α ∩ desc.*       (filter, precise)
    sed 's/^/0x/' ::  ∀α. α -> 0xα              (polymorphic concat)
    sort -g       ::  ∀α ⊆ 0x[0-9a-f]+.*. α -> α (bounded polymorphism)

Type expressions are restricted so that application is decidable and
cheap: the input pattern is a concrete language or a (bounded) variable;
the output is a concatenation of concrete languages and variables, or a
variable intersected with a filter language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..rlang import Regex
from .types import StreamType


class TypeError_(Exception):
    """A stream type mismatch (named to avoid shadowing the builtin)."""


@dataclass(frozen=True)
class TypeVarT:
    """A quantified type variable, optionally bounded: ``∀α ⊆ bound``."""

    name: str
    bound: Optional[Regex] = None

    def __str__(self) -> str:
        if self.bound is not None:
            return f"{self.name}⊆{self.bound.pattern or '<lang>'}"
        return self.name


class TypeExpr:
    """Base class for type expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Concrete(TypeExpr):
    lang: Regex

    def __str__(self) -> str:
        return self.lang.pattern or "<lang>"


@dataclass(frozen=True)
class Var(TypeExpr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConcatT(TypeExpr):
    """Concatenation of parts, e.g. ``0xα``."""

    parts: tuple

    def __str__(self) -> str:
        return "".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Filtered(TypeExpr):
    """``α ∩ F`` — the filter reading of grep-like commands."""

    var: str
    filter: Regex

    def __str__(self) -> str:
        return f"{self.var}∩{self.filter.pattern or '<lang>'}"


@dataclass(frozen=True, eq=False)
class Mapped(TypeExpr):
    """``h(α)`` — the homomorphic image of the input under a
    per-character map (the type of ``tr SET1 SET2``)."""

    var: str
    translate: object  # Callable[[CharSet], CharSet]
    label: str = "h"

    def __str__(self) -> str:
        return f"{self.label}({self.var})"


@dataclass(frozen=True)
class Signature:
    """``∀vars. input -> output`` over line languages."""

    input: TypeExpr
    output: TypeExpr
    vars: tuple = ()
    label: str = ""

    def __str__(self) -> str:
        quant = ""
        if self.vars:
            quant = "∀" + ",".join(str(v) for v in self.vars) + ". "
        return f"{self.label or 'cmd'} :: {quant}{self.input} -> {self.output}"


# -- constructors ------------------------------------------------------------


def simple(input_pattern: str, output_pattern: str, label: str = "") -> Signature:
    """A monomorphic ``IN -> OUT`` signature."""
    return Signature(
        Concrete(Regex.compile(input_pattern)),
        Concrete(Regex.compile(output_pattern)),
        label=label,
    )


def identity(label: str = "", bound: Optional[str] = None) -> Signature:
    """``∀α[⊆bound]. α -> α`` — sort, cat, uniq, tac, head, tail..."""
    tv = TypeVarT("α", Regex.compile(bound) if bound else None)
    return Signature(Var("α"), Var("α"), vars=(tv,), label=label)


def filter_sig(filter_pattern: str, label: str = "") -> Signature:
    """``∀α. α -> α ∩ F`` — the precise type of a grep filter."""
    tv = TypeVarT("α")
    return Signature(
        Var("α"), Filtered("α", Regex.compile(filter_pattern)), vars=(tv,), label=label
    )


def prefix_sig(prefix: str, label: str = "") -> Signature:
    """``∀α. α -> PREFIXα`` — sed 's/^/PREFIX/'."""
    tv = TypeVarT("α")
    return Signature(
        Var("α"),
        ConcatT((Concrete(Regex.literal(prefix)), Var("α"))),
        vars=(tv,),
        label=label,
    )


def suffix_sig(suffix: str, label: str = "") -> Signature:
    """``∀α. α -> αSUFFIX`` — sed 's/$/SUFFIX/'."""
    tv = TypeVarT("α")
    return Signature(
        Var("α"),
        ConcatT((Var("α"), Concrete(Regex.literal(suffix)))),
        vars=(tv,),
        label=label,
    )


def producer(output_pattern: str, label: str = "") -> Signature:
    """A source command: any input (ignored), fixed output language."""
    return Signature(
        Concrete(Regex.compile("(.|\\n)*")),
        Concrete(Regex.compile(output_pattern)),
        label=label,
    )


# -- application ---------------------------------------------------------------


def apply_signature(sig: Signature, input_type: StreamType) -> StreamType:
    """Instantiate and apply a signature to an input stream type.

    Raises :class:`TypeError_` when the input is not contained in the
    signature's domain (or a variable's bound).
    """
    bindings: Dict[str, Regex] = {}
    _match_input(sig, sig.input, input_type.line, bindings)
    for tv in sig.vars:
        if tv.bound is not None and tv.name in bindings:
            if not bindings[tv.name] <= tv.bound:
                raise TypeError_(
                    f"{sig.label or 'command'}: input language is not within "
                    f"the bound of {tv} — a value outside "
                    f"{tv.bound.pattern or 'the bound'} may reach it"
                    + _witness(bindings[tv.name] - tv.bound)
                )
    out = _eval_output(sig.output, bindings)
    return StreamType(out)


def _match_input(
    sig: Signature, expr: TypeExpr, lang: Regex, bindings: Dict[str, Regex]
) -> None:
    if isinstance(expr, Concrete):
        if not lang <= expr.lang:
            raise TypeError_(
                f"{sig.label or 'command'} expects input ⊆ "
                f"{expr.lang.pattern or '<lang>'}" + _witness(lang - expr.lang)
            )
        return
    if isinstance(expr, Var):
        bindings[expr.name] = lang
        return
    raise TypeError_(f"unsupported input pattern {expr}")


def _eval_output(expr: TypeExpr, bindings: Dict[str, Regex]) -> Regex:
    if isinstance(expr, Concrete):
        return expr.lang
    if isinstance(expr, Var):
        if expr.name not in bindings:
            raise TypeError_(f"unbound type variable {expr.name}")
        return bindings[expr.name]
    if isinstance(expr, ConcatT):
        result: Optional[Regex] = None
        for part in expr.parts:
            lang = _eval_output(part, bindings)
            result = lang if result is None else result + lang
        return result if result is not None else Regex.literal("")
    if isinstance(expr, Filtered):
        if expr.var not in bindings:
            raise TypeError_(f"unbound type variable {expr.var}")
        return bindings[expr.var] & expr.filter
    if isinstance(expr, Mapped):
        if expr.var not in bindings:
            raise TypeError_(f"unbound type variable {expr.var}")
        return bindings[expr.var].map_chars(expr.translate)
    raise TypeError_(f"unsupported output expression {expr}")


def _witness(diff: Regex) -> str:
    example = diff.example()
    if example is None:
        return ""
    return f" (e.g. the line {example!r})"
