"""Fixpoint type inference over (possibly cyclic) dataflow graphs.

Paper §4 "feedback loops and circular dataflow": crawlers, indexers,
and ML workloads wire commands into cycles, so types cannot simply be
threaded left to right.  Invariants are computed by the iterative least
fixpoint the paper sketches: start every stream at the empty language
(⊥), repeatedly apply each stage's signature with the union of its
incoming languages, and stop when no stream grows.  Monotone signatures
over a finite lattice region converge; a widening bound guards the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..rlang import Regex
from .signatures import Signature, TypeError_, apply_signature
from .types import StreamType


@dataclass
class Stage:
    """One node in the dataflow graph."""

    name: str
    signature: Optional[Signature] = None
    #: Source nodes inject this type regardless of inputs (e.g. ``cat seed``).
    seed: Optional[StreamType] = None


@dataclass
class FixpointResult:
    types: Dict[str, StreamType]
    iterations: int
    converged: bool
    widened: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    def type_of(self, stage: str) -> StreamType:
        return self.types[stage]


class DataflowGraph:
    """A graph of stream-processing stages; edges carry streams."""

    def __init__(self):
        self.graph = nx.DiGraph()
        self.stages: Dict[str, Stage] = {}

    def add_stage(
        self,
        name: str,
        signature: Optional[Signature] = None,
        seed: Optional[StreamType] = None,
    ) -> None:
        self.stages[name] = Stage(name, signature, seed)
        self.graph.add_node(name)

    def connect(self, src: str, dst: str) -> None:
        if src not in self.stages or dst not in self.stages:
            raise KeyError("connect() requires both stages to exist")
        self.graph.add_edge(src, dst)

    def has_cycle(self) -> bool:
        return not nx.is_directed_acyclic_graph(self.graph)

    def cycles(self) -> List[List[str]]:
        return list(nx.simple_cycles(self.graph))

    # -- fixpoint ------------------------------------------------------------

    def infer(self, max_iterations: int = 64) -> FixpointResult:
        """Iterative least-fixpoint inference of every stage's output type."""
        bottom = StreamType.dead()
        out: Dict[str, StreamType] = {name: bottom for name in self.stages}
        errors: List[str] = []

        # seed sources
        for name, stage in self.stages.items():
            if stage.seed is not None:
                out[name] = stage.seed

        iterations = 0
        changed = True
        order = list(nx.topological_sort(self.graph)) if not self.has_cycle() else list(self.stages)
        while changed and iterations < max_iterations:
            changed = False
            iterations += 1
            for name in order:
                stage = self.stages[name]
                new_type = self._transfer(stage, out, errors)
                if not self._same(new_type, out[name]):
                    out[name] = new_type
                    changed = True

        widened: List[str] = []
        if changed:
            # did not converge: widen the still-unstable stages to ⊤
            for name in order:
                stage = self.stages[name]
                new_type = self._transfer(stage, out, [])
                if not self._same(new_type, out[name]):
                    out[name] = StreamType.any()
                    widened.append(name)
            # one more pass so downstream stages see the widened types
            for name in order:
                stage = self.stages[name]
                out[name] = self._transfer(stage, out, errors)

        return FixpointResult(
            types=out,
            iterations=iterations,
            converged=not changed,
            widened=widened,
            errors=errors,
        )

    def _transfer(
        self, stage: Stage, out: Dict[str, StreamType], errors: List[str]
    ) -> StreamType:
        preds = list(self.graph.predecessors(stage.name))
        if not preds:
            if stage.seed is not None:
                return stage.seed
            input_type = StreamType.any()
        else:
            input_type = out[preds[0]]
            for pred in preds[1:]:
                input_type = input_type.union(out[pred])
            if stage.seed is not None:
                input_type = input_type.union(stage.seed)
        if stage.signature is None:
            return StreamType.any()
        if input_type.is_dead():
            return StreamType.dead()
        try:
            return apply_signature(stage.signature, input_type)
        except TypeError_ as exc:
            message = f"{stage.name}: {exc}"
            if message not in errors:
                errors.append(message)
            return StreamType.any()

    @staticmethod
    def _same(a: StreamType, b: StreamType) -> bool:
        return a.line == b.line


def ring_invariant(
    stages: Sequence[Tuple[str, Signature]],
    seed: StreamType,
    max_iterations: int = 64,
) -> FixpointResult:
    """Convenience: a feedback ring ``s0 -> s1 -> ... -> s0`` seeded at
    ``s0`` (the ``cat``/``tail -f`` entry the paper mentions)."""
    graph = DataflowGraph()
    for idx, (name, sig) in enumerate(stages):
        graph.add_stage(name, sig, seed=seed if idx == 0 else None)
    names = [name for name, _ in stages]
    for idx in range(len(names)):
        graph.connect(names[idx], names[(idx + 1) % len(names)])
    return graph.infer(max_iterations=max_iterations)
