"""File-system event traces with command provenance.

Every mutation and observation of the symbolic file system is recorded
as an event.  Traces serve three masters: the miner's instrumented
probing (§3, Fig. 4 "instrument and execute all command invocations"),
the read/write dependency analysis enabling optimisation (§5), and the
effect-graph hazard analysis over ``&``/``wait`` concurrency.

Each event carries an :class:`Origin` — which command caused it — and a
``task`` id: 0 for the foreground script, or the region id of the
background job (``cmd &``) that produced it.  Region lifetimes are
delimited in the trace itself by ``BG_OPEN``/``BG_CLOSE`` marker events,
so a consumer can reconstruct which accesses were interleavable.

Logs fork in O(1): the shared prefix is kept as a chain of immutable,
sealed segments; only a small open tail is owned by any one log.  A
naive per-fork copy made heavy scripts O(events x forks).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List, Optional


class FsOp(Enum):
    STAT = auto()        # existence/kind observed
    READ = auto()        # file contents read
    WRITE = auto()       # file contents written/created
    CREATE = auto()      # node created
    DELETE = auto()      # node removed
    CHDIR = auto()       # working directory changed
    LIST = auto()        # directory listed
    BG_OPEN = auto()     # a background region opened (cmd &)
    BG_CLOSE = auto()    # a background region closed (wait / join)

    @property
    def is_marker(self) -> bool:
        return self in (FsOp.BG_OPEN, FsOp.BG_CLOSE)


@dataclass(frozen=True)
class Origin:
    """Provenance of an event: the command that caused it.

    ``label`` is a short source rendering (``grep x f``); ``pos`` is the
    command's :class:`~repro.shell.tokens.Position` (kept opaque here so
    the fs layer stays independent of the shell front end).
    """

    label: str = ""
    pos: Optional[object] = None

    def where(self) -> str:
        return f"{self.pos}" if self.pos is not None else "?"

    def describe(self) -> str:
        if self.pos is not None:
            return f"`{self.label}` ({self.pos})"
        return f"`{self.label}`"


@dataclass(frozen=True)
class FsEvent:
    op: FsOp
    path: str
    node: Optional[int] = None
    detail: str = ""
    #: the command this event belongs to (None for untagged/legacy events)
    origin: Optional[Origin] = None
    #: 0 = foreground; otherwise the background region id that ran it
    task: int = 0
    #: for BG_OPEN/BG_CLOSE markers: the region being opened/closed
    region: Optional[int] = None

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.op.name.lower()} {self.path}{extra}"


class _Segment:
    """An immutable, sealed run of events plus a link to earlier runs."""

    __slots__ = ("events", "parent", "cum_len")

    def __init__(self, events: List[FsEvent], parent: Optional["_Segment"]):
        self.events = events
        self.parent = parent
        self.cum_len = len(events) + (parent.cum_len if parent is not None else 0)


_READ_OPS = (FsOp.READ, FsOp.STAT, FsOp.LIST)
_WRITE_OPS = (FsOp.WRITE, FsOp.CREATE, FsOp.DELETE)


class EventLog:
    """An append-only trace; forked logs share their prefix structurally.

    ``fork()`` seals the current tail into an immutable segment and hands
    the child a reference to the segment chain — O(1) regardless of how
    many events were recorded, where the previous implementation copied
    the whole list per fork (O(n·forks) across a run).
    """

    __slots__ = ("_head", "_tail", "origin", "task")

    def __init__(self, events: Optional[List[FsEvent]] = None):
        self._head: Optional[_Segment] = None
        self._tail: List[FsEvent] = list(events) if events else []
        #: sticky provenance: stamped onto every recorded event
        self.origin: Optional[Origin] = None
        #: the task (0 = foreground, else region id) recording right now
        self.task: int = 0

    # -- recording ----------------------------------------------------------

    def record(
        self, op: FsOp, path: str, node: Optional[int] = None, detail: str = ""
    ) -> None:
        self._tail.append(
            FsEvent(op, path, node, detail, origin=self.origin, task=self.task)
        )

    def set_origin(self, origin: Optional[Origin]) -> None:
        self.origin = origin

    def open_region(self, region: int, label: str = "", origin: Optional[Origin] = None) -> None:
        """Mark the start of a background region (``cmd &``)."""
        self._tail.append(
            FsEvent(
                FsOp.BG_OPEN, "", None, label,
                origin=origin or self.origin, task=self.task, region=region,
            )
        )

    def close_region(self, region: int, label: str = "") -> None:
        """Mark a region as joined (``wait`` reached, ordering restored)."""
        self._tail.append(
            FsEvent(
                FsOp.BG_CLOSE, "", None, label,
                origin=self.origin, task=self.task, region=region,
            )
        )

    # -- forking ------------------------------------------------------------

    def _seal(self) -> None:
        if self._tail:
            self._head = _Segment(self._tail, self._head)
            self._tail = []

    def fork(self) -> "EventLog":
        self._seal()
        child = EventLog.__new__(EventLog)
        child._head = self._head
        child._tail = []
        child.origin = self.origin
        child.task = self.task
        return child

    # -- views --------------------------------------------------------------

    @property
    def events(self) -> List[FsEvent]:
        """The full trace, materialised (prefer iteration or `since`)."""
        return list(self)

    def since(self, mark: int) -> List[FsEvent]:
        """Events recorded after position ``mark`` (= an earlier len())."""
        if mark <= 0:
            return list(self)
        collected: List[FsEvent] = list(self._tail)
        segment = self._head
        base = segment.cum_len if segment is not None else 0
        while segment is not None and segment.cum_len > mark:
            collected = segment.events + collected
            base = segment.cum_len - len(segment.events)
            segment = segment.parent
        return collected[mark - base:]

    def reads(self) -> List[FsEvent]:
        return [e for e in self if e.op in _READ_OPS]

    def writes(self) -> List[FsEvent]:
        return [e for e in self if e.op in _WRITE_OPS]

    def __len__(self) -> int:
        return (self._head.cum_len if self._head is not None else 0) + len(self._tail)

    def __iter__(self) -> Iterator[FsEvent]:
        segments: List[List[FsEvent]] = []
        segment = self._head
        while segment is not None:
            segments.append(segment.events)
            segment = segment.parent
        for events in reversed(segments):
            yield from events
        yield from self._tail
