"""File-system event traces.

Every mutation and observation of the symbolic file system is recorded
as an event.  Traces serve two masters: the miner's instrumented probing
(§3, Fig. 4 "instrument and execute all command invocations") and the
read/write dependency analysis enabling optimisation (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional


class FsOp(Enum):
    STAT = auto()        # existence/kind observed
    READ = auto()        # file contents read
    WRITE = auto()       # file contents written/created
    CREATE = auto()      # node created
    DELETE = auto()      # node removed
    CHDIR = auto()       # working directory changed
    LIST = auto()        # directory listed


@dataclass(frozen=True)
class FsEvent:
    op: FsOp
    path: str
    node: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.op.name.lower()} {self.path}{extra}"


class EventLog:
    """An append-only trace; forked states share the prefix by copy."""

    __slots__ = ("events",)

    def __init__(self, events: Optional[List[FsEvent]] = None):
        self.events = list(events or [])

    def record(self, op: FsOp, path: str, node: Optional[int] = None, detail: str = "") -> None:
        self.events.append(FsEvent(op, path, node, detail))

    def fork(self) -> "EventLog":
        return EventLog(self.events)

    def reads(self) -> List[FsEvent]:
        return [e for e in self.events if e.op in (FsOp.READ, FsOp.STAT, FsOp.LIST)]

    def writes(self) -> List[FsEvent]:
        return [e for e in self.events if e.op in (FsOp.WRITE, FsOp.CREATE, FsOp.DELETE)]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
