"""Path components over symbolic strings.

A symbolic path is a sequence of components, each either a concrete name
or a symbolic segment (an unexpanded variable).  ``$1/config`` becomes
``[Sym(v), "config"]``; ``/opt/steam`` becomes root + ``["opt", "steam"]``.

A symbolic segment denotes *the node that variable resolves to* — it may
textually contain many ``/``-separated names, but for node-identity
reasoning (paper §4) all that matters is that two occurrences of the same
variable reach the same node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..symstr import GlobAtom, LitAtom, SymString


@dataclass(frozen=True)
class SymSegment:
    """A path segment whose name is an unexpanded symbolic variable."""

    vid: int


Component = Union[str, SymSegment]


@dataclass(frozen=True)
class SymPath:
    """``absolute`` paths start at "/"; otherwise resolution starts at the
    current working directory — unless the first component is symbolic, in
    which case the path hangs off that variable's own abstract root."""

    components: Tuple[Component, ...]
    absolute: bool

    @property
    def sym_rooted(self) -> bool:
        return bool(self.components) and isinstance(self.components[0], SymSegment)

    def child(self, name: str) -> "SymPath":
        return SymPath(self.components + (name,), self.absolute)

    def __str__(self) -> str:
        parts = [
            c if isinstance(c, str) else f"<v{c.vid}>" for c in self.components
        ]
        prefix = "/" if self.absolute else ""
        return prefix + "/".join(parts) if parts else (prefix or ".")


def normalise_concrete(path: str) -> str:
    """Lexical normalisation à la ``realpath -m`` (no symlink awareness):
    collapse ``//``, drop ``.``, resolve ``..`` against the prefix."""
    absolute = path.startswith("/")
    parts: List[str] = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if parts and parts[-1] != "..":
                parts.pop()
            elif not absolute:
                parts.append("..")
            # ".." at the root stays at the root
        else:
            parts.append(segment)
    body = "/".join(parts)
    if absolute:
        return "/" + body
    return body or "."


def parse_sympath(value: SymString) -> Optional[SymPath]:
    """Interpret a symbolic string as a path.

    Returns None when a variable is glued onto literal text *within* one
    segment (e.g. ``foo$X``) — the path's shape is then unknown.  The
    exception is a trailing glob-free concatenation ``$X$Y`` which also
    yields None; callers fall back to language-level reasoning.
    """
    # split atoms into segments on "/" occurring in literal atoms
    segments: List[List[object]] = [[]]
    absolute = False
    seen_any = False
    for atom in value.atoms:
        if isinstance(atom, LitAtom):
            pieces = atom.text.split("/")
            if not seen_any and atom.text.startswith("/"):
                absolute = True
            seen_any = True
            for idx, piece in enumerate(pieces):
                if idx > 0:
                    segments.append([])
                if piece:
                    segments[-1].append(piece)
        elif isinstance(atom, GlobAtom):
            return None  # callers strip globs before resolving
        else:
            seen_any = True
            segments[-1].append(SymSegment(atom.vid))

    components: List[Component] = []
    for segment in segments:
        if not segment:
            continue  # empty from "//" or leading "/"
        if len(segment) == 1 and isinstance(segment[0], SymSegment):
            components.append(segment[0])
        elif all(isinstance(p, str) for p in segment):
            components.append("".join(segment))
        else:
            return None  # variable fused with literal text in one segment

    # normalise "." / ".." over concrete components only
    normalised: List[Component] = []
    for comp in components:
        if comp == ".":
            continue
        if comp == "..":
            if normalised and isinstance(normalised[-1], str) and normalised[-1] != "..":
                normalised.pop()
            elif absolute and not normalised:
                continue
            else:
                normalised.append(comp)
        else:
            normalised.append(comp)
    return SymPath(tuple(normalised), absolute)
