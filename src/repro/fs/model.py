"""Symbolic file system with node identity and tri-state existence.

The model (paper §4 "file system effects") tracks *constraints on the
nodes to which individual paths resolve*.  Nodes have a tri-state
existence (EXISTS / ABSENT / UNKNOWN) and a kind (FILE / DIR / SYMLINK /
UNKNOWN).  Two path occurrences sharing a prefix resolve to the same
node, which is what makes ``rm -fr $1; cat $1/config`` a detectable
contradiction: ``rm`` marks the node for ``$1`` ABSENT, and ``cat``
requires a FILE node *below* it.

States fork cheaply: node records are immutable and replaced on change.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum, auto
from typing import Dict, List, Optional, Tuple

from .events import EventLog, FsOp
from .path import Component, SymPath, SymSegment


class Existence(Enum):
    EXISTS = auto()
    ABSENT = auto()
    UNKNOWN = auto()


class NodeKind(Enum):
    FILE = auto()
    DIR = auto()
    SYMLINK = auto()
    UNKNOWN = auto()


@dataclass(frozen=True)
class NodeRecord:
    node_id: int
    existence: Existence = Existence.UNKNOWN
    kind: NodeKind = NodeKind.UNKNOWN
    #: children: segment name (str or SymSegment) -> node id
    children: Tuple[Tuple[Component, int], ...] = ()
    parent: Optional[int] = None
    name: str = ""
    #: for SYMLINK nodes: the node the link points at (enables §4's
    #: "identity of filesystem locations referrable to by arbitrarily
    #: many path-strings")
    link_target: Optional[int] = None

    def child_map(self) -> Dict[Component, int]:
        return dict(self.children)


class FsContradiction(Exception):
    """An operation's precondition conflicts with established fs facts."""

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path


_node_ids = itertools.count(100)


class FileSystem:
    """A forkable symbolic file system."""

    ROOT = 1

    def __init__(
        self,
        nodes: Optional[Dict[int, NodeRecord]] = None,
        sym_roots: Optional[Dict[int, int]] = None,
        log: Optional[EventLog] = None,
        denied: Optional[Dict[int, frozenset]] = None,
    ):
        if nodes is None:
            nodes = {
                self.ROOT: NodeRecord(
                    self.ROOT,
                    existence=Existence.EXISTS,
                    kind=NodeKind.DIR,
                    name="/",
                )
            }
        self.nodes: Dict[int, NodeRecord] = dict(nodes)
        #: variable id -> abstract root node for paths like ``$1/...``
        self.sym_roots: Dict[int, int] = dict(sym_roots or {})
        self.log = log if log is not None else EventLog()
        #: node id -> kinds the node was observed *not* to be on this
        #: path (a failed ``[ -d X ]`` denies DIR without pinning
        #: absence — X may still exist as a file).  Weaker than
        #: tri-state existence, but enough for guard reasoning.
        self.denied: Dict[int, frozenset] = dict(denied or {})

    def fork(self) -> "FileSystem":
        return FileSystem(self.nodes, self.sym_roots, self.log.fork(), self.denied)

    # -- node bookkeeping ---------------------------------------------------

    def _get(self, node_id: int) -> NodeRecord:
        return self.nodes[node_id]

    def _set(self, record: NodeRecord) -> None:
        self.nodes[record.node_id] = record

    def _new_node(self, parent: Optional[int], name: str) -> NodeRecord:
        record = NodeRecord(next(_node_ids), parent=parent, name=name)
        self._set(record)
        return record

    def _child(self, parent_id: int, name: Component, create: bool = True) -> Optional[int]:
        parent = self._get(parent_id)
        mapping = parent.child_map()
        if name in mapping:
            return mapping[name]
        if not create:
            return None
        child = self._new_node(parent_id, str(name))
        mapping[name] = child.node_id
        self._set(replace(parent, children=tuple(mapping.items())))
        return child.node_id

    def sym_root(self, vid: int) -> int:
        if vid not in self.sym_roots:
            record = self._new_node(None, f"<v{vid}>")
            self.sym_roots[vid] = record.node_id
        return self.sym_roots[vid]

    # -- resolution ------------------------------------------------------------

    def resolve(
        self, path: SymPath, cwd: Optional[int] = None, create: bool = True
    ) -> Optional[int]:
        """The node a path resolves to (creating UNKNOWN placeholders).

        ``cwd`` is the node of the current working directory for relative
        paths; None means an unknown cwd, modelled as a shared abstract
        node.
        """
        if path.sym_rooted:
            current = self.sym_root(path.components[0].vid)  # type: ignore[union-attr]
            rest = path.components[1:]
        elif path.absolute:
            current = self.ROOT
            rest = path.components
        else:
            current = cwd if cwd is not None else self.sym_root(-1)
            rest = path.components
        for component in rest:
            current = self._follow_links(current)
            nxt = self._child(current, component, create=create)
            if nxt is None:
                return None
            current = nxt
        return current

    def _follow_links(self, node_id: int, limit: int = 8) -> int:
        """Chase symlink targets (bounded against cycles)."""
        current = node_id
        for _ in range(limit):
            record = self._get(current)
            if record.kind is not NodeKind.SYMLINK or record.link_target is None:
                return current
            current = record.link_target
        return current

    def resolve_final(self, path: SymPath, cwd: Optional[int] = None) -> Optional[int]:
        """Like :meth:`resolve`, but also follows a symlink at the final
        component (the `realpath` reading of a path)."""
        node = self.resolve(path, cwd=cwd)
        if node is None:
            return None
        return self._follow_links(node)

    def make_symlink(self, node_id: int, target_id: int) -> None:
        """Record that ``node_id`` is a symlink to ``target_id``."""
        record = self._get(node_id)
        self._set(
            replace(
                record,
                existence=Existence.EXISTS,
                kind=NodeKind.SYMLINK,
                link_target=target_id,
            )
        )
        self.log.record(
            FsOp.CREATE, self.path_of(node_id), node_id,
            f"symlink -> {self.path_of(target_id)}",
        )

    def path_of(self, node_id: int) -> str:
        parts: List[str] = []
        current: Optional[int] = node_id
        while current is not None:
            record = self._get(current)
            if record.name == "/":
                return "/" + "/".join(reversed(parts))
            parts.append(record.name)
            current = record.parent
        return "/".join(reversed(parts))

    # -- facts -------------------------------------------------------------------

    def existence(self, node_id: int) -> Existence:
        """Effective existence: ABSENT propagates downward from ancestors."""
        record = self._get(node_id)
        if record.existence is Existence.ABSENT:
            return Existence.ABSENT
        current = record.parent
        while current is not None:
            parent = self._get(current)
            if parent.existence is Existence.ABSENT:
                return Existence.ABSENT
            current = parent.parent
        return record.existence

    def kind(self, node_id: int) -> NodeKind:
        return self._get(node_id).kind

    def deny_kind(self, node_id: int, kind: NodeKind) -> None:
        """Record that the node is not of the given kind here (e.g. a
        failed ``[ -d X ]``: X is absent or a non-directory)."""
        self.denied[node_id] = self.denied.get(node_id, frozenset()) | {kind}

    def kind_denied(self, node_id: int, kind: NodeKind) -> bool:
        return kind in self.denied.get(node_id, frozenset())

    # -- assumptions (preconditions observed to hold) ------------------------------

    def assume_exists(self, node_id: int, kind: NodeKind = NodeKind.UNKNOWN) -> None:
        """Record that a node exists (and ancestors are directories).

        Raises :class:`FsContradiction` when facts already deny it —
        that's the "always fails" signal of §4.
        """
        record = self._get(node_id)
        if self.existence(node_id) is Existence.ABSENT:
            raise FsContradiction(
                f"path {self.path_of(node_id)} cannot exist here: it (or an "
                "ancestor) was deleted or known absent",
                self.path_of(node_id),
            )
        if (
            kind is not NodeKind.UNKNOWN
            and record.kind is not NodeKind.UNKNOWN
            and record.kind is not kind
        ):
            raise FsContradiction(
                f"{self.path_of(node_id)} is a {record.kind.name.lower()}, "
                f"not a {kind.name.lower()}",
                self.path_of(node_id),
            )
        new_kind = kind if record.kind is NodeKind.UNKNOWN else record.kind
        self._set(replace(record, existence=Existence.EXISTS, kind=new_kind))
        self.log.record(FsOp.STAT, self.path_of(node_id), node_id, "exists")
        # ancestors must be existing directories
        current = record.parent
        while current is not None:
            parent = self._get(current)
            if parent.kind is NodeKind.FILE:
                raise FsContradiction(
                    f"{self.path_of(current)} is a file but is used as a directory",
                    self.path_of(current),
                )
            self._set(
                replace(
                    parent,
                    existence=Existence.EXISTS,
                    kind=NodeKind.DIR if parent.kind is NodeKind.UNKNOWN else parent.kind,
                )
            )
            current = parent.parent

    def assume_absent(self, node_id: int) -> None:
        record = self._get(node_id)
        if self.existence(node_id) is Existence.EXISTS:
            raise FsContradiction(
                f"path {self.path_of(node_id)} is known to exist",
                self.path_of(node_id),
            )
        self._set(replace(record, existence=Existence.ABSENT))
        self.log.record(FsOp.STAT, self.path_of(node_id), node_id, "absent")

    # -- mutations ----------------------------------------------------------------

    def create(
        self, node_id: int, kind: NodeKind, ensure_parents: bool = False
    ) -> None:
        """Create (or truncate) a node; parents must exist unless
        ``ensure_parents`` (mkdir -p semantics)."""
        record = self._get(node_id)
        parent = record.parent
        if parent is not None:
            if self.existence(parent) is Existence.ABSENT:
                if not ensure_parents:
                    raise FsContradiction(
                        f"cannot create {self.path_of(node_id)}: parent "
                        f"{self.path_of(parent)} does not exist",
                        self.path_of(node_id),
                    )
                self.create(parent, NodeKind.DIR, ensure_parents=True)
            elif ensure_parents and self._get(parent).existence is not Existence.EXISTS:
                self.create(parent, NodeKind.DIR, ensure_parents=True)
        already = record.existence is Existence.EXISTS
        self._set(replace(record, existence=Existence.EXISTS, kind=kind))
        if not already:
            self.log.record(
                FsOp.CREATE, self.path_of(node_id), node_id, kind.name.lower()
            )

    def delete(self, node_id: int, recursive: bool = False) -> None:
        """Mark a node (and, recursively, its subtree) absent."""
        record = self._get(node_id)
        if recursive:
            for _, child_id in record.children:
                self.delete(child_id, recursive=True)
        self._set(replace(record, existence=Existence.ABSENT))
        self.log.record(FsOp.DELETE, self.path_of(node_id), node_id)

    def write_file(self, node_id: int) -> None:
        record = self._get(node_id)
        if record.kind is NodeKind.DIR:
            raise FsContradiction(
                f"{self.path_of(node_id)} is a directory; cannot write it",
                self.path_of(node_id),
            )
        self.create(node_id, NodeKind.FILE)
        self.log.record(FsOp.WRITE, self.path_of(node_id), node_id)

    def read_file(self, node_id: int) -> None:
        """Record a read; the file must exist (or be assumable)."""
        self.assume_exists(node_id, NodeKind.FILE)
        self.log.record(FsOp.READ, self.path_of(node_id), node_id)

    # -- queries -----------------------------------------------------------------

    def children_of(self, node_id: int) -> Dict[Component, int]:
        return self._get(node_id).child_map()

    def snapshot(self) -> Dict[str, Tuple[Existence, NodeKind]]:
        """Concrete-path view of all known facts (testing/probing aid)."""
        result = {}
        for node_id, record in self.nodes.items():
            result[self.path_of(node_id)] = (self.existence(node_id), record.kind)
        return result
