"""Symbolic file-system model with node identity (paper §4)."""

from .events import EventLog, FsEvent, FsOp, Origin
from .model import (
    Existence,
    FileSystem,
    FsContradiction,
    NodeKind,
    NodeRecord,
)
from .path import SymPath, SymSegment, normalise_concrete, parse_sympath

__all__ = [
    "FileSystem",
    "FsContradiction",
    "Existence",
    "NodeKind",
    "NodeRecord",
    "EventLog",
    "FsEvent",
    "FsOp",
    "Origin",
    "SymPath",
    "SymSegment",
    "parse_sympath",
    "normalise_concrete",
]
