"""User-facing :class:`Regex`: a regular language with cached automata.

This is the workhorse value used throughout the analysis: variable
content constraints (paper §3 "reasoning about state"), stream line types
(§3 "regular types"), and checker queries are all :class:`Regex` values.

Operators::

    r1 & r2    intersection          r1 | r2   union
    r1 - r2    difference            ~r1       complement
    r1 <= r2   containment           r1 == r2  language equivalence
    r1 + r2    concatenation
"""

from __future__ import annotations

from typing import List, Optional

from ..obs import get_recorder
from . import ops
from .dfa import DFA, determinise, minimise
from .nfa import build_nfa
from .syntax import Node, literal, parse


class Regex:
    """An immutable regular language over Unicode strings."""

    __slots__ = ("_dfa", "pattern", "_min")

    def __init__(self, dfa: DFA, pattern: Optional[str] = None):
        self._dfa = dfa
        self.pattern = pattern
        self._min: Optional[DFA] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def compile(cls, pattern: str) -> "Regex":
        """Compile a regex pattern (whole-string semantics)."""
        return cls(determinise(build_nfa(parse(pattern))), pattern)

    @classmethod
    def from_ast(cls, node: Node, pattern: Optional[str] = None) -> "Regex":
        return cls(determinise(build_nfa(node)), pattern)

    @classmethod
    def literal(cls, text: str) -> "Regex":
        """Language containing exactly ``text``."""
        return cls.from_ast(literal(text), pattern=_escape(text))

    @classmethod
    def any_string(cls) -> "Regex":
        return cls.compile("(.|\\n)*")

    @classmethod
    def nothing(cls) -> "Regex":
        return cls.compile("[^\\x00-\\x10]") & cls.compile("[\\x00-\\x10]")

    # -- core automaton access ---------------------------------------------

    @property
    def dfa(self) -> DFA:
        return self._dfa

    @property
    def min_dfa(self) -> DFA:
        recorder = get_recorder()
        if self._min is None:
            if recorder.enabled:
                recorder.count("rlang.min_cache_misses")
            self._min = minimise(self._dfa)
        elif recorder.enabled:
            recorder.count("rlang.min_cache_hits")
        return self._min

    # -- queries -----------------------------------------------------------

    def matches(self, text: str) -> bool:
        return self._dfa.accepts(text)

    def is_empty(self) -> bool:
        return self._dfa.is_empty()

    def is_finite(self) -> bool:
        return self._dfa.is_finite()

    def example(self) -> Optional[str]:
        """A shortest member string, or None if the language is empty."""
        return self._dfa.shortest_accepted()

    def examples(self, limit: int = 8, max_len: int = 32) -> List[str]:
        return self._dfa.enumerate(limit=limit, max_len=max_len)

    def matches_empty(self) -> bool:
        return self.matches("")

    # -- algebra -----------------------------------------------------------

    def __and__(self, other: "Regex") -> "Regex":
        return Regex(
            ops.intersection(self._dfa, other._dfa),
            _combine(self.pattern, "&", other.pattern),
        )

    def __or__(self, other: "Regex") -> "Regex":
        return Regex(
            ops.union(self._dfa, other._dfa),
            _combine(self.pattern, "|", other.pattern),
        )

    def __sub__(self, other: "Regex") -> "Regex":
        return Regex(
            ops.difference(self._dfa, other._dfa),
            _combine(self.pattern, "-", other.pattern),
        )

    def __invert__(self) -> "Regex":
        pat = f"~({self.pattern})" if self.pattern else None
        return Regex(ops.complement(self._dfa), pat)

    def __add__(self, other: "Regex") -> "Regex":
        pat = None
        if self.pattern is not None and other.pattern is not None:
            pat = f"({self.pattern})({other.pattern})"
        return Regex(ops.concat_dfa(self._dfa, other._dfa), pat)

    def __le__(self, other: "Regex") -> bool:
        """Containment: every string of self is a string of other."""
        return ops.is_subset(self._dfa, other._dfa)

    def __ge__(self, other: "Regex") -> bool:
        return ops.is_subset(other._dfa, self._dfa)

    def __lt__(self, other: "Regex") -> bool:
        return self <= other and not other <= self

    def disjoint(self, other: "Regex") -> bool:
        return ops.is_disjoint(self._dfa, other._dfa)

    def map_chars(self, translate) -> "Regex":
        """Homomorphic image under a per-character map (see ops.map_chars)."""
        return Regex(ops.map_chars(self._dfa, translate))

    def star(self) -> "Regex":
        """Kleene star of this language."""
        pat = f"({self.pattern})*" if self.pattern else None
        return Regex(ops.star(self._dfa), pat)

    def strip_suffix(self, suffix: "Regex") -> "Regex":
        """Right quotient: possible values after removing a suffix in
        ``suffix`` (the symbolic reading of ``${var%pattern}``)."""
        return Regex(ops.right_quotient(self._dfa, suffix._dfa))

    def strip_prefix(self, prefix: "Regex") -> "Regex":
        """Left quotient: possible values after removing a prefix in
        ``prefix`` (the symbolic reading of ``${var#pattern}``)."""
        return Regex(ops.left_quotient(prefix._dfa, self._dfa))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Regex):
            return NotImplemented
        return ops.equivalent(self._dfa, other._dfa)

    def __hash__(self) -> int:
        # Equivalence-respecting hashes would require canonicalisation; we
        # hash on the minimal DFA's coarse shape.
        mdfa = self.min_dfa
        return hash((mdfa.n_states, len(mdfa.accepting)))

    def __repr__(self) -> str:
        if self.pattern is not None:
            return f"Regex({self.pattern!r})"
        return f"Regex(<{self._dfa.n_states} states>)"


def _combine(a: Optional[str], op: str, b: Optional[str]) -> Optional[str]:
    if a is None or b is None:
        return None
    return f"({a}){op}({b})"


def _escape(text: str) -> str:
    special = set("\\^$.[]|()*+?{}")
    return "".join("\\" + c if c in special else c for c in text)
