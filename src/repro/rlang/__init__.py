"""Regular-language engine.

The formalism the paper picks for string-content constraints (§3):
regular expressions "found pervasively in the Unix environment", backed
here by a full automaton stack — parsing, Thompson NFAs, subset-construction
DFAs with alphabet compression, Hopcroft minimisation, and the boolean
algebra (intersection, union, complement, containment, emptiness) that
the stream-type reasoning relies on.
"""

from .builder import Regex
from .charclass import CharSet, partition
from .dfa import DFA, determinise, minimise
from .nfa import NFA, build_nfa
from .syntax import RegexSyntaxError, parse

__all__ = [
    "Regex",
    "CharSet",
    "partition",
    "DFA",
    "determinise",
    "minimise",
    "NFA",
    "build_nfa",
    "RegexSyntaxError",
    "parse",
]
