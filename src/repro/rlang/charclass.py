"""Character classes as interval sets over Unicode codepoints.

The regular-language engine labels automaton transitions with *character
sets* rather than single characters, so that classes like ``[^/]`` or ``.``
do not explode the alphabet.  A :class:`CharSet` is a normalised, immutable
sorted list of inclusive ``(lo, hi)`` codepoint intervals.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

#: Highest codepoint in the universe.  We restrict the universe to a
#: printable-friendly range plus common control characters; shell streams
#: are byte/character oriented and nothing in the analysis needs astral
#: planes.  Using a compact universe keeps complements small.
MAX_CODEPOINT = 0x10FFFF

Interval = Tuple[int, int]


def _normalise(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort, clamp, and merge overlapping/adjacent intervals."""
    items: List[Interval] = []
    for lo, hi in intervals:
        lo = max(0, lo)
        hi = min(MAX_CODEPOINT, hi)
        if lo > hi:
            continue
        items.append((lo, hi))
    items.sort()
    merged: List[Interval] = []
    for lo, hi in items:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


class CharSet:
    """An immutable set of Unicode codepoints stored as intervals."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        object.__setattr__(self, "intervals", _normalise(intervals))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CharSet is immutable")

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, chars: str) -> "CharSet":
        """Set containing exactly the characters of ``chars``."""
        return cls((ord(c), ord(c)) for c in chars)

    @classmethod
    def range(cls, lo: str, hi: str) -> "CharSet":
        """Inclusive character range, e.g. ``CharSet.range('a', 'z')``."""
        return cls([(ord(lo), ord(hi))])

    @classmethod
    def universe(cls) -> "CharSet":
        return cls([(0, MAX_CODEPOINT)])

    @classmethod
    def empty(cls) -> "CharSet":
        return cls()

    # -- queries -----------------------------------------------------------

    def __contains__(self, char: str) -> bool:
        code = ord(char)
        lo_idx, hi_idx = 0, len(self.intervals)
        while lo_idx < hi_idx:
            mid = (lo_idx + hi_idx) // 2
            lo, hi = self.intervals[mid]
            if code < lo:
                hi_idx = mid
            elif code > hi:
                lo_idx = mid + 1
            else:
                return True
        return False

    def is_empty(self) -> bool:
        return not self.intervals

    def is_universe(self) -> bool:
        return self.intervals == ((0, MAX_CODEPOINT),)

    def __len__(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.intervals)

    def sample(self) -> str:
        """An arbitrary member character (prefers printable ASCII)."""
        if self.is_empty():
            raise ValueError("empty CharSet has no sample")
        for lo, hi in self.intervals:
            start = max(lo, 0x20)
            if start <= hi and start <= 0x7E:
                return chr(start)
        return chr(self.intervals[0][0])

    def chars(self, limit: int = 64) -> Iterator[str]:
        """Iterate member characters (up to ``limit``)."""
        count = 0
        for lo, hi in self.intervals:
            for code in range(lo, hi + 1):
                if count >= limit:
                    return
                yield chr(code)
                count += 1

    # -- algebra -----------------------------------------------------------

    def union(self, other: "CharSet") -> "CharSet":
        return CharSet(self.intervals + other.intervals)

    def intersect(self, other: "CharSet") -> "CharSet":
        result: List[Interval] = []
        i = j = 0
        a, b = self.intervals, other.intervals
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                result.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return CharSet(result)

    def complement(self) -> "CharSet":
        result: List[Interval] = []
        prev = 0
        for lo, hi in self.intervals:
            if prev < lo:
                result.append((prev, lo - 1))
            prev = hi + 1
        if prev <= MAX_CODEPOINT:
            result.append((prev, MAX_CODEPOINT))
        return CharSet(result)

    def difference(self, other: "CharSet") -> "CharSet":
        return self.intersect(other.complement())

    def overlaps(self, other: "CharSet") -> bool:
        return not self.intersect(other).is_empty()

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharSet) and self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __repr__(self) -> str:
        if self.is_empty():
            return "CharSet()"
        if self.is_universe():
            return "CharSet(.)"
        parts = []
        for lo, hi in self.intervals[:8]:
            if lo == hi:
                parts.append(_show(lo))
            else:
                parts.append(f"{_show(lo)}-{_show(hi)}")
        if len(self.intervals) > 8:
            parts.append("...")
        return "CharSet([" + "".join(parts) + "])"


def _show(code: int) -> str:
    char = chr(code)
    if char.isprintable() and char not in "[]-^\\":
        return char
    return f"\\u{code:04x}"


def partition(sets: Sequence[CharSet]) -> List[CharSet]:
    """Partition the union of ``sets`` into disjoint atoms.

    Every input set is expressible as a union of returned atoms.  This is
    the alphabet-compression step used by subset construction: transitions
    out of a DFA state only need to be considered per atom.
    """
    boundaries = set()
    for cs in sets:
        for lo, hi in cs.intervals:
            boundaries.add(lo)
            boundaries.add(hi + 1)
    marks = sorted(boundaries)
    atoms: List[CharSet] = []
    for idx in range(len(marks) - 1):
        lo, hi = marks[idx], marks[idx + 1] - 1
        atom = CharSet([(lo, hi)])
        if any(atom.overlaps(cs) for cs in sets):
            atoms.append(atom)
    return atoms
