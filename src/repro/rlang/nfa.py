"""Thompson construction: regex AST -> NFA with CharSet-labelled edges."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .charclass import CharSet
from .syntax import Alt, Concat, Empty, Epsilon, Lit, Node, Repeat, Star


@dataclass
class NFA:
    """Nondeterministic finite automaton.

    States are dense integers.  ``transitions[s]`` is a list of
    ``(charset, target)`` pairs; ``epsilons[s]`` is a set of targets.
    """

    start: int = 0
    accept: int = 1
    transitions: Dict[int, List[Tuple[CharSet, int]]] = field(default_factory=dict)
    epsilons: Dict[int, Set[int]] = field(default_factory=dict)
    n_states: int = 2

    def add_state(self) -> int:
        state = self.n_states
        self.n_states += 1
        return state

    def add_edge(self, src: int, charset: CharSet, dst: int) -> None:
        if charset.is_empty():
            return
        self.transitions.setdefault(src, []).append((charset, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilons.setdefault(src, set()).add(dst)

    def epsilon_closure(self, states: FrozenSet[int]) -> FrozenSet[int]:
        seen = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for target in self.epsilons.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)


def build_nfa(node: Node) -> NFA:
    """Compile a regex AST into an NFA accepting the same language."""
    nfa = NFA()
    _build(nfa, node, nfa.start, nfa.accept)
    return nfa


def _build(nfa: NFA, node: Node, entry: int, exit_: int) -> None:
    if isinstance(node, Empty):
        return  # no path from entry to exit
    if isinstance(node, Epsilon):
        nfa.add_epsilon(entry, exit_)
        return
    if isinstance(node, Lit):
        nfa.add_edge(entry, node.charset, exit_)
        return
    if isinstance(node, Concat):
        mid = nfa.add_state()
        _build(nfa, node.left, entry, mid)
        _build(nfa, node.right, mid, exit_)
        return
    if isinstance(node, Alt):
        _build(nfa, node.left, entry, exit_)
        _build(nfa, node.right, entry, exit_)
        return
    if isinstance(node, Star):
        hub = nfa.add_state()
        nfa.add_epsilon(entry, hub)
        nfa.add_epsilon(hub, exit_)
        _build(nfa, node.inner, hub, hub)
        return
    if isinstance(node, Repeat):
        _build_repeat(nfa, node, entry, exit_)
        return
    raise TypeError(f"unknown regex node {node!r}")


def _build_repeat(nfa: NFA, node: Repeat, entry: int, exit_: int) -> None:
    current = entry
    for _ in range(node.lo):
        nxt = nfa.add_state()
        _build(nfa, node.inner, current, nxt)
        current = nxt
    if node.hi is None:
        _build(nfa, Star(node.inner), current, exit_)
        return
    nfa.add_epsilon(current, exit_)
    for _ in range(node.hi - node.lo):
        nxt = nfa.add_state()
        _build(nfa, node.inner, current, nxt)
        nfa.add_epsilon(nxt, exit_)
        current = nxt
