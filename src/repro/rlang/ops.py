"""Boolean operations on DFAs via product construction.

Two DFAs generally carve the codepoint universe into different atoms; the
product is built over the common refinement of both partitions, so every
product transition is well defined on both sides.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..obs import get_recorder
from .charclass import CharSet, partition
from .dfa import DFA


def _common_atoms(a: DFA, b: DFA) -> List[CharSet]:
    return partition(list(a.atoms) + list(b.atoms))


def _atom_map(dfa: DFA, atoms: List[CharSet]) -> List[int]:
    """For each common atom, the index of the original atom containing it
    (or the "other" index).  Common atoms refine originals, so a sample
    character suffices to locate the original atom."""
    mapping = []
    for atom in atoms:
        mapping.append(dfa.atom_index(atom.sample()))
    return mapping


#: Unconditional ceiling on product-construction size: pathological
#: regex intersections cannot allocate unboundedly even outside a
#: budgeted analysis.  Kept in lock-step with the recorded
#: ``rlang.product_states`` histogram — any legitimate construction in
#: this codebase is orders of magnitude smaller.
PRODUCT_STATE_CAP = 100_000

#: How often (in explored states) the growth checks sample the cap and
#: the active :class:`~repro.analysis.resilience.ResourceBudget`.
_CAP_STRIDE = 64


def product(a: DFA, b: DFA, accept: Callable[[bool, bool], bool]) -> DFA:
    """Product DFA whose acceptance combines the operands' with ``accept``.

    Growth is bounded: the construction checks :data:`PRODUCT_STATE_CAP`
    and the active analysis budget as it explores, raising
    :class:`~repro.analysis.resilience.AnalysisBudgetExceeded` instead
    of allocating without bound.
    """
    from ..analysis.resilience import enforce_dfa_cap

    atoms = _common_atoms(a, b)
    map_a = _atom_map(a, atoms) + [len(a.atoms)]
    map_b = _atom_map(b, atoms) + [len(b.atoms)]
    n_cols = len(atoms) + 1

    index: Dict[Tuple[int, int], int] = {(a.start, b.start): 0}
    order: List[Tuple[int, int]] = [(a.start, b.start)]
    delta: List[List[int]] = []
    accepting: Set[int] = set()

    pos = 0
    while pos < len(order):
        if pos % _CAP_STRIDE == 0 or len(order) > PRODUCT_STATE_CAP:
            enforce_dfa_cap(len(order), "rlang.product")
        sa, sb = order[pos]
        if accept(sa in a.accepting, sb in b.accepting):
            accepting.add(pos)
        row = []
        for col in range(n_cols):
            ta = a.delta[sa][map_a[col]]
            tb = b.delta[sb][map_b[col]]
            key = (ta, tb)
            if key not in index:
                index[key] = len(order)
                order.append(key)
            row.append(index[key])
        delta.append(row)
        pos += 1

    # final check: a product that finished over-cap still trips, so a
    # small per-analysis budget bounds every construction deterministically
    enforce_dfa_cap(len(delta), "rlang.product")
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("rlang.product_calls")
        recorder.observe("rlang.product_states", len(delta))
    return DFA(atoms=atoms, delta=delta, accepting=accepting)


def intersection(a: DFA, b: DFA) -> DFA:
    return product(a, b, lambda x, y: x and y)


def union(a: DFA, b: DFA) -> DFA:
    return product(a, b, lambda x, y: x or y)


def difference(a: DFA, b: DFA) -> DFA:
    return product(a, b, lambda x, y: x and not y)


def complement(a: DFA) -> DFA:
    return DFA(
        atoms=list(a.atoms),
        delta=[list(row) for row in a.delta],
        accepting=set(range(a.n_states)) - a.accepting,
        start=a.start,
    )


def is_subset(a: DFA, b: DFA) -> bool:
    """Language containment: L(a) ⊆ L(b) iff L(a) \\ L(b) = ∅."""
    return difference(a, b).is_empty()


def is_disjoint(a: DFA, b: DFA) -> bool:
    return intersection(a, b).is_empty()


def equivalent(a: DFA, b: DFA) -> bool:
    return is_subset(a, b) and is_subset(b, a)


def concat_dfa(a: DFA, b: DFA) -> "DFA":
    """Concatenation via NFA glue (used by the Regex wrapper)."""
    from .nfa import NFA
    from .dfa import determinise

    nfa = NFA()
    # embed a
    offset_a = nfa.n_states
    for _ in range(a.n_states):
        nfa.add_state()
    offset_b = nfa.n_states
    for _ in range(b.n_states):
        nfa.add_state()

    def embed(dfa: DFA, offset: int) -> None:
        covered = CharSet.empty()
        for atom in dfa.atoms:
            covered = covered.union(atom)
        other = covered.complement()
        for src, row in enumerate(dfa.delta):
            for atom_idx, dst in enumerate(row):
                charset = dfa.atoms[atom_idx] if atom_idx < len(dfa.atoms) else other
                nfa.add_edge(offset + src, charset, offset + dst)

    embed(a, offset_a)
    embed(b, offset_b)
    nfa.add_epsilon(nfa.start, offset_a + a.start)
    for acc in a.accepting:
        nfa.add_epsilon(offset_a + acc, offset_b + b.start)
    for acc in b.accepting:
        nfa.add_epsilon(offset_b + acc, nfa.accept)
    return determinise(nfa)


def star(a: DFA) -> DFA:
    """Kleene star via NFA gluing."""
    from .nfa import NFA
    from .dfa import determinise

    covered = CharSet.empty()
    for atom in a.atoms:
        covered = covered.union(atom)
    other = covered.complement()
    nfa = NFA()
    offset = nfa.n_states
    for _ in range(a.n_states):
        nfa.add_state()
    for src, row in enumerate(a.delta):
        for atom_idx, dst in enumerate(row):
            charset = a.atoms[atom_idx] if atom_idx < len(a.atoms) else other
            nfa.add_edge(offset + src, charset, offset + dst)
    nfa.add_epsilon(nfa.start, nfa.accept)
    nfa.add_epsilon(nfa.start, offset + a.start)
    for acc in a.accepting:
        nfa.add_epsilon(offset + acc, nfa.accept)
        nfa.add_epsilon(offset + acc, offset + a.start)
    return determinise(nfa)


def right_quotient(a: DFA, b: DFA) -> DFA:
    """``L(a) / L(b)`` = { u : ∃v ∈ L(b), uv ∈ L(a) }.

    Same transition structure as ``a``; a state accepts iff some string of
    L(b) leads from it to an accepting state of ``a``.  Used to model the
    shell's ``${var%pattern}`` suffix-strip expansion symbolically.
    """
    atoms = _common_atoms(a, b)
    map_a = _atom_map(a, atoms) + [len(a.atoms)]
    map_b = _atom_map(b, atoms) + [len(b.atoms)]
    n_cols = len(atoms) + 1

    # Forward-explore pairs (qa, qb) from every (qa, b.start); mark qa
    # accepting in the quotient when a pair with qa-path reaches accept×accept.
    # Equivalently: compute, for each qa, reachability in the product from
    # (qa, b.start) to accepting pairs.  We do one backward pass instead:
    # build the full product over all pairs and find pairs that can reach
    # accept×accept, then test (qa, b.start).
    n_a, n_b = a.n_states, b.n_states
    can_reach = [[False] * n_b for _ in range(n_a)]
    # reverse edges of the product
    reverse: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for qa in range(n_a):
        for qb in range(n_b):
            for col in range(n_cols):
                ta = a.delta[qa][map_a[col]]
                tb = b.delta[qb][map_b[col]]
                reverse.setdefault((ta, tb), []).append((qa, qb))
    stack = [
        (qa, qb)
        for qa in a.accepting
        for qb in b.accepting
    ]
    for qa, qb in stack:
        can_reach[qa][qb] = True
    while stack:
        pair = stack.pop()
        for qa, qb in reverse.get(pair, ()):
            if not can_reach[qa][qb]:
                can_reach[qa][qb] = True
                stack.append((qa, qb))
    accepting = {qa for qa in range(n_a) if can_reach[qa][b.start]}
    return DFA(
        atoms=list(a.atoms),
        delta=[list(row) for row in a.delta],
        accepting=accepting,
        start=a.start,
    )


def left_quotient(b: DFA, a: DFA) -> DFA:
    """``L(b) \\ L(a)`` = { v : ∃u ∈ L(b), uv ∈ L(a) }.

    Models ``${var#pattern}`` prefix stripping: the possible remainders of
    strings in ``a`` after removing a prefix belonging to ``b``.
    """
    atoms = _common_atoms(a, b)
    map_a = _atom_map(a, atoms) + [len(a.atoms)]
    map_b = _atom_map(b, atoms) + [len(b.atoms)]
    n_cols = len(atoms) + 1

    # Forward product exploration from (a.start, b.start); the set of
    # a-states reachable while b accepts becomes the start set of an NFA
    # over a's transitions.
    start_states: set = set()
    seen = {(a.start, b.start)}
    stack = [(a.start, b.start)]
    while stack:
        qa, qb = stack.pop()
        if qb in b.accepting:
            start_states.add(qa)
        for col in range(n_cols):
            pair = (a.delta[qa][map_a[col]], b.delta[qb][map_b[col]])
            if pair not in seen:
                seen.add(pair)
                stack.append(pair)

    from .nfa import NFA
    from .dfa import determinise

    covered = CharSet.empty()
    for atom in a.atoms:
        covered = covered.union(atom)
    other = covered.complement()
    nfa = NFA()
    offset = nfa.n_states
    for _ in range(a.n_states):
        nfa.add_state()
    for src, row in enumerate(a.delta):
        for atom_idx, dst in enumerate(row):
            charset = a.atoms[atom_idx] if atom_idx < len(a.atoms) else other
            nfa.add_edge(offset + src, charset, offset + dst)
    for qa in start_states:
        nfa.add_epsilon(nfa.start, offset + qa)
    for acc in a.accepting:
        nfa.add_epsilon(offset + acc, nfa.accept)
    return determinise(nfa)


def map_chars(a: DFA, translate) -> DFA:
    """Homomorphic image: the language { h(s) : s ∈ L(a) } where ``h``
    maps each character independently.  ``translate(charset) -> charset``
    must return the image of a character set under h.  Regular languages
    are closed under such per-character substitution; the construction
    relabels every transition with its image set (via an NFA, since
    non-injective maps break determinism).

    Models length-preserving stream transformers like ``tr a-z A-Z``.
    """
    from .nfa import NFA
    from .dfa import determinise

    covered = CharSet.empty()
    for atom in a.atoms:
        covered = covered.union(atom)
    other = covered.complement()
    nfa = NFA()
    offset = nfa.n_states
    for _ in range(a.n_states):
        nfa.add_state()
    for src, row in enumerate(a.delta):
        for atom_idx, dst in enumerate(row):
            charset = a.atoms[atom_idx] if atom_idx < len(a.atoms) else other
            image = translate(charset)
            nfa.add_edge(offset + src, image, offset + dst)
    nfa.add_epsilon(nfa.start, offset + a.start)
    for acc in a.accepting:
        nfa.add_epsilon(offset + acc, nfa.accept)
    return determinise(nfa)
