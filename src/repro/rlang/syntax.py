"""Regex abstract syntax and a parser for the POSIX-flavoured subset.

Regular types (paper §3) are written in the concrete syntax developers
already know from ``grep``/``sed``: literals, ``.``, classes ``[a-z]`` and
``[^/]``, escapes, ``*``/``+``/``?``/``{m,n}`` repetition, alternation
``|``, and grouping ``(...)``.  Types denote *whole-string* languages, so
anchors ``^``/``$`` at the edges are accepted and ignored; an unanchored
pattern ``p`` used as a *matcher* corresponds to ``.*p.*`` — the
higher-level type layer decides which reading it wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .charclass import CharSet


class RegexSyntaxError(ValueError):
    """Raised for malformed regular expressions."""

    def __init__(self, message: str, pattern: str, pos: int):
        super().__init__(f"{message} (at position {pos} in {pattern!r})")
        self.pattern = pattern
        self.pos = pos


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Node:
    """Base class for regex AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Empty(Node):
    """The empty language (matches nothing)."""

    __slots__ = ()


@dataclass(frozen=True)
class Epsilon(Node):
    """The language containing only the empty string."""

    __slots__ = ()


@dataclass(frozen=True)
class Lit(Node):
    """A single character drawn from a character set."""

    charset: CharSet


@dataclass(frozen=True)
class Concat(Node):
    left: Node
    right: Node


@dataclass(frozen=True)
class Alt(Node):
    left: Node
    right: Node


@dataclass(frozen=True)
class Star(Node):
    inner: Node


@dataclass(frozen=True)
class Repeat(Node):
    """Bounded repetition ``inner{lo,hi}``; ``hi=None`` means unbounded."""

    inner: Node
    lo: int
    hi: Optional[int]


def concat_all(*nodes: Node) -> Node:
    result: Node = Epsilon()
    for node in nodes:
        if isinstance(node, Empty):
            return Empty()
        if isinstance(node, Epsilon):
            continue
        result = node if isinstance(result, Epsilon) else Concat(result, node)
    return result


def alt_all(*nodes: Node) -> Node:
    result: Node = Empty()
    for node in nodes:
        if isinstance(node, Empty):
            continue
        result = node if isinstance(result, Empty) else Alt(result, node)
    return result


def literal(text: str) -> Node:
    """AST matching exactly the string ``text``."""
    return concat_all(*(Lit(CharSet.of(c)) for c in text))


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_ESCAPE_CLASSES = {
    "d": CharSet.range("0", "9"),
    "D": CharSet.range("0", "9").complement(),
    "w": (
        CharSet.range("a", "z")
        .union(CharSet.range("A", "Z"))
        .union(CharSet.range("0", "9"))
        .union(CharSet.of("_"))
    ),
    "s": CharSet.of(" \t\n\r\f\v"),
}
_ESCAPE_CLASSES["W"] = _ESCAPE_CLASSES["w"].complement()
_ESCAPE_CLASSES["S"] = _ESCAPE_CLASSES["s"].complement()

_ESCAPE_CHARS = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "a": "\a",
}

_SPECIAL = set("\\^$.[]|()*+?{}")

#: ``.`` matches any character except newline, mirroring grep/sed line
#: semantics; regular types describe single lines.
DOT = CharSet.of("\n").complement()


class _Parser:
    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    # -- utilities ---------------------------------------------------------

    def error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos)

    def peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def take(self) -> str:
        char = self.peek()
        if char is None:
            raise self.error("unexpected end of pattern")
        self.pos += 1
        return char

    def eat(self, char: str) -> bool:
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Node:
        node = self.alternation()
        if self.pos != len(self.pattern):
            raise self.error(f"unexpected {self.pattern[self.pos]!r}")
        return node

    def alternation(self) -> Node:
        branches = [self.sequence()]
        while self.eat("|"):
            branches.append(self.sequence())
        result: Node = branches[0]
        for branch in branches[1:]:
            result = Alt(result, branch)
        return result

    def sequence(self) -> Node:
        parts = []
        while True:
            char = self.peek()
            if char is None or char in ")|":
                break
            parts.append(self.repeated())
        return concat_all(*parts) if parts else Epsilon()

    def repeated(self) -> Node:
        atom = self.atom()
        while True:
            char = self.peek()
            if char == "*":
                self.take()
                atom = Star(atom)
            elif char == "+":
                self.take()
                atom = Concat(atom, Star(atom))
            elif char == "?":
                self.take()
                atom = Alt(Epsilon(), atom)
            elif char == "{":
                bounds = self._try_bounds()
                if bounds is None:
                    break
                lo, hi = bounds
                atom = Repeat(atom, lo, hi)
            else:
                break
        return atom

    def _try_bounds(self) -> Optional[Tuple[int, Optional[int]]]:
        """Parse ``{m}``, ``{m,}``, ``{m,n}``; a bare ``{`` is a literal."""
        start = self.pos
        self.take()  # "{"
        digits = ""
        while self.peek() is not None and self.peek().isdigit():
            digits += self.take()
        if not digits:
            self.pos = start
            return None
        lo = int(digits)
        hi: Optional[int] = lo
        if self.eat(","):
            digits = ""
            while self.peek() is not None and self.peek().isdigit():
                digits += self.take()
            hi = int(digits) if digits else None
        if not self.eat("}"):
            self.pos = start
            return None
        if hi is not None and hi < lo:
            raise self.error(f"bad repetition bounds {{{lo},{hi}}}")
        return lo, hi

    def atom(self) -> Node:
        char = self.take()
        if char == "(":
            # Non-capturing group markers are accepted and ignored.
            if self.pattern.startswith("?:", self.pos):
                self.pos += 2
            node = self.alternation()
            if not self.eat(")"):
                raise self.error("unbalanced '('")
            return node
        if char == "[":
            return Lit(self.charclass())
        if char == ".":
            return Lit(DOT)
        if char == "\\":
            return self.escape()
        if char in "^$":
            # Whole-string semantics: edge anchors are no-ops.
            return Epsilon()
        if char in "*+?":
            raise self.error(f"nothing to repeat before {char!r}")
        if char == ")":
            raise self.error("unbalanced ')'")
        if char == "{":
            # A "{" not opening a valid bound is a literal brace.
            self.pos -= 1
            bounds = self._try_bounds()
            if bounds is not None:
                raise self.error("nothing to repeat before '{'")
            self.pos += 1
            return Lit(CharSet.of("{"))
        return Lit(CharSet.of(char))

    def escape(self) -> Node:
        char = self.take()
        if char in _ESCAPE_CLASSES:
            return Lit(_ESCAPE_CLASSES[char])
        if char in _ESCAPE_CHARS:
            return Lit(CharSet.of(_ESCAPE_CHARS[char]))
        if char == "x":
            hexits = self.pattern[self.pos : self.pos + 2]
            if len(hexits) == 2 and all(h in "0123456789abcdefABCDEF" for h in hexits):
                self.pos += 2
                return Lit(CharSet.of(chr(int(hexits, 16))))
            raise self.error("bad \\x escape")
        return Lit(CharSet.of(char))

    def charclass(self) -> CharSet:
        negate = self.eat("^")
        items: CharSet = CharSet.empty()
        first = True
        while True:
            char = self.peek()
            if char is None:
                raise self.error("unbalanced '['")
            if char == "]" and not first:
                self.take()
                break
            first = False
            items = items.union(self._class_range())
        return items.complement() if negate else items

    def _class_range(self) -> CharSet:
        lo = self._class_char()
        if isinstance(lo, CharSet):
            return lo
        if self.peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
            self.take()
            hi = self._class_char()
            if isinstance(hi, CharSet):
                raise self.error("bad character range endpoint")
            if ord(hi) < ord(lo):
                raise self.error(f"reversed range {lo}-{hi}")
            return CharSet.range(lo, hi)
        return CharSet.of(lo)

    def _class_char(self):
        char = self.take()
        if char != "\\":
            if char == "[" and self.peek() == ":":
                return self._posix_class()
            return char
        escaped = self.take()
        if escaped in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[escaped]
        if escaped in _ESCAPE_CHARS:
            return _ESCAPE_CHARS[escaped]
        return escaped

    _POSIX_CLASSES = {
        "alpha": CharSet.range("a", "z").union(CharSet.range("A", "Z")),
        "digit": CharSet.range("0", "9"),
        "alnum": CharSet.range("a", "z")
        .union(CharSet.range("A", "Z"))
        .union(CharSet.range("0", "9")),
        "upper": CharSet.range("A", "Z"),
        "lower": CharSet.range("a", "z"),
        "space": CharSet.of(" \t\n\r\f\v"),
        "xdigit": CharSet.range("0", "9")
        .union(CharSet.range("a", "f"))
        .union(CharSet.range("A", "F")),
        "punct": CharSet.of(r"""!"#$%&'()*+,-./:;<=>?@[\]^_`{|}~"""),
        "blank": CharSet.of(" \t"),
    }

    def _posix_class(self) -> CharSet:
        # Already consumed "[", peeked ":".
        end = self.pattern.find(":]", self.pos)
        if end == -1:
            raise self.error("unbalanced POSIX class")
        name = self.pattern[self.pos + 1 : end]
        self.pos = end + 2
        try:
            return self._POSIX_CLASSES[name]
        except KeyError:
            raise self.error(f"unknown POSIX class [:{name}:]") from None


def parse(pattern: str) -> Node:
    """Parse ``pattern`` into a regex AST (whole-string semantics)."""
    return _Parser(pattern).parse()
