"""Deterministic automata: subset construction and Hopcroft minimisation.

A :class:`DFA` here is *complete over atoms*: its alphabet is a partition
of the full codepoint universe into disjoint :class:`CharSet` atoms, plus
an implicit "everything else" atom.  State 0 is always the start state; a
dedicated sink state absorbs undefined transitions, making complement a
matter of flipping accepting states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..obs import get_recorder
from .charclass import CharSet, partition
from .nfa import NFA


@dataclass
class DFA:
    """Complete DFA over a partitioned alphabet.

    ``atoms`` are disjoint charsets covering every character that appears
    on any transition; characters outside all atoms behave like the
    "other" pseudo-atom (index ``len(atoms)``).  ``delta[state]`` maps an
    atom index (including the "other" index) to a target state.
    """

    atoms: List[CharSet]
    delta: List[List[int]]
    accepting: Set[int]
    start: int = 0

    @property
    def n_states(self) -> int:
        return len(self.delta)

    def atom_index(self, char: str) -> int:
        for idx, atom in enumerate(self.atoms):
            if char in atom:
                return idx
        return len(self.atoms)

    def step(self, state: int, char: str) -> int:
        return self.delta[state][self.atom_index(char)]

    def accepts(self, text: str) -> bool:
        state = self.start
        for char in text:
            state = self.delta[state][self.atom_index(char)]
        return state in self.accepting

    def live_states(self) -> Set[int]:
        """States on some path start -> ... -> accepting."""
        reachable = {self.start}
        stack = [self.start]
        while stack:
            state = stack.pop()
            for target in self.delta[state]:
                if target not in reachable:
                    reachable.add(target)
                    stack.append(target)
        # reverse reachability from accepting states
        reverse: Dict[int, Set[int]] = {}
        for src, row in enumerate(self.delta):
            for dst in row:
                reverse.setdefault(dst, set()).add(src)
        coreachable = set(self.accepting)
        stack = list(self.accepting)
        while stack:
            state = stack.pop()
            for src in reverse.get(state, ()):
                if src not in coreachable:
                    coreachable.add(src)
                    stack.append(src)
        return reachable & coreachable

    def is_empty(self) -> bool:
        return not self.live_states()

    def is_finite(self) -> bool:
        """True when the accepted language is finite (no live cycle)."""
        live = self.live_states()
        # DFS cycle detection restricted to live states
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {state: WHITE for state in live}
        for root in live:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            colour[root] = GREY
            while stack:
                state, edge_idx = stack[-1]
                row = self.delta[state]
                advanced = False
                for idx in range(edge_idx, len(row)):
                    target = row[idx]
                    if target not in live:
                        continue
                    stack[-1] = (state, idx + 1)
                    if colour[target] == GREY:
                        return False
                    if colour[target] == WHITE:
                        colour[target] = GREY
                        stack.append((target, 0))
                        advanced = True
                        break
                if not advanced:
                    colour[state] = BLACK
                    stack.pop()
        return True

    def shortest_accepted(self) -> Optional[str]:
        """A shortest string in the language, or None when empty."""
        if self.start in self.accepting:
            return ""
        parents: Dict[int, Tuple[int, int]] = {}
        queue = [self.start]
        seen = {self.start}
        while queue:
            nxt: List[int] = []
            for state in queue:
                for atom_idx, target in enumerate(self.delta[state]):
                    if target in seen:
                        continue
                    seen.add(target)
                    parents[target] = (state, atom_idx)
                    if target in self.accepting:
                        return self._trace(parents, target)
                    nxt.append(target)
            queue = nxt
        return None

    def _trace(self, parents: Dict[int, Tuple[int, int]], state: int) -> str:
        chars: List[str] = []
        while state in parents:
            state, atom_idx = parents[state]
            chars.append(self._atom_sample(atom_idx))
        return "".join(reversed(chars))

    def _atom_sample(self, atom_idx: int) -> str:
        if atom_idx < len(self.atoms):
            return self.atoms[atom_idx].sample()
        # "other" atom: any codepoint not in any atom
        covered = CharSet.empty()
        for atom in self.atoms:
            covered = covered.union(atom)
        return covered.complement().sample()

    def enumerate(self, limit: int = 16, max_len: int = 32) -> List[str]:
        """Up to ``limit`` accepted strings, in length order (BFS)."""
        results: List[str] = []
        frontier: List[Tuple[int, str]] = [(self.start, "")]
        live = self.live_states()
        depth = 0
        while frontier and len(results) < limit and depth <= max_len:
            nxt: List[Tuple[int, str]] = []
            for state, text in frontier:
                if state in self.accepting:
                    results.append(text)
                    if len(results) >= limit:
                        return results
            for state, text in frontier:
                for atom_idx, target in enumerate(self.delta[state]):
                    if target in live:
                        nxt.append((target, text + self._atom_sample(atom_idx)))
            frontier = nxt
            depth += 1
        return results


def determinise(nfa: NFA) -> DFA:
    """Subset construction with alphabet compression.

    Bounded like :func:`~repro.rlang.ops.product`: the subset frontier is
    checked against the hard DFA cap and the active analysis budget as
    it grows, so exponential blowups degrade instead of exhausting
    memory.
    """
    from ..analysis.resilience import enforce_dfa_cap

    all_sets = [cs for edges in nfa.transitions.values() for cs, _ in edges]
    atoms = partition(all_sets)
    other_idx = len(atoms)

    start = nfa.epsilon_closure(frozenset({nfa.start}))
    index: Dict[FrozenSet[int], int] = {start: 0}
    delta: List[List[int]] = []
    accepting: Set[int] = set()
    order: List[FrozenSet[int]] = [start]
    sink: Optional[int] = None

    def state_id(subset: FrozenSet[int]) -> int:
        if subset not in index:
            index[subset] = len(order)
            order.append(subset)
        return index[subset]

    pos = 0
    while pos < len(order):
        if pos % 64 == 0:
            enforce_dfa_cap(len(order), "rlang.determinise")
        subset = order[pos]
        if nfa.accept in subset:
            accepting.add(pos)
        row = [None] * (other_idx + 1)  # type: List[Optional[int]]
        for atom_idx, atom in enumerate(atoms):
            targets: Set[int] = set()
            for state in subset:
                for charset, dst in nfa.transitions.get(state, ()):
                    if atom.overlaps(charset):
                        targets.add(dst)
            row[atom_idx] = state_id(nfa.epsilon_closure(frozenset(targets)))
        row[other_idx] = state_id(frozenset())
        delta.append(row)  # type: ignore[arg-type]
        pos += 1

    enforce_dfa_cap(len(delta), "rlang.determinise")
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("rlang.determinise_calls")
        recorder.observe("rlang.dfa_states", len(delta))
        recorder.observe("rlang.dfa_atoms", len(atoms))
    return DFA(atoms=atoms, delta=[list(map(int, row)) for row in delta], accepting=accepting)


def minimise(dfa: DFA) -> DFA:
    """Hopcroft's partition-refinement minimisation."""
    n = dfa.n_states
    n_atoms = len(dfa.atoms) + 1
    accepting = frozenset(dfa.accepting)
    non_accepting = frozenset(range(n)) - accepting

    partitions: List[Set[int]] = [set(p) for p in (accepting, non_accepting) if p]
    worklist: List[int] = list(range(len(partitions)))

    # precompute inverse transitions per atom
    inverse: List[Dict[int, Set[int]]] = [dict() for _ in range(n_atoms)]
    for src in range(n):
        for atom_idx, dst in enumerate(dfa.delta[src]):
            inverse[atom_idx].setdefault(dst, set()).add(src)

    while worklist:
        splitter_idx = worklist.pop()
        splitter = set(partitions[splitter_idx])
        for atom_idx in range(n_atoms):
            sources: Set[int] = set()
            inv = inverse[atom_idx]
            for state in splitter:
                sources |= inv.get(state, set())
            if not sources:
                continue
            for part_idx in range(len(partitions)):
                part = partitions[part_idx]
                inside = part & sources
                if not inside or inside == part:
                    continue
                outside = part - inside
                partitions[part_idx] = inside
                partitions.append(outside)
                new_idx = len(partitions) - 1
                if part_idx in worklist:
                    worklist.append(new_idx)
                else:
                    worklist.append(
                        part_idx if len(inside) <= len(outside) else new_idx
                    )

    block_of = {}
    for block_idx, block in enumerate(partitions):
        for state in block:
            block_of[state] = block_idx

    # Rebuild with the start block renumbered to 0.
    renumber: Dict[int, int] = {}

    def new_id(block_idx: int) -> int:
        if block_idx not in renumber:
            renumber[block_idx] = len(renumber)
        return renumber[block_idx]

    start_block = block_of[dfa.start]
    new_id(start_block)
    new_delta: List[List[int]] = []
    order = [start_block]
    pos = 0
    while pos < len(order):
        current = order[pos]
        representative = next(iter(partitions[current]))
        row = []
        for atom_idx in range(n_atoms):
            target_block = block_of[dfa.delta[representative][atom_idx]]
            if target_block not in renumber:
                renumber[target_block] = len(renumber)
                order.append(target_block)
            row.append(renumber[target_block])
        new_delta.append(row)
        pos += 1

    new_accepting = {
        renumber[block_of[state]]
        for state in dfa.accepting
        if block_of[state] in renumber
    }
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("rlang.minimise_calls")
        recorder.observe("rlang.min_dfa_states", len(new_delta))
    return DFA(atoms=list(dfa.atoms), delta=new_delta, accepting=new_accepting)
