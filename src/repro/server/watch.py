"""Watch mode: mtime polling over script corpora.

No inotify dependency — a deliberate choice: the daemon must run in
restricted sandboxes and on every Unix, and a 1-second poll over a few
thousand ``stat`` calls is far below the cost of one analysis.  The
:class:`Watcher` is a pure incremental-scan object (no threads, no
clocks) so tests can drive it deterministically; the daemon wraps it in
a polling thread.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from ..analysis.batch import discover


class Watcher:
    """Tracks (size, mtime) signatures for every script reachable from
    ``inputs``; :meth:`scan` returns the paths that changed since the
    previous scan."""

    def __init__(self, inputs: Sequence[str]):
        self.inputs = list(inputs)
        self._signatures: Dict[str, tuple] = {}
        self._primed = False

    def scan(self) -> List[str]:
        """Paths that are new or modified since the last scan.

        The first scan primes the signature table and reports *every*
        file (the daemon uses that to pre-warm the cache); deleted files
        are dropped from tracking but never reported.
        """
        changed: List[str] = []
        seen = set()
        for path in discover(self.inputs):
            try:
                stat = os.stat(path)
            except OSError:
                continue
            seen.add(path)
            signature = (stat.st_size, stat.st_mtime_ns)
            if self._signatures.get(path) != signature:
                self._signatures[path] = signature
                changed.append(path)
        for path in list(self._signatures):
            if path not in seen:
                del self._signatures[path]
        self._primed = True
        return changed
