"""Watch mode: mtime polling over script corpora.

No inotify dependency — a deliberate choice: the daemon must run in
restricted sandboxes and on every Unix, and a 1-second poll over a few
thousand ``stat`` calls is far below the cost of one analysis.  The
:class:`Watcher` is a pure incremental-scan object (no threads, no
clocks) so tests can drive it deterministically; the daemon wraps it in
a polling thread.

A ``stat`` that fails mid-scan (permissions yanked, file deleted
between ``discover`` and ``stat``, NFS hiccup) is skipped — the scan
must survive it — but no longer *silently*: each failure bumps the
``watch.stat_errors`` counter on the active recorder and emits a
structured ``watch.stat_error`` log event, so a corpus the daemon can
no longer actually see shows up in the ops console instead of looking
like a quiet, perfectly-warm cache.
"""

from __future__ import annotations

import os
from typing import Dict, List, NamedTuple, Optional, Sequence

from ..analysis.batch import discover
from ..obs import get_recorder
from ..obs.log import NullOpsLogger, OpsLogger


class ScanResult(NamedTuple):
    """One scan's delta: paths that changed (new or modified) and paths
    that disappeared since the previous scan."""

    changed: List[str]
    deleted: List[str]


class Watcher:
    """Tracks (size, mtime) signatures for every script reachable from
    ``inputs``; :meth:`scan` returns the paths that changed — and the
    ones that vanished — since the previous scan."""

    def __init__(self, inputs: Sequence[str], log: Optional[OpsLogger] = None):
        self.inputs = list(inputs)
        self.log = log or NullOpsLogger()
        self.stat_errors = 0
        self.deletions = 0
        self._signatures: Dict[str, tuple] = {}
        self._primed = False

    def scan(self) -> ScanResult:
        """Paths new/modified — and paths deleted — since the last scan.

        The first scan primes the signature table and reports *every*
        file as changed (the daemon uses that to pre-warm the cache).
        A tracked path that stops appearing (deleted, or renamed — a
        rename is a deletion plus a new path) is reported in
        ``deleted`` exactly once and evicted from tracking, with a
        ``watch.deleted`` count and a structured log event; previously
        these lingered silently and the daemon kept serving results
        for files that no longer existed.
        """
        changed: List[str] = []
        seen = set()
        recorder = get_recorder()
        try:
            paths = discover(self.inputs)
        except OSError as exc:
            # a whole corpus root going away (unmounted, permissions
            # yanked) must not kill the watch thread
            self.stat_errors += 1
            recorder.count("watch.stat_errors")
            self.log.warning(
                "watch.stat_error",
                path=str(self.inputs),
                error=str(exc),
                errno=exc.errno,
            )
            return ScanResult([], [])
        for path in paths:
            try:
                stat = os.stat(path)
            except OSError as exc:
                self.stat_errors += 1
                recorder.count("watch.stat_errors")
                self.log.warning(
                    "watch.stat_error",
                    path=path,
                    error=str(exc),
                    errno=exc.errno,
                )
                continue
            seen.add(path)
            signature = (stat.st_size, stat.st_mtime_ns)
            if self._signatures.get(path) != signature:
                self._signatures[path] = signature
                changed.append(path)
        deleted: List[str] = []
        for path in list(self._signatures):
            if path not in seen:
                del self._signatures[path]
                deleted.append(path)
                self.deletions += 1
                recorder.count("watch.deleted")
                self.log.info("watch.deleted", path=path)
        self._primed = True
        return ScanResult(changed, deleted)
