"""Crash-only supervision for the resident analysis daemon.

Crash-only software (Candea & Fox) treats a crash as an unremarkable
way to stop: the only recovery path is the normal startup path, so
startup must cope with everything a crash leaves behind.  For this
daemon that means two things:

- **Stale-socket takeover.**  A daemon killed with ``kill -9`` leaves
  its Unix socket file behind, and a naive successor either refuses to
  bind or — worse — blindly unlinks a socket a *live* daemon is still
  serving.  :func:`ensure_socket_free` probes the socket with a short
  ping: a live daemon makes the bind fail loudly
  (:class:`SocketInUse`); a dead or wedged one is evicted with an
  ops-log event and a ``server.socket_takeovers`` count.
- **Restart, don't repair.**  :class:`Supervisor` runs the serving
  loop and, when it dies with an unexpected exception, builds a fresh
  server through the caller's factory and starts over (bounded
  restarts, linear backoff).  The factory is expected to reuse the
  warm state that survives a crash by construction — the on-disk
  :class:`~repro.analysis.cache.ResultCache` and the totals recorder —
  so a restarted daemon answers warm immediately.
"""

from __future__ import annotations

import errno
import os
import socket
import time
from typing import Callable, Optional

from ..obs import MetricsSnapshot, NullOpsLogger, OpsLogger
from . import protocol

#: how long the stale-socket liveness probe waits for a ping answer;
#: a daemon too wedged to answer a ping in this window is treated as
#: dead and evicted
DEFAULT_PROBE_TIMEOUT = 0.5


class SocketInUse(OSError):
    """A live daemon is already serving the socket."""

    def __init__(self, socket_path: str):
        super().__init__(
            errno.EADDRINUSE,
            f"a live analysis daemon is already serving {socket_path}",
        )
        self.socket_path = socket_path


def probe_socket(
    socket_path: str, timeout: float = DEFAULT_PROBE_TIMEOUT
) -> str:
    """Liveness of whatever owns ``socket_path``: ``"absent"`` (no
    file), ``"alive"`` (a daemon answered bytes to a ping), or
    ``"dead"`` (stale file: nobody listening, or a listener too wedged
    to produce a single response byte within ``timeout``)."""
    if not os.path.exists(socket_path):
        return "absent"
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(socket_path)
        sock.sendall(protocol.encode({"op": "ping", "telemetry": False}))
        return "alive" if sock.recv(1) else "dead"
    except OSError:
        return "dead"
    finally:
        sock.close()


def ensure_socket_free(
    socket_path: str,
    log: Optional[OpsLogger] = None,
    recorder=None,
    probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
) -> bool:
    """Make ``socket_path`` bindable: no-op when absent, raise
    :class:`SocketInUse` when a live daemon answers, evict the stale
    file otherwise.  Returns True when a takeover happened."""
    status = probe_socket(socket_path, timeout=probe_timeout)
    if status == "absent":
        return False
    if status == "alive":
        raise SocketInUse(socket_path)
    try:
        os.unlink(socket_path)
    except FileNotFoundError:
        pass
    if log is not None:
        log.warning("server.socket_takeover", socket=socket_path)
    if recorder is not None:
        recorder.absorb(
            MetricsSnapshot(counters={"server.socket_takeovers": 1})
        )
    return True


class Supervisor:
    """Restart the serving loop after a crash; clean exits stay exits.

    ``factory`` builds a ready-to-serve server object (anything with
    ``serve_forever``); it runs once per (re)start, so warm state the
    caller wants to survive restarts — the result cache, the totals
    recorder, the ops logger — must be closed over by the factory, not
    rebuilt inside it.
    """

    def __init__(
        self,
        factory: Callable[[], object],
        log: Optional[OpsLogger] = None,
        max_restarts: int = 5,
        restart_backoff: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.factory = factory
        self.log = log or NullOpsLogger()
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.sleep = sleep
        self.restarts = 0
        self.server: Optional[object] = None

    def run(self):
        """Serve until a clean shutdown; returns the final server.

        :class:`SocketInUse` propagates immediately (restarting cannot
        help), as does any crash past ``max_restarts`` — a daemon that
        cannot stay up is a daemon that must stop claiming the socket.
        """
        while True:
            server = self.server = self.factory()
            try:
                server.serve_forever()
                return server
            except SocketInUse:
                raise
            except Exception as exc:  # noqa: BLE001 — restart is the repair
                self.restarts += 1
                recorder = getattr(server, "recorder", None)
                if recorder is not None:
                    recorder.absorb(
                        MetricsSnapshot(counters={"server.restarts": 1})
                    )
                self.log.error(
                    "server.restart",
                    error=str(exc),
                    error_type=type(exc).__name__,
                    restarts=self.restarts,
                    max_restarts=self.max_restarts,
                )
                if self.restarts > self.max_restarts:
                    raise
                self.sleep(
                    min(self.restart_backoff * self.restarts, 5.0)
                )
