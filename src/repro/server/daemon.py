"""The resident analysis daemon (``repro-served``).

The paper's just-in-time deployment — analyzing a script at the moment
it is about to run — needs answers at interactive latency, and a
one-shot CLI cannot deliver that: every invocation pays interpreter
start-up, spec-corpus loading, and DFA-cache warm-up before the first
byte of analysis.  The daemon pays those costs once and keeps the three
warm stores resident:

- the spec registry (command models) and its compiled min-DFAs,
- the rlang pattern caches built up by prior analyses,
- the persistent :class:`~repro.analysis.cache.ResultCache`, so an
  unchanged file costs one hash + one read — zero symbolic execution.

Requests arrive over a Unix socket as line-delimited JSON (see
:mod:`.protocol`); each connection is served on its own thread, and
batch requests fan out across a *persistent* process pool that
survives between requests.  Every request runs under a clamped
:class:`~repro.analysis.resilience.ResourceBudget` — a client may ask
for less time than the server cap, never more — so one pathological
script cannot wedge the daemon for other clients.

Telemetry: ``server.requests`` / ``server.errors`` counters,
``server.<op>`` spans per request, and the ``stats`` op ships the
recorder's full metrics snapshot (including the ``batch.cache.*``
counters that make "the warm path did no symbolic execution"
observable).
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
from dataclasses import replace
from typing import List, Optional

from .. import __version__
from ..analysis.batch import BatchConfig, _make_pool, run_batch
from ..analysis.cache import ResultCache, cache_key
from ..analysis.resilience import clamped_budget
from ..obs import TraceRecorder, use_recorder
from . import protocol
from .watch import Watcher

#: server-side ceilings for per-request budgets
DEFAULT_CAP_DEADLINE = 30.0
DEFAULT_CAP_STATES = 2_000_000


class AnalysisServer:
    """The long-lived analysis service behind the socket.

    Owns the warm state (result cache, persistent process pool, the
    recorder) and implements every protocol op as a method; the socket
    layer (:class:`_SocketServer`) is a thin threaded shell around
    :meth:`handle_request`.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        cap_deadline: float = DEFAULT_CAP_DEADLINE,
        cap_states: int = DEFAULT_CAP_STATES,
        recorder: Optional[TraceRecorder] = None,
    ):
        self.socket_path = socket_path or protocol.default_socket_path()
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache = cache
        self.cap_deadline = cap_deadline
        self.cap_states = cap_states
        self.recorder = recorder or TraceRecorder()
        self.started_at = time.monotonic()
        self.requests_served = 0
        self._pool = None
        self._pool_lock = threading.Lock()
        self._server: Optional[_SocketServer] = None
        self._watcher_stop = threading.Event()

    # -- warm state ---------------------------------------------------------

    def warm(self) -> None:
        """Pay the cold-start costs up front: load the spec registry and
        run one trivial analysis so the shared DFA caches (spec patterns,
        common regexes) are built before the first request arrives."""
        from ..analysis import analyze
        from ..specs import default_registry

        with use_recorder(self.recorder):
            with self.recorder.span("server.warm"):
                default_registry()
                analyze("true\n")

    def _get_pool(self):
        """The persistent process pool, (re)created on demand.  A pool
        whose workers died is replaced rather than reused; ``jobs=1``
        means no pool (inline analysis), which also serves as the
        fallback in pool-less sandboxes."""
        if self.jobs <= 1:
            return None
        with self._pool_lock:
            pool = self._pool
            if pool is not None and getattr(pool, "_broken", False):
                pool.shutdown(wait=False)
                pool = self._pool = None
                self.recorder.count("server.pool_recreated")
            if pool is None:
                try:
                    pool = self._pool = _make_pool(self.jobs)
                except (OSError, ImportError, RuntimeError):
                    return None
            return pool

    def _clamped(self, config: BatchConfig) -> BatchConfig:
        """The request's config with its budget clamped to server caps."""
        budget = clamped_budget(
            config.timeout,
            config.max_states,
            cap_deadline=self.cap_deadline,
            cap_states=self.cap_states,
        )
        return replace(
            config, timeout=budget.deadline, max_states=budget.max_states
        )

    # -- ops ----------------------------------------------------------------

    def handle_request(self, message: dict) -> dict:
        """Dispatch one request; never raises (errors become responses)."""
        op = message.get("op")
        self.requests_served += 1
        with use_recorder(self.recorder):
            self.recorder.count("server.requests")
            try:
                if op == "ping":
                    return protocol.ok(self._op_ping())
                if op == "analyze":
                    with self.recorder.span("server.analyze"):
                        return protocol.ok(self._op_analyze(message))
                if op == "batch":
                    with self.recorder.span("server.batch"):
                        return protocol.ok(self._op_batch(message))
                if op == "stats":
                    return protocol.ok(self._op_stats())
                if op == "shutdown":
                    self._initiate_shutdown()
                    return protocol.ok({"stopping": True})
                self.recorder.count("server.errors")
                return protocol.error(f"unknown op: {op!r}")
            except Exception as exc:  # noqa: BLE001 — the daemon must survive
                self.recorder.count("server.errors")
                return protocol.error(f"{type(exc).__name__}: {exc}")

    def _op_ping(self) -> dict:
        return {
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
        }

    def _op_analyze(self, message: dict) -> dict:
        """One script, by inline ``source`` or by ``path``."""
        from ..analysis import analyze
        from ..analysis.report import Report

        source = message.get("source")
        if source is None:
            path = message.get("path")
            if not path:
                raise ValueError("analyze request needs 'source' or 'path'")
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        config = self._clamped(protocol.config_from_wire(message.get("config")))
        key = cache_key(source, config.fingerprint())
        if self.cache is not None:
            data = self.cache.get(key)
            if data is not None:
                self.recorder.count("batch.cache.hit")
                return {"report": data, "cached": True}
            self.recorder.count("batch.cache.miss")
        report = analyze(source, budget=config.budget(), **config.analyze_kwargs())
        data = report.to_dict()
        if self.cache is not None and not report.degraded:
            self.cache.put(key, data)
        # round-trip like the batch driver so server output is
        # byte-identical to the inline path
        return {"report": Report.from_dict(data).to_dict(), "cached": False}

    def _op_batch(self, message: dict) -> dict:
        inputs = message.get("inputs")
        if not isinstance(inputs, list) or not inputs:
            raise ValueError("batch request needs a non-empty 'inputs' list")
        config = self._clamped(protocol.config_from_wire(message.get("config")))
        batch = run_batch(
            inputs,
            config=config,
            jobs=self.jobs,
            cache=self.cache,
            pool=self._get_pool(),
        )
        return {
            "results": [
                {
                    "path": r.path,
                    "report": r.report.to_dict(),
                    "cached": r.cached,
                    "quarantined": r.quarantined,
                    "seconds": r.seconds,
                }
                for r in batch.results
            ],
            "hits": batch.hits,
            "misses": batch.misses,
        }

    def _op_stats(self) -> dict:
        return {
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self.started_at,
            "requests": self.requests_served,
            "jobs": self.jobs,
            "cache": self.cache is not None,
            "metrics": self.recorder.snapshot().to_dict(),
        }

    # -- lifecycle ----------------------------------------------------------

    def _initiate_shutdown(self) -> None:
        """Stop the socket loop from a handler thread (shutdown() blocks
        until serve_forever returns, so it must not run on the handler)."""
        server = self._server
        if server is not None:
            threading.Thread(target=server.shutdown, daemon=True).start()

    def start_watcher(self, inputs: List[str], interval: float = 1.0) -> threading.Thread:
        """Watch mode: poll ``inputs`` for new/modified scripts and
        re-analyze them as they change, keeping the result cache warm so
        the *next* client request over those files is all cache hits."""
        watcher = Watcher(inputs)

        def loop() -> None:
            while not self._watcher_stop.wait(interval):
                changed = watcher.scan()
                if not changed:
                    continue
                with use_recorder(self.recorder):
                    self.recorder.count("server.watch_rounds")
                    self.recorder.count("server.watch_files", len(changed))
                    with self.recorder.span("server.watch"):
                        run_batch(
                            changed,
                            config=self._clamped(BatchConfig()),
                            jobs=self.jobs,
                            cache=self.cache,
                            pool=self._get_pool(),
                        )

        thread = threading.Thread(target=loop, name="repro-watch", daemon=True)
        thread.start()
        return thread

    def serve_forever(self) -> None:
        """Bind the socket and serve until ``shutdown`` (op or signal)."""
        parent = os.path.dirname(self.socket_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead daemon
        self._server = _SocketServer(self.socket_path, self)
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self.close()

    def close(self) -> None:
        self._watcher_stop.set()
        server, self._server = self._server, None
        if server is not None:
            server.server_close()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a loop of request line -> response line."""

    def handle(self) -> None:
        service: AnalysisServer = self.server.service
        while True:
            try:
                message = protocol.read_message(self.rfile)
            except protocol.ProtocolError as exc:
                self.wfile.write(protocol.encode(protocol.error(str(exc))))
                continue
            if message is None:
                return  # client closed the connection
            response = service.handle_request(message)
            try:
                self.wfile.write(protocol.encode(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return
            if message.get("op") == "shutdown":
                return


class _SocketServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    """Threaded Unix-socket server (composed by hand:
    ``ThreadingUnixStreamServer`` only exists on Python >= 3.12)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: str, service: AnalysisServer):
        self.service = service
        super().__init__(socket_path, _Handler)


def serve(
    socket_path: Optional[str] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    cap_deadline: float = DEFAULT_CAP_DEADLINE,
    cap_states: int = DEFAULT_CAP_STATES,
    watch: Optional[List[str]] = None,
    interval: float = 1.0,
    recorder: Optional[TraceRecorder] = None,
) -> AnalysisServer:
    """Build, warm, and run a daemon (the ``repro-served`` body).

    Blocks until shutdown; returns the server object (tests inspect it).
    """
    cache = None if no_cache else ResultCache(cache_dir)
    server = AnalysisServer(
        socket_path=socket_path,
        jobs=jobs,
        cache=cache,
        cap_deadline=cap_deadline,
        cap_states=cap_states,
        recorder=recorder,
    )
    server.warm()
    if watch:
        server.start_watcher(watch, interval=interval)
    server.serve_forever()
    return server
