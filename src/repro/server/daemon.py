"""The resident analysis daemon (``repro-served``).

The paper's just-in-time deployment — analyzing a script at the moment
it is about to run — needs answers at interactive latency, and a
one-shot CLI cannot deliver that: every invocation pays interpreter
start-up, spec-corpus loading, and DFA-cache warm-up before the first
byte of analysis.  The daemon pays those costs once and keeps the three
warm stores resident:

- the spec registry (command models) and its compiled min-DFAs,
- the rlang pattern caches built up by prior analyses,
- the persistent :class:`~repro.analysis.cache.ResultCache`, so an
  unchanged file costs one hash + one read — zero symbolic execution.

Requests arrive over a Unix socket as line-delimited JSON (see
:mod:`.protocol`); each connection is served on its own thread, and
batch requests fan out across a *persistent* process pool that
survives between requests.  Every request runs under a clamped
:class:`~repro.analysis.resilience.ResourceBudget` — a client may ask
for less time than the server cap, never more — so one pathological
script cannot wedge the daemon for other clients.

Observability (the production-service layer):

- **Request-scoped telemetry.**  Every request gets a request id and
  its own :class:`~repro.obs.TraceRecorder`, installed thread-locally
  so concurrent requests cannot contaminate each other; worker-side
  metric snapshots from the process pool are folded in, the request's
  snapshot is returned in the response envelope (``request_id``,
  ``elapsed_ms``, ``metrics``), and then absorbed into the server's
  totals — so per-request metrics always sum consistently into the
  ``stats`` op, and the long-lived recorder's memory stays bounded
  (snapshots carry no spans).
- **Structured ops log.**  ``--log-file`` appends one JSON object per
  event: request lifecycle (``request.accept`` / ``request.done`` /
  ``request.error`` / ``request.shed``), slow requests over
  ``--slow-ms`` (``request.slow``), watch-loop rescans and stat
  failures, budget clamps, and daemon start/stop.
- **Metrics exposition.**  The extended ``stats`` op reports uptime,
  request rates, per-op latency quantiles, cache hit rate, pool state,
  and clamp/shed/error counts; the ``metrics`` op serves the same
  totals in the Prometheus text format; ``repro-top`` renders either
  as a live console.
- **Load shedding.**  At most ``max_inflight`` requests run at once;
  excess requests are answered immediately with a structured shed
  error instead of queueing behind a saturated pool.

Fault tolerance (the crash-only layer, see :mod:`.supervise` and
:mod:`.chaos`):

- **Stale-socket takeover.**  Startup probes an existing socket file:
  a live daemon makes the bind fail loudly, a dead one is evicted with
  a ``server.socket_takeover`` event.
- **Pool rebuild.**  A batch whose worker died breaks the process
  pool; affected files are retried inline (or answered degraded) by
  the batch driver, and the pool is rebuilt eagerly before the
  response is sent (``server.pool_rebuilds``), so the *next* request
  never pays the rebuild.
- **Graceful drain.**  ``SIGTERM`` (or :meth:`AnalysisServer.drain`)
  stops accepting new requests — they get an immediate structured
  refusal — waits for in-flight requests up to a hard deadline, then
  stops the loop.  A drain that hits the deadline abandons the
  stragglers (``server.drain_forced``): crash-only means the hard stop
  is always safe.
- **Protocol hardening.**  Frames are read through
  :class:`~.protocol.FrameReader`: oversized or stalled partial frames
  are answered with an error envelope and the connection is closed;
  malformed JSON is answered without dropping the connection; a client
  that disappears mid-frame costs one counter, never a wedged thread.
"""

from __future__ import annotations

import itertools
import os
import socketserver
import threading
import time
from dataclasses import replace
from typing import List, Optional

from .. import __version__
from ..analysis.batch import BatchConfig, _make_pool, run_batch
from ..analysis.cache import ResultCache, cache_key
from ..analysis.resilience import clamped_budget
from ..obs import (
    MetricsSnapshot,
    NullOpsLogger,
    OpsLogger,
    TraceRecorder,
    get_recorder,
    use_recorder,
    use_thread_recorder,
)
from ..obs.export import prometheus_text
from . import protocol, supervise
from .chaos import chaos_delay
from .watch import Watcher

#: server-side ceilings for per-request budgets
DEFAULT_CAP_DEADLINE = 30.0
DEFAULT_CAP_STATES = 2_000_000

#: requests slower than this (wall-clock ms) get a ``request.slow``
#: log event and bump ``server.slow_requests``
DEFAULT_SLOW_MS = 1000.0

#: concurrent-request ceiling; excess requests are shed with a
#: structured error rather than queued behind a saturated pool
DEFAULT_MAX_INFLIGHT = 64

#: in-flight requests get this many seconds to finish when draining
#: before the hard stop abandons them
DEFAULT_DRAIN_DEADLINE = 5.0


class AnalysisServer:
    """The long-lived analysis service behind the socket.

    Owns the warm state (result cache, persistent process pool, the
    totals recorder, the ops log) and implements every protocol op as a
    method; the socket layer (:class:`_SocketServer`) is a thin
    threaded shell around :meth:`handle_request`.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        cap_deadline: float = DEFAULT_CAP_DEADLINE,
        cap_states: int = DEFAULT_CAP_STATES,
        recorder: Optional[TraceRecorder] = None,
        log: Optional[OpsLogger] = None,
        slow_ms: float = DEFAULT_SLOW_MS,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        frame_deadline: Optional[float] = protocol.DEFAULT_FRAME_DEADLINE,
        idle_timeout: Optional[float] = None,
        drain_deadline: float = DEFAULT_DRAIN_DEADLINE,
        incremental: bool = True,
    ):
        self.socket_path = socket_path or protocol.default_socket_path()
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache = cache
        self.cap_deadline = cap_deadline
        self.cap_states = cap_states
        self.recorder = recorder or TraceRecorder()
        self.log = log or NullOpsLogger()
        self.slow_ms = slow_ms
        self.max_inflight = max_inflight
        self.frame_deadline = frame_deadline
        self.idle_timeout = idle_timeout
        self.drain_deadline = drain_deadline
        self.started_at = time.monotonic()
        self.requests_served = 0
        self.inflight = 0
        self.draining = threading.Event()
        self._inflight_lock = threading.Lock()
        self._request_seq = itertools.count(1)
        self._pool = None
        self._pool_lock = threading.Lock()
        self._server: Optional[_SocketServer] = None
        self._watcher_stop = threading.Event()
        #: fragment-level incremental re-analysis in watch mode (the
        #: sub-100ms edit→report path); the session is built lazily on
        #: the first watch round so non-watch daemons pay nothing
        self.incremental = incremental
        self._incremental_session = None

    # -- warm state ---------------------------------------------------------

    def warm(self) -> None:
        """Pay the cold-start costs up front: load the spec registry and
        run one trivial analysis so the shared DFA caches (spec patterns,
        common regexes) are built before the first request arrives."""
        from ..analysis import analyze
        from ..specs import default_registry

        with use_recorder(self.recorder):
            with self.recorder.span("server.warm"):
                default_registry()
                analyze("true\n")

    def _get_pool(self):
        """The persistent process pool, (re)created on demand.  A pool
        whose workers died is replaced rather than reused; ``jobs=1``
        means no pool (inline analysis), which also serves as the
        fallback in pool-less sandboxes."""
        if self.jobs <= 1:
            return None
        with self._pool_lock:
            pool = self._pool
            if pool is not None and getattr(pool, "_broken", False):
                pool.shutdown(wait=False)
                pool = self._pool = None
                self.recorder.absorb(
                    MetricsSnapshot(counters={"server.pool_rebuilds": 1})
                )
                self.log.warning("server.pool_rebuild")
            if pool is None:
                try:
                    pool = self._pool = _make_pool(self.jobs)
                except (OSError, ImportError, RuntimeError):
                    return None
            return pool

    def pool_alive(self) -> bool:
        """Whether a persistent pool currently exists and is usable."""
        with self._pool_lock:
            return self._pool is not None and not getattr(
                self._pool, "_broken", False
            )

    def _clamped(self, config: BatchConfig, request_id: Optional[str] = None) -> BatchConfig:
        """The request's config with its budget clamped to server caps;
        a request that asked for *more* than the cap is counted and
        logged (``budget.clamp``) so over-asking tenants are visible."""
        budget = clamped_budget(
            config.timeout,
            config.max_states,
            cap_deadline=self.cap_deadline,
            cap_states=self.cap_states,
        )
        over_deadline = (
            config.timeout is not None and config.timeout > self.cap_deadline
        )
        over_states = (
            config.max_states is not None and config.max_states > self.cap_states
        )
        if over_deadline or over_states:
            from ..obs import get_recorder

            get_recorder().count("server.budget_clamped")
            self.log.info(
                "budget.clamp",
                request_id=request_id,
                requested_timeout=config.timeout,
                requested_max_states=config.max_states,
                cap_deadline=self.cap_deadline,
                cap_states=self.cap_states,
            )
        return replace(
            config, timeout=budget.deadline, max_states=budget.max_states
        )

    # -- ops ----------------------------------------------------------------

    def _next_request_id(self) -> str:
        return f"{os.getpid():x}-{next(self._request_seq):06d}"

    def handle_request(self, message: dict) -> dict:
        """Dispatch one request; never raises (errors become responses).

        The whole request runs under its own thread-local recorder; the
        resulting snapshot rides back in the response envelope and is
        absorbed into the server totals, so client-visible per-request
        metrics and the ``stats`` op always agree.
        """
        op = message.get("op")
        request_id = self._next_request_id()
        started = time.perf_counter()
        self.requests_served += 1

        if self.draining.is_set():
            return self._refused_response(
                op,
                request_id,
                started,
                "server draining: not accepting new requests",
                counter="server.drain_refused",
                flag="draining",
            )
        with self._inflight_lock:
            shed = self.inflight >= self.max_inflight
            if not shed:
                self.inflight += 1
        if shed:
            return self._shed_response(op, request_id, started)

        delay = chaos_delay("server.delay", op or "")
        if delay:
            time.sleep(delay)

        request_recorder = TraceRecorder()
        self.log.debug("request.accept", request_id=request_id, op=op)
        error_text: Optional[str] = None
        result = None
        try:
            with use_thread_recorder(request_recorder):
                request_recorder.count("server.requests")
                request_recorder.count(f"server.op.{op or 'unknown'}")
                try:
                    if op == "ping":
                        result = self._op_ping()
                    elif op == "analyze":
                        with request_recorder.span("server.analyze"):
                            result = self._op_analyze(message, request_id)
                    elif op == "optimize":
                        with request_recorder.span("server.optimize"):
                            result = self._op_optimize(message, request_id)
                    elif op == "batch":
                        with request_recorder.span("server.batch"):
                            result = self._op_batch(message, request_id)
                    elif op == "stats":
                        result = self._op_stats()
                    elif op == "metrics":
                        result = self._op_metrics()
                    elif op == "shutdown":
                        self._initiate_shutdown()
                        result = {"stopping": True}
                    else:
                        request_recorder.count("server.errors")
                        error_text = f"unknown op: {op!r}"
                except Exception as exc:  # noqa: BLE001 — the daemon must survive
                    request_recorder.count("server.errors")
                    error_text = f"{type(exc).__name__}: {exc}"
                    self.log.error(
                        "request.error",
                        request_id=request_id,
                        op=op,
                        error=str(exc),
                        error_type=type(exc).__name__,
                    )
        finally:
            with self._inflight_lock:
                self.inflight -= 1

        elapsed_ms = (time.perf_counter() - started) * 1000.0
        request_recorder.observe("server.request_ms", elapsed_ms)
        request_recorder.observe(f"server.request_ms.{op or 'unknown'}", elapsed_ms)
        if elapsed_ms >= self.slow_ms:
            request_recorder.count("server.slow_requests")
            self.log.warning(
                "request.slow",
                request_id=request_id,
                op=op,
                elapsed_ms=round(elapsed_ms, 3),
                threshold_ms=self.slow_ms,
            )
        snapshot = request_recorder.snapshot()
        self.recorder.absorb(snapshot)

        if error_text is None:
            envelope = protocol.ok(result)
            self.log.info(
                "request.done",
                request_id=request_id,
                op=op,
                elapsed_ms=round(elapsed_ms, 3),
                cached=result.get("cached") if isinstance(result, dict) else None,
            )
        else:
            envelope = protocol.error(error_text)
        envelope["request_id"] = request_id
        envelope["elapsed_ms"] = elapsed_ms
        if message.get("telemetry", True):
            envelope["metrics"] = snapshot.to_dict()
        return envelope

    def _shed_response(self, op, request_id: str, started: float) -> dict:
        """Immediate structured refusal when the daemon is saturated."""
        self.log.warning(
            "request.shed",
            request_id=request_id,
            op=op,
            max_inflight=self.max_inflight,
        )
        return self._refused_response(
            op,
            request_id,
            started,
            f"server overloaded: {self.max_inflight} request(s) already in "
            "flight; retry later",
            counter="server.shed",
            flag="shed",
            log_event=None,  # already logged with shed-specific fields
        )

    def _refused_response(
        self,
        op,
        request_id: str,
        started: float,
        message: str,
        counter: str,
        flag: str,
        log_event: Optional[str] = "request.refused",
    ) -> dict:
        """One error envelope for a request the daemon will not run
        (shed under load, refused while draining) — still exactly one
        response, still carrying a request id."""
        self.recorder.absorb(
            MetricsSnapshot(counters={"server.requests": 1, counter: 1})
        )
        if log_event:
            self.log.warning(
                log_event, request_id=request_id, op=op, reason=flag
            )
        envelope = protocol.error(message)
        envelope["request_id"] = request_id
        envelope[flag] = True
        envelope["elapsed_ms"] = (time.perf_counter() - started) * 1000.0
        return envelope

    def _op_ping(self) -> dict:
        return {
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
        }

    def _op_analyze(self, message: dict, request_id: Optional[str] = None) -> dict:
        """One script, by inline ``source`` or by ``path``."""
        from ..analysis import analyze
        from ..analysis.report import Report
        from ..obs import get_recorder

        source = message.get("source")
        if source is None:
            path = message.get("path")
            if not path:
                raise ValueError("analyze request needs 'source' or 'path'")
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        config = self._clamped(
            protocol.config_from_wire(message.get("config")), request_id
        )
        key = cache_key(source, config.fingerprint())
        recorder = get_recorder()
        if self.cache is not None:
            data = self.cache.get(key)
            if data is not None:
                recorder.count("batch.cache.hit")
                return {"report": data, "cached": True}
            recorder.count("batch.cache.miss")
        report = analyze(source, budget=config.budget(), **config.analyze_kwargs())
        data = report.to_dict()
        if self.cache is not None and not report.degraded:
            self.cache.put(key, data)
        # round-trip like the batch driver so server output is
        # byte-identical to the inline path
        return {"report": Report.from_dict(data).to_dict(), "cached": False}

    def _op_optimize(self, message: dict, request_id: Optional[str] = None) -> dict:
        """One script's optimization plan, by inline ``source`` or by
        ``path`` — the warm path for editor/JIT advisors.  Mirrors
        ``analyze``: plan-cache lookup first, round-tripped plan dicts so
        server responses are byte-identical to inline runs."""
        from ..analysis.optimize import (
            PLAN_SCHEMA_VERSION,
            OptimizePlan,
            optimize_source,
            plan_cache_key,
        )
        from ..obs import get_recorder

        source = message.get("source")
        if source is None:
            path = message.get("path")
            if not path:
                raise ValueError("optimize request needs 'source' or 'path'")
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        config = self._clamped(
            protocol.config_from_wire(message.get("config")), request_id
        )
        key = plan_cache_key(source, config)
        recorder = get_recorder()
        if self.cache is not None:
            data = self.cache.get(key, schema=PLAN_SCHEMA_VERSION)
            if data is not None:
                recorder.count("optimize.cache.hit")
                return {"plan": data, "cached": True}
            recorder.count("optimize.cache.miss")
        data = optimize_source(source, config)
        if self.cache is not None and not data.get("degraded"):
            self.cache.put(key, data)
        return {"plan": OptimizePlan.from_dict(data).to_dict(), "cached": False}

    def _op_batch(self, message: dict, request_id: Optional[str] = None) -> dict:
        inputs = message.get("inputs")
        if not isinstance(inputs, list) or not inputs:
            raise ValueError("batch request needs a non-empty 'inputs' list")
        config = self._clamped(
            protocol.config_from_wire(message.get("config")), request_id
        )
        batch = run_batch(
            inputs,
            config=config,
            jobs=self.jobs,
            cache=self.cache,
            pool=self._get_pool(),
        )
        if self.jobs > 1 and not self.pool_alive():
            # a worker died under this batch and broke the pool; the
            # batch driver already retried the affected files inline —
            # rebuild eagerly so the *next* request never pays for it
            self._get_pool()
        return {
            "results": [
                {
                    "path": r.path,
                    "report": r.report.to_dict(),
                    "cached": r.cached,
                    "quarantined": r.quarantined,
                    "seconds": r.seconds,
                }
                for r in batch.results
            ],
            "hits": batch.hits,
            "misses": batch.misses,
        }

    def _op_stats(self) -> dict:
        """The full operational picture: identity, uptime and rates,
        per-op latency quantiles, cache hit rate, pool and shed state,
        plus the raw metrics snapshot for programmatic consumers."""
        snapshot = self.recorder.snapshot()
        uptime = time.monotonic() - self.started_at
        hits = snapshot.counter("batch.cache.hit")
        misses = snapshot.counter("batch.cache.miss")
        lookups = hits + misses
        latency = {}
        prefix = "server.request_ms."
        for name, histogram in sorted(snapshot.histograms.items()):
            if not name.startswith(prefix):
                continue
            quantiles = histogram.quantiles()
            latency[name[len(prefix):]] = {
                "count": histogram.count,
                "mean_ms": histogram.mean,
                "p50_ms": quantiles["p50"],
                "p95_ms": quantiles["p95"],
                "p99_ms": quantiles["p99"],
                "max_ms": histogram.maximum,
            }
        return {
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": uptime,
            "requests": self.requests_served,
            "request_rate_rps": self.requests_served / uptime if uptime else 0.0,
            "errors": snapshot.counter("server.errors"),
            "shed": snapshot.counter("server.shed"),
            "slow_requests": snapshot.counter("server.slow_requests"),
            "budget_clamps": snapshot.counter("server.budget_clamped"),
            "pool_rebuilds": snapshot.counter("server.pool_rebuilds"),
            "protocol_errors": snapshot.counter("server.protocol_errors"),
            "socket_takeovers": snapshot.counter("server.socket_takeovers"),
            "restarts": snapshot.counter("server.restarts"),
            "draining": self.draining.is_set(),
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "slow_ms": self.slow_ms,
            "jobs": self.jobs,
            "pool_alive": self.pool_alive(),
            "cache": self.cache is not None,
            "cache_hit_rate": hits / lookups if lookups else None,
            "cache_hits": hits,
            "cache_misses": misses,
            "watch_rounds": snapshot.counter("server.watch_rounds"),
            "watch_stat_errors": snapshot.counter("watch.stat_errors"),
            "latency_ms": latency,
            "metrics": snapshot.to_dict(),
        }

    def _op_metrics(self) -> dict:
        """Server totals in the Prometheus text exposition format."""
        text = prometheus_text(
            self.recorder.snapshot(),
            gauges={
                "server.uptime_seconds": time.monotonic() - self.started_at,
                "server.inflight_requests": self.inflight,
                "server.max_inflight_requests": self.max_inflight,
                "server.pool_workers": self.jobs,
                "server.pool_alive": 1.0 if self.pool_alive() else 0.0,
            },
        )
        return {"text": text, "content_type": "text/plain; version=0.0.4"}

    # -- lifecycle ----------------------------------------------------------

    def _initiate_shutdown(self) -> None:
        """Stop the socket loop from a handler thread (shutdown() blocks
        until serve_forever returns, so it must not run on the handler)."""
        server = self._server
        if server is not None:
            threading.Thread(target=server.shutdown, daemon=True).start()

    def note_protocol_error(self, exc: Exception) -> None:
        """Account a wire-level fault (oversized/stalled/garbage frame)."""
        self.recorder.absorb(
            MetricsSnapshot(counters={"server.protocol_errors": 1})
        )
        self.log.warning(
            "request.protocol_error",
            error=str(exc),
            error_type=type(exc).__name__,
        )

    def drain(self, deadline: Optional[float] = None) -> bool:
        """Graceful stop: refuse new requests, wait for in-flight ones
        up to ``deadline`` seconds, then shut the loop down.  Returns
        False when the hard deadline abandoned stragglers (crash-only:
        the hard stop is always safe — no request is half-answered,
        its connection just closes)."""
        deadline = self.drain_deadline if deadline is None else deadline
        already = self.draining.is_set()
        self.draining.set()
        if not already:
            self.recorder.absorb(
                MetricsSnapshot(counters={"server.drains": 1})
            )
            self.log.info(
                "server.drain.start",
                inflight=self.inflight,
                deadline_s=deadline,
            )
        expires = time.monotonic() + deadline
        while self.inflight > 0 and time.monotonic() < expires:
            time.sleep(0.01)
        forced = self.inflight > 0
        if forced:
            self.recorder.absorb(
                MetricsSnapshot(counters={"server.drain_forced": 1})
            )
            self.log.warning(
                "server.drain.deadline",
                abandoned=self.inflight,
                deadline_s=deadline,
            )
        else:
            self.log.info("server.drain.done")
        self._initiate_shutdown()
        return not forced

    def _get_incremental_session(self, config: BatchConfig):
        """The long-lived fragment-summary session behind watch mode."""
        if self._incremental_session is None:
            from ..analysis.incremental import IncrementalSession

            self._incremental_session = IncrementalSession(config=config)
        return self._incremental_session

    def _watch_reanalyze(self, changed: List[str], config: BatchConfig) -> None:
        """Re-analyze changed files through the fragment memo, keeping
        the whole-file result cache warm with byte-identical payloads
        (the session guarantees replayed reports render exactly like a
        cold run, so clients cannot observe which path filled the
        cache)."""
        session = self._get_incremental_session(config)
        recorder = get_recorder()
        for path in changed:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:
                # deleted between scan and read: the next scan reports it
                recorder.count("watch.stat_errors")
                continue
            report = session.analyze(source, path=path)
            if self.cache is not None and not report.degraded:
                self.cache.put(
                    cache_key(source, config.fingerprint()), report.to_dict()
                )
            self.log.info(
                "watch.incremental",
                path=path,
                fragments_hit=session.last_hits,
                fragments_miss=session.last_misses,
                invalidated=session.last_invalidated,
            )

    def start_watcher(self, inputs: List[str], interval: float = 1.0) -> threading.Thread:
        """Watch mode: poll ``inputs`` for new/modified scripts and
        re-analyze them as they change, keeping the result cache warm so
        the *next* client request over those files is all cache hits.

        With ``incremental`` on (the default), re-analysis goes through
        the fragment-summary session: only function bodies whose source
        digest changed — plus their dependence-graph dependents — are
        re-explored, which is what makes the edit→report turnaround
        sub-100ms on warm summaries."""
        watcher = Watcher(inputs, log=self.log)

        def loop() -> None:
            while not self._watcher_stop.wait(interval):
                round_recorder = TraceRecorder()
                try:
                    with use_thread_recorder(round_recorder):
                        changed, deleted = watcher.scan()
                        for path in deleted:
                            if self._incremental_session is not None:
                                self._incremental_session.forget(path)
                        if changed:
                            round_recorder.count("server.watch_rounds")
                            round_recorder.count("server.watch_files", len(changed))
                            config = self._clamped(BatchConfig())
                            with round_recorder.span("server.watch"):
                                if self.incremental:
                                    self._watch_reanalyze(changed, config)
                                else:
                                    run_batch(
                                        changed,
                                        config=config,
                                        jobs=self.jobs,
                                        cache=self.cache,
                                        pool=self._get_pool(),
                                    )
                            self.log.info(
                                "watch.scan",
                                changed=len(changed),
                                paths=changed[:20],
                            )
                except Exception as exc:  # noqa: BLE001 — the watcher must outlive one bad round
                    round_recorder.count("watch.errors")
                    self.log.error(
                        "watch.error",
                        error=str(exc),
                        error_type=type(exc).__name__,
                    )
                snapshot = round_recorder.snapshot()
                if snapshot.counters or snapshot.histograms:
                    self.recorder.absorb(snapshot)

        thread = threading.Thread(target=loop, name="repro-watch", daemon=True)
        thread.start()
        return thread

    def serve_forever(self) -> None:
        """Bind the socket and serve until ``shutdown`` (op or signal).

        An existing socket file is probed first: a live daemon raises
        :class:`~.supervise.SocketInUse` instead of having its socket
        stolen; a dead daemon's leftover is evicted with a
        ``server.socket_takeover`` event."""
        parent = os.path.dirname(self.socket_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        supervise.ensure_socket_free(
            self.socket_path, log=self.log, recorder=self.recorder
        )
        self._server = _SocketServer(self.socket_path, self)
        self.log.info(
            "server.start",
            socket=self.socket_path,
            pid=os.getpid(),
            version=__version__,
            jobs=self.jobs,
            max_inflight=self.max_inflight,
        )
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self.close()

    def close(self) -> None:
        self._watcher_stop.set()
        server, self._server = self._server, None
        if server is not None:
            server.server_close()
            self.log.info(
                "server.stop",
                requests=self.requests_served,
                uptime_s=round(time.monotonic() - self.started_at, 3),
            )
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a loop of request frame -> response frame.

    The exactly-one-envelope invariant lives here: every frame that
    parses gets exactly one response from ``handle_request`` (which
    never raises), and every wire-level fault gets either one error
    envelope (when the peer can still read) or a silent close (when it
    is gone) — never a hang, never a second answer.
    """

    def handle(self) -> None:
        service: AnalysisServer = self.server.service
        reader = protocol.FrameReader(self.connection)
        while True:
            try:
                frame = reader.read_frame(
                    idle_timeout=service.idle_timeout,
                    frame_deadline=service.frame_deadline,
                )
            except protocol.IdleTimeout:
                return  # nothing owed: the peer never started a request
            except (
                protocol.FrameTooLarge,
                protocol.PartialFrameTimeout,
            ) as exc:
                # answer, then close: the stream cannot be resynced
                service.note_protocol_error(exc)
                self._respond(protocol.error(str(exc)))
                return
            except protocol.TruncatedFrame as exc:
                service.note_protocol_error(exc)
                return  # the peer is gone; no envelope owed
            if frame is None:
                return  # clean close between frames
            try:
                message = protocol.decode(frame)
            except protocol.ProtocolError as exc:
                # malformed JSON: answer and keep serving — the stream
                # is resynced at the newline
                service.note_protocol_error(exc)
                if not self._respond(protocol.error(str(exc))):
                    return
                continue
            response = service.handle_request(message)
            if not self._respond(response):
                return
            if message.get("op") == "shutdown":
                return

    def _respond(self, envelope: dict) -> bool:
        """Write one response frame; False when the peer is gone."""
        try:
            self.wfile.write(protocol.encode(envelope))
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False


class _SocketServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    """Threaded Unix-socket server (composed by hand:
    ``ThreadingUnixStreamServer`` only exists on Python >= 3.12)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: str, service: AnalysisServer):
        self.service = service
        super().__init__(socket_path, _Handler)


def serve(
    socket_path: Optional[str] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    cap_deadline: float = DEFAULT_CAP_DEADLINE,
    cap_states: int = DEFAULT_CAP_STATES,
    watch: Optional[List[str]] = None,
    interval: float = 1.0,
    recorder: Optional[TraceRecorder] = None,
    log: Optional[OpsLogger] = None,
    slow_ms: float = DEFAULT_SLOW_MS,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    frame_deadline: Optional[float] = protocol.DEFAULT_FRAME_DEADLINE,
    idle_timeout: Optional[float] = None,
    drain_deadline: float = DEFAULT_DRAIN_DEADLINE,
    supervised: bool = False,
    max_restarts: int = 5,
    install_signals: bool = False,
    incremental: bool = True,
) -> AnalysisServer:
    """Build, warm, and run a daemon (the ``repro-served`` body).

    Blocks until shutdown; returns the server object (tests inspect it).

    ``supervised=True`` wraps the serving loop in a
    :class:`~.supervise.Supervisor`: a crash builds a *fresh* server
    but reuses the same on-disk cache, totals recorder, and ops logger,
    so the restarted daemon answers warm.  ``install_signals=True``
    (CLI only — must run on the main thread) maps ``SIGTERM`` to a
    graceful drain with the ``drain_deadline`` hard stop.
    """
    cache = None if no_cache else ResultCache(cache_dir)
    recorder = recorder or TraceRecorder()
    log = log or NullOpsLogger()
    warmed = threading.Event()

    def build() -> AnalysisServer:
        server = AnalysisServer(
            socket_path=socket_path,
            jobs=jobs,
            cache=cache,
            cap_deadline=cap_deadline,
            cap_states=cap_states,
            recorder=recorder,
            log=log,
            slow_ms=slow_ms,
            max_inflight=max_inflight,
            frame_deadline=frame_deadline,
            idle_timeout=idle_timeout,
            drain_deadline=drain_deadline,
            incremental=incremental,
        )
        if not warmed.is_set():
            server.warm()
            warmed.set()
        if watch:
            server.start_watcher(watch, interval=interval)
        holder["server"] = server
        return server

    holder: dict = {}
    if install_signals:
        import signal

        def _on_sigterm(signum, frame):
            server = holder.get("server")
            if server is not None:
                threading.Thread(
                    target=server.drain, daemon=True
                ).start()

        signal.signal(signal.SIGTERM, _on_sigterm)

    if supervised:
        supervisor = supervise.Supervisor(
            build, log=log, max_restarts=max_restarts
        )
        return supervisor.run()
    server = build()
    server.serve_forever()
    return server
