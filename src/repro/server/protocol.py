"""Wire protocol for the resident analysis server.

One connection carries a sequence of requests, each a single line of
JSON terminated by ``\\n``; every request gets exactly one response line.
Line-delimited JSON keeps the protocol trivially debuggable
(``echo '{"op":"ping"}' | nc -U ...``) and framing-free: no length
prefixes, no partial-read state machines.

The daemon reads frames through :class:`FrameReader`, which enforces
the three properties a hostile or broken client must not be able to
violate:

- **max frame size** — a frame longer than :data:`MAX_LINE_BYTES`
  raises :class:`FrameTooLarge` before the daemon buffers it whole;
- **partial-frame deadline** — a client that sends half a frame and
  stalls gets :class:`PartialFrameTimeout` instead of pinning a handler
  thread forever;
- **truncated frames** — a connection closed mid-frame raises
  :class:`TruncatedFrame` rather than feeding garbage downstream.

Requests are objects with an ``op`` field:

- ``{"op": "ping"}`` — liveness + version handshake
- ``{"op": "analyze", "source": ..., "config": {...}}`` — one script
  (by ``source`` text or by ``path``); response carries the serialized
  :class:`~repro.analysis.report.Report` plus a ``cached`` flag
- ``{"op": "optimize", "source": ..., "config": {...}}`` — one
  script's optimization plan (by ``source`` text or by ``path``);
  response carries the serialized
  :class:`~repro.analysis.optimize.OptimizePlan` under ``plan`` plus a
  ``cached`` flag (plans are content-addressed in the same result
  cache, salted with the plan schema version)
- ``{"op": "batch", "inputs": [...], "config": {...}}`` — files,
  directories, and glob patterns, exactly like ``repro-analyze``'s
  positional arguments; response carries per-file serialized reports
- ``{"op": "stats"}`` — the operational picture: uptime, request
  rates, per-op latency quantiles, cache hit rate, pool/shed/clamp
  state, and a metrics snapshot of the daemon's totals
- ``{"op": "metrics"}`` — the same totals as Prometheus text
  exposition (``result.text``), for scrapers and ``repro-top``
- ``{"op": "shutdown"}`` — acknowledge, then stop serving

Responses are ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": "..."}``.  Every response envelope also
carries *additive* observability fields (same protocol version — old
clients simply ignore them):

- ``request_id`` — the server-assigned id for this request; every log
  event and metric attribution uses it
- ``elapsed_ms`` — server-side wall time for the request
- ``metrics`` — the request-scoped
  :class:`~repro.obs.MetricsSnapshot` as a dict (where *this* request
  spent its time: symex counters, cache hits, worker metrics folded in
  across the pool boundary).  Suppressed when the request carries
  ``"telemetry": false``.
- ``shed: true`` — on error responses produced by load shedding

The server never closes the connection in response to a malformed
request — it answers with an error so interactive clients can recover.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from typing import IO, Optional

#: bump on any incompatible request/response shape change
PROTOCOL_VERSION = 1

#: refuse request lines longer than this (a malformed or malicious
#: client must not balloon daemon memory); generous enough for the
#: largest real script corpora sent inline
MAX_LINE_BYTES = 64 * 1024 * 1024

#: a started frame must complete within this many seconds (the daemon's
#: default partial-frame read deadline)
DEFAULT_FRAME_DEADLINE = 30.0

#: environment override for the rendezvous point
SOCKET_ENV = "REPRO_SERVER_SOCKET"


class ProtocolError(Exception):
    """A malformed frame (bad JSON, missing op, oversized line)."""


class FrameTooLarge(ProtocolError):
    """A frame exceeded :data:`MAX_LINE_BYTES`; the connection cannot
    be resynchronized and must be closed after the error response."""


class PartialFrameTimeout(ProtocolError):
    """A frame was started but not finished within the read deadline."""


class TruncatedFrame(ProtocolError):
    """The peer closed (or reset) the connection mid-frame."""


class IdleTimeout(ProtocolError):
    """No frame arrived within the idle window (clean close, no error
    response owed — the peer never started a request)."""


def default_socket_path() -> str:
    """The rendezvous socket path: ``$REPRO_SERVER_SOCKET`` if set, else
    a per-user path under ``$XDG_RUNTIME_DIR`` or the temp directory."""
    override = os.environ.get(SOCKET_ENV)
    if override:
        return override
    runtime_dir = os.environ.get("XDG_RUNTIME_DIR")
    if runtime_dir and os.path.isdir(runtime_dir):
        return os.path.join(runtime_dir, "repro-served.sock")
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-served-{uid}.sock")


def encode(message: dict) -> bytes:
    """One message as a wire frame (compact JSON + newline)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict:
    """Parse one wire frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


def read_message(stream: IO[bytes]) -> Optional[dict]:
    """The next message from a socket file, or None at EOF."""
    line = stream.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    return decode(line)


class FrameReader:
    """Incremental newline-delimited frame reader over a raw socket.

    Unlike ``rfile.readline``, this reader distinguishes the failure
    modes the daemon must handle differently: oversized frames
    (:class:`FrameTooLarge` — answer and close), stalled partial frames
    (:class:`PartialFrameTimeout` — answer and close), truncated frames
    (:class:`TruncatedFrame` — peer is gone, just close), and idle
    connections (:class:`IdleTimeout` — close silently).  ``sock`` is
    anything with ``settimeout``/``recv`` (a real socket or a test
    double).
    """

    CHUNK = 1 << 16

    def __init__(self, sock, max_bytes: Optional[int] = None):
        self._sock = sock
        # read the module global at construction time so tests (and
        # embedders) can shrink the limit for connections made later
        self.max_bytes = MAX_LINE_BYTES if max_bytes is None else max_bytes
        self._buffer = bytearray()
        self._eof = False

    def read_frame(
        self,
        idle_timeout: Optional[float] = None,
        frame_deadline: Optional[float] = DEFAULT_FRAME_DEADLINE,
    ) -> Optional[bytes]:
        """The next complete frame (without the trailing newline), or
        ``None`` at a clean EOF between frames.

        ``idle_timeout`` bounds the wait for the *first* byte of a
        frame (``None`` = wait forever); ``frame_deadline`` bounds the
        time from the first byte to the terminating newline.
        """
        started: Optional[float] = None
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                frame = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                if len(frame) > self.max_bytes:
                    raise FrameTooLarge(
                        f"frame exceeds {self.max_bytes} bytes"
                    )
                return frame
            if len(self._buffer) > self.max_bytes:
                raise FrameTooLarge(f"frame exceeds {self.max_bytes} bytes")
            if self._eof:
                if self._buffer:
                    self._buffer.clear()
                    raise TruncatedFrame("connection closed mid-frame")
                return None
            if self._buffer:
                if started is None:
                    started = time.monotonic()
                timeout = None
                if frame_deadline is not None:
                    timeout = frame_deadline - (time.monotonic() - started)
                    if timeout <= 0:
                        raise PartialFrameTimeout(
                            f"partial frame stalled past the "
                            f"{frame_deadline:g}s read deadline"
                        )
            else:
                timeout = idle_timeout
            try:
                self._sock.settimeout(timeout)
                chunk = self._sock.recv(self.CHUNK)
            except socket.timeout as exc:
                if self._buffer:
                    raise PartialFrameTimeout(
                        f"partial frame stalled past the "
                        f"{frame_deadline:g}s read deadline"
                    ) from exc
                raise IdleTimeout(
                    f"no request within the {idle_timeout:g}s idle window"
                ) from exc
            except OSError as exc:
                if self._buffer:
                    self._buffer.clear()
                    raise TruncatedFrame(
                        f"connection lost mid-frame: {exc}"
                    ) from exc
                return None
            if not chunk:
                self._eof = True
            else:
                self._buffer.extend(chunk)


def ok(result) -> dict:
    return {"ok": True, "result": result}


def error(message: str) -> dict:
    return {"ok": False, "error": message}


# ---------------------------------------------------------------------------
# Config marshalling (BatchConfig <-> wire dict)
# ---------------------------------------------------------------------------


def config_to_wire(config) -> dict:
    """A :class:`~repro.analysis.batch.BatchConfig` as a wire dict
    (only non-default fields, so old servers tolerate new clients)."""
    from ..analysis.batch import BatchConfig

    defaults = BatchConfig()
    wire = {}
    for name in (
        "n_args",
        "args",
        "platform_targets",
        "include_lint",
        "max_fork",
        "max_loop",
        "prune",
        "races",
        "timeout",
        "max_states",
    ):
        value = getattr(config, name)
        if value != getattr(defaults, name):
            wire[name] = list(value) if isinstance(value, tuple) else value
    return wire


def config_from_wire(data: Optional[dict]):
    """The inverse of :func:`config_to_wire`; unknown fields ignored."""
    from ..analysis.batch import BatchConfig

    data = data or {}
    kwargs = {}
    for name, value in data.items():
        if name not in BatchConfig.__dataclass_fields__:
            continue
        if name in ("args", "platform_targets") and value is not None:
            value = tuple(value)
        kwargs[name] = value
    return BatchConfig(**kwargs)
