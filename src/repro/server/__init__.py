"""The resident analysis server: ahead-of-time analysis at
just-in-time latency.

A long-lived daemon (:mod:`.daemon`, CLI ``repro-served``) keeps the
spec registry, the compiled-DFA caches, and the persistent result cache
warm in one process and answers analyze/batch requests over a Unix
socket speaking line-delimited JSON (:mod:`.protocol`).  The thin
client (:mod:`.client`, CLI ``repro-analyze --server``) falls back to
inline analysis when no daemon is running, and :mod:`.watch` keeps the
cache warm as files change on disk.

The crash-only layer: :mod:`.supervise` restarts a crashed serving
loop against the same warm cache and evicts stale socket files (after
proving nobody live owns them); the client carries bounded retries
with jittered backoff and a per-socket circuit breaker; and
:mod:`.chaos` provides the deterministic fault-injection substrate the
``tests/chaos`` suite drives all of it with.
"""

from .chaos import ChaosPlan, FaultSpec, use_chaos
from .client import (
    CircuitBreaker,
    RetryPolicy,
    ServerClient,
    ServerError,
    ServerUnavailable,
    reset_breakers,
    server_available,
)
from .daemon import AnalysisServer, serve
from .protocol import PROTOCOL_VERSION, default_socket_path
from .supervise import SocketInUse, Supervisor, ensure_socket_free, probe_socket
from .watch import Watcher

__all__ = [
    "AnalysisServer",
    "ChaosPlan",
    "CircuitBreaker",
    "FaultSpec",
    "PROTOCOL_VERSION",
    "RetryPolicy",
    "ServerClient",
    "ServerError",
    "ServerUnavailable",
    "SocketInUse",
    "Supervisor",
    "Watcher",
    "default_socket_path",
    "ensure_socket_free",
    "probe_socket",
    "reset_breakers",
    "serve",
    "server_available",
    "use_chaos",
]
