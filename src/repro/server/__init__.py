"""The resident analysis server: ahead-of-time analysis at
just-in-time latency.

A long-lived daemon (:mod:`.daemon`, CLI ``repro-served``) keeps the
spec registry, the compiled-DFA caches, and the persistent result cache
warm in one process and answers analyze/batch requests over a Unix
socket speaking line-delimited JSON (:mod:`.protocol`).  The thin
client (:mod:`.client`, CLI ``repro-analyze --server``) falls back to
inline analysis when no daemon is running, and :mod:`.watch` keeps the
cache warm as files change on disk.
"""

from .client import ServerClient, ServerError, ServerUnavailable, server_available
from .daemon import AnalysisServer, serve
from .protocol import PROTOCOL_VERSION, default_socket_path
from .watch import Watcher

__all__ = [
    "AnalysisServer",
    "PROTOCOL_VERSION",
    "ServerClient",
    "ServerError",
    "ServerUnavailable",
    "Watcher",
    "default_socket_path",
    "serve",
    "server_available",
]
