"""Deterministic chaos: seeded fault injection for the serving stack.

The serving layer's claims — no lost requests, no cached degraded
results, byte-identical recovery — are only credible if they survive
faults injected *systematically*, the way Smoosh feeds a shell odd
inputs and ShellFuzzer feeds it adversarial grammars.  This module is
the injection substrate: every fault decision is a pure function of
``(seed, injection point, payload, firing count)``, so a failing chaos
run replays exactly and CI can gate on a fixed seed.

Three delivery mechanisms, one plan:

- **In-process** — ``install(plan)`` (or the ``use_chaos`` context
  manager) arms an injector consulted by the daemon's injection points
  (``server.delay``) and by :class:`ChaosCache`.
- **Cross-process** — ``plan.to_env()`` serializes the plan into the
  ``REPRO_CHAOS`` environment variable; pool workers pick it up in
  :func:`repro.analysis.batch._pool_worker` (the ``worker.kill``
  point), so a worker can be killed mid-request without cooperation
  from the parent.
- **Wire-level** — :func:`send_raw` / :func:`open_raw` write arbitrary
  (truncated, corrupt, oversized) byte sequences straight onto the
  daemon's socket, below the client's framing.

Injection points in the tree:

=================  =========================================================
``worker.kill``    pool worker ``os._exit(137)`` before analysis (payload:
                   the script source)
``server.delay``   daemon sleeps ``delay_s`` before dispatching (payload:
                   the op name)
``cache.enospc``   cache write raises ``OSError(ENOSPC)`` (payload: path)
``cache.corrupt``  cache entry is torn after a successful write (payload:
                   path)
=================  =========================================================
"""

from __future__ import annotations

import errno
import json
import os
import random
import socket
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..analysis.cache import ResultCache
from ..obs import get_recorder

#: environment variable carrying a serialized plan into pool workers
ENV_VAR = "REPRO_CHAOS"


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, when, and how often it fires."""

    #: injection-point name (e.g. ``worker.kill``)
    point: str
    #: substring of the payload required for eligibility ("" = always)
    match: str = ""
    #: probability of firing when eligible (seeded, deterministic)
    rate: float = 1.0
    #: maximum firings per injector (None = unlimited)
    times: Optional[int] = None
    #: injected latency in seconds (used by delay points)
    delay_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "match": self.match,
            "rate": self.rate,
            "times": self.times,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            point=data["point"],
            match=data.get("match", ""),
            rate=data.get("rate", 1.0),
            times=data.get("times"),
            delay_s=data.get("delay_s", 0.0),
        )


class ChaosPlan:
    """A seed plus the set of armed faults; serializable into the
    environment so pool workers inherit the same schedule."""

    def __init__(self, seed: int = 0, faults: Sequence[FaultSpec] = ()):
        self.seed = seed
        self.faults: Dict[str, FaultSpec] = {spec.point: spec for spec in faults}

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [
                    spec.to_dict() for _, spec in sorted(self.faults.items())
                ],
            },
            separators=(",", ":"),
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        data = json.loads(text)
        return cls(
            seed=data.get("seed", 0),
            faults=[FaultSpec.from_dict(item) for item in data.get("faults", [])],
        )

    def to_env(self, env: Optional[dict] = None) -> dict:
        """``env`` (default: a copy of ``os.environ``) with the plan
        installed under :data:`ENV_VAR`."""
        merged = dict(os.environ if env is None else env)
        merged[ENV_VAR] = self.to_json()
        return merged


class ChaosInjector:
    """Evaluates fault decisions against a plan, deterministically.

    Each injection point gets its own :class:`random.Random` seeded
    from ``(plan seed, point name)``, so adding or reordering points
    never perturbs another point's schedule.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._rngs: Dict[str, random.Random] = {}
        self._fired: Dict[str, int] = {}
        self._calls: Dict[str, int] = {}
        self._lock = threading.Lock()

    def fires(self, point: str, payload: str = "") -> bool:
        """Whether the fault at ``point`` fires for this invocation."""
        spec = self.plan.faults.get(point)
        if spec is None:
            return False
        with self._lock:
            self._calls[point] = self._calls.get(point, 0) + 1
            if spec.match and spec.match not in payload:
                return False
            if spec.times is not None and self._fired.get(point, 0) >= spec.times:
                return False
            if spec.rate < 1.0:
                rng = self._rngs.get(point)
                if rng is None:
                    rng = self._rngs[point] = random.Random(
                        f"{self.plan.seed}:{point}"
                    )
                if rng.random() >= spec.rate:
                    return False
            self._fired[point] = self._fired.get(point, 0) + 1
        get_recorder().count(f"chaos.{point.replace('.', '_')}")
        return True

    def delay(self, point: str, payload: str = "") -> float:
        """The injected latency for ``point`` (0.0 when it doesn't fire)."""
        spec = self.plan.faults.get(point)
        if spec is None or spec.delay_s <= 0:
            return 0.0
        return spec.delay_s if self.fires(point, payload) else 0.0

    def fired(self, point: str) -> int:
        with self._lock:
            return self._fired.get(point, 0)

    def calls(self, point: str) -> int:
        with self._lock:
            return self._calls.get(point, 0)


# ---------------------------------------------------------------------------
# Installation: in-process (tests, daemon) and via the environment (workers)
# ---------------------------------------------------------------------------

_installed: Optional[ChaosInjector] = None
_env_cache: Tuple[Optional[str], Optional[ChaosInjector]] = (None, None)
_install_lock = threading.Lock()


def install(plan: ChaosPlan) -> ChaosInjector:
    """Arm an in-process injector (wins over the environment)."""
    global _installed
    injector = ChaosInjector(plan)
    with _install_lock:
        _installed = injector
    return injector


def uninstall() -> None:
    global _installed
    with _install_lock:
        _installed = None


@contextmanager
def use_chaos(plan: ChaosPlan):
    """Scoped in-process installation; disarms on exit."""
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()


def active() -> Optional[ChaosInjector]:
    """The armed injector: the in-process one if installed, else one
    parsed (and cached) from :data:`ENV_VAR`, else None."""
    global _env_cache
    if _installed is not None:
        return _installed
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    with _install_lock:
        cached_raw, cached = _env_cache
        if cached_raw == raw:
            return cached
        try:
            injector = ChaosInjector(ChaosPlan.from_json(raw))
        except (ValueError, KeyError, TypeError):
            injector = None
        _env_cache = (raw, injector)
        return injector


def chaos_point(point: str, payload: str = "") -> bool:
    """The module-level hook production code calls; False when chaos
    is not armed (the common case — one dict lookup + env get)."""
    injector = active()
    return injector.fires(point, payload) if injector is not None else False


def chaos_delay(point: str, payload: str = "") -> float:
    injector = active()
    return injector.delay(point, payload) if injector is not None else 0.0


# ---------------------------------------------------------------------------
# Fault-carrying collaborators
# ---------------------------------------------------------------------------


class ChaosCache(ResultCache):
    """A :class:`ResultCache` whose filesystem layer misbehaves on the
    injector's schedule: ``cache.enospc`` makes writes raise
    ``OSError(ENOSPC)`` (exercising the never-fatal store path), and
    ``cache.corrupt`` tears an entry *after* a successful write (a torn
    write / bit rot, exercising corrupt-entry-as-miss on read)."""

    def __init__(self, root: str, injector: ChaosInjector):
        super().__init__(root)
        self.injector = injector

    def _write(self, directory: str, path: str, payload: str) -> None:
        if self.injector.fires("cache.enospc", path):
            raise OSError(
                errno.ENOSPC, "No space left on device (chaos)", path
            )
        super()._write(directory, path, payload)
        if self.injector.fires("cache.corrupt", path):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload[: max(1, len(payload) // 3)])


# ---------------------------------------------------------------------------
# Wire-level fault helpers (for tests and the chaos suite)
# ---------------------------------------------------------------------------


def open_raw(socket_path: str, timeout: float = 5.0) -> socket.socket:
    """A connected raw socket to the daemon — below the client's
    framing, so tests can send truncated or corrupt byte sequences."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(socket_path)
    return sock


def send_raw(
    socket_path: str,
    payload: bytes,
    timeout: float = 5.0,
    shutdown_write: bool = True,
) -> bytes:
    """Send exactly ``payload`` and return every byte the daemon sends
    back until it closes the connection (or ``timeout`` passes with no
    further data).  ``shutdown_write`` half-closes the sending side so
    the daemon sees EOF after the payload."""
    sock = open_raw(socket_path, timeout=timeout)
    try:
        sock.sendall(payload)
        if shutdown_write:
            sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            try:
                chunk = sock.recv(1 << 16)
            except socket.timeout:
                break
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)
    finally:
        sock.close()


def response_lines(raw: bytes) -> list:
    """Parse a raw byte stream into response envelopes (one per line) —
    the exactly-one-envelope invariant is asserted over ``len()``."""
    return [
        json.loads(line)
        for line in raw.split(b"\n")
        if line.strip()
    ]
