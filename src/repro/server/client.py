"""Client side of the analysis-server protocol.

``repro-analyze --server`` goes through here: if a daemon is listening
on the socket, requests are served warm; if not (or the daemon dies
mid-conversation), :class:`ServerUnavailable` is raised and the CLI
falls back to inline analysis — the server is an accelerator, never a
requirement.  Responses traffic in the same serialized
``Report.to_dict`` forms the batch driver and cache use, so rendering a
server result is byte-identical to rendering an inline one.
"""

from __future__ import annotations

import os
import socket
from typing import List, Optional, Sequence

from ..analysis.batch import BatchConfig, BatchResult, FileResult
from ..analysis.report import Report
from . import protocol


class ServerUnavailable(Exception):
    """No daemon on the socket (or it vanished mid-request)."""


class ServerError(Exception):
    """The daemon answered, but with an error response."""


class ServerClient:
    """One connection to a running daemon; usable as a context manager.

    After every round trip the envelope's observability fields are kept
    on the client (``last_request_id``, ``last_elapsed_ms``,
    ``last_metrics``), so callers can attribute server-side cost to the
    exact request they just made without a second ``stats`` call.
    """

    def __init__(self, socket_path: Optional[str] = None, timeout: Optional[float] = 300.0):
        self.socket_path = socket_path or protocol.default_socket_path()
        self.timeout = timeout
        self.last_request_id: Optional[str] = None
        self.last_elapsed_ms: Optional[float] = None
        self.last_metrics: Optional[dict] = None
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection ---------------------------------------------------------

    def connect(self) -> "ServerClient":
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServerUnavailable(
                f"no analysis server at {self.socket_path}: {exc}"
            ) from exc
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServerClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- requests -----------------------------------------------------------

    def request(self, message: dict):
        """One request/response round trip; returns the ``result``."""
        self.connect()
        try:
            self._file.write(protocol.encode(message))
            self._file.flush()
            response = protocol.read_message(self._file)
        except (OSError, protocol.ProtocolError) as exc:
            self.close()
            raise ServerUnavailable(f"analysis server lost: {exc}") from exc
        if response is None:
            self.close()
            raise ServerUnavailable("analysis server closed the connection")
        self.last_request_id = response.get("request_id")
        self.last_elapsed_ms = response.get("elapsed_ms")
        self.last_metrics = response.get("metrics")
        if not response.get("ok"):
            raise ServerError(response.get("error", "unknown server error"))
        return response.get("result")

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def metrics_text(self) -> str:
        """The daemon's totals in Prometheus text exposition format."""
        return self.request({"op": "metrics"})["text"]

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def analyze_source(self, source: str, config: Optional[BatchConfig] = None) -> Report:
        """Analyze one script's text; returns the reconstructed Report."""
        result = self.request(
            {
                "op": "analyze",
                "source": source,
                "config": protocol.config_to_wire(config or BatchConfig()),
            }
        )
        return Report.from_dict(result["report"])

    def optimize_source(
        self, source: str, config: Optional[BatchConfig] = None
    ) -> dict:
        """One script's optimization plan (the serialized plan dict,
        ready for ``OptimizePlan.from_dict``); byte-identical to an
        inline ``repro-optimize`` run over the same source + config."""
        result = self.request(
            {
                "op": "optimize",
                "source": source,
                "config": protocol.config_to_wire(config or BatchConfig()),
            }
        )
        return result["plan"]

    def batch(
        self, inputs: Sequence[str], config: Optional[BatchConfig] = None
    ) -> BatchResult:
        """Batch-analyze files/dirs/globs; returns a BatchResult exactly
        shaped like :func:`~repro.analysis.batch.run_batch`'s.

        Inputs are absolutized first (the daemon resolves paths in *its*
        working directory, which need not be the client's); when every
        input was relative, the returned paths are mapped back to
        cwd-relative form so the rendered output is byte-identical to
        the inline path.
        """
        result = self.request(
            {
                "op": "batch",
                "inputs": [os.path.abspath(item) for item in inputs],
                "config": protocol.config_to_wire(config or BatchConfig()),
            }
        )
        cwd = os.getcwd()
        relativize = all(not os.path.isabs(item) for item in inputs)

        def local_path(path: str) -> str:
            return os.path.relpath(path, cwd) if relativize else path

        batch = BatchResult(
            results=[
                FileResult(
                    path=local_path(entry["path"]),
                    report=Report.from_dict(entry["report"]),
                    cached=entry.get("cached", False),
                    seconds=entry.get("seconds", 0.0),
                    quarantined=entry.get("quarantined", False),
                )
                for entry in result.get("results", [])
            ],
        )
        batch.hits = result.get("hits", 0)
        batch.misses = result.get("misses", 0)
        return batch


def server_available(socket_path: Optional[str] = None) -> bool:
    """True when a daemon answers a ping on the socket."""
    try:
        with ServerClient(socket_path, timeout=2.0) as client:
            client.ping()
            return True
    except (ServerUnavailable, ServerError):
        return False
