"""Client side of the analysis-server protocol.

``repro-analyze --server`` goes through here: if a daemon is listening
on the socket, requests are served warm; if not (or the daemon dies
mid-conversation), :class:`ServerUnavailable` is raised and the CLI
falls back to inline analysis — the server is an accelerator, never a
requirement.  Responses traffic in the same serialized
``Report.to_dict`` forms the batch driver and cache use, so rendering a
server result is byte-identical to rendering an inline one.

The failure-handling layer (the crash-only counterpart to the daemon's
:mod:`.supervise`):

- **Separate connect/read timeouts.**  Connecting to a local Unix
  socket either succeeds instantly or never will, so the connect
  timeout is short (:data:`DEFAULT_CONNECT_TIMEOUT`); reading an answer
  can legitimately take as long as the analysis
  (:data:`DEFAULT_READ_TIMEOUT`), and pings get their own short
  deadline so liveness checks never hang behind the analyze budget.
- **Bounded retries with jittered exponential backoff.**  Only
  *retryable* failures are retried: a daemon that died mid-conversation
  (it may be restarting under its supervisor).  A connect refusal is
  not retried — nobody is listening, and the caller's inline fallback
  is faster than three sleeps.  ``shutdown`` is never retried (the
  daemon going away is the success condition).
- **Circuit breaker.**  After ``threshold`` consecutive failures the
  per-socket breaker opens and requests fail fast to the inline
  fallback without touching the socket; after ``cooldown`` seconds it
  half-opens and lets one probe through.  Breaker transitions and fast
  failures are counted under ``server.client.*``.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.batch import BatchConfig, BatchResult, FileResult
from ..analysis.report import Report
from ..analysis.resilience import jittered_backoff
from ..obs import get_recorder
from . import protocol

#: connecting to a local Unix socket either works immediately or never
DEFAULT_CONNECT_TIMEOUT = 5.0

#: reading an analysis answer may take as long as the server-side
#: budget allows (the daemon's cap is 30s; leave headroom for batches)
DEFAULT_READ_TIMEOUT = 60.0

#: liveness probes must never wait behind an analysis budget
DEFAULT_PING_TIMEOUT = 5.0


class ServerUnavailable(Exception):
    """No daemon on the socket (or it vanished mid-request).

    ``retryable`` distinguishes a daemon that *died mid-conversation*
    (worth retrying — its supervisor may be restarting it) from a
    socket nobody is listening on (retrying cannot help; fall back
    inline immediately).
    """

    def __init__(self, message: str, retryable: bool = False):
        super().__init__(message)
        self.retryable = retryable


class ServerError(Exception):
    """The daemon answered, but with an error response."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a retryable failure, and how to wait."""

    retries: int = 2
    backoff_base: float = 0.05
    multiplier: float = 2.0
    cap: float = 1.0
    jitter: float = 0.25

    def delay(self, attempt: int, rng=None) -> float:
        return jittered_backoff(
            attempt,
            base=self.backoff_base,
            multiplier=self.multiplier,
            cap=self.cap,
            jitter=self.jitter,
            rng=rng,
        )


class CircuitBreaker:
    """Per-socket failure gate: closed -> open -> half-open -> closed.

    ``threshold`` consecutive failures open the breaker; while open,
    :meth:`allow` returns False (callers fail fast to inline analysis)
    until ``cooldown`` seconds pass, when the breaker half-opens and
    lets exactly one probe through.  The probe's outcome closes or
    re-opens it.  Thread-safe; inject ``clock`` for deterministic
    tests.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock=time.monotonic,
    ):
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.state = "closed"
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Whether a request may touch the socket right now."""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if self.clock() - self.opened_at >= self.cooldown:
                    self.state = "half-open"
                    get_recorder().count("server.client.breaker_halfopen")
                    return True
                get_recorder().count("server.client.breaker_fastfail")
                return False
            # half-open: one probe is already in flight; fail fast
            get_recorder().count("server.client.breaker_fastfail")
            return False

    def record_success(self) -> None:
        with self._lock:
            self.state = "closed"
            self.failures = 0
            self.opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self.state == "half-open" or self.failures >= self.threshold:
                if self.state != "open":
                    get_recorder().count("server.client.breaker_open")
                self.state = "open"
                self.opened_at = self.clock()


#: one breaker per socket path, shared by every client in the process —
#: a CLI that falls back inline once should keep failing fast for the
#: breaker's cooldown instead of re-probing a dead daemon per file
_breakers: Dict[str, CircuitBreaker] = {}
_breakers_lock = threading.Lock()


def breaker_for(socket_path: str) -> CircuitBreaker:
    with _breakers_lock:
        breaker = _breakers.get(socket_path)
        if breaker is None:
            breaker = _breakers[socket_path] = CircuitBreaker()
        return breaker


def reset_breakers() -> None:
    """Forget all breaker state (tests)."""
    with _breakers_lock:
        _breakers.clear()


class ServerClient:
    """One connection to a running daemon; usable as a context manager.

    After every round trip the envelope's observability fields are kept
    on the client (``last_request_id``, ``last_elapsed_ms``,
    ``last_metrics``), so callers can attribute server-side cost to the
    exact request they just made without a second ``stats`` call.

    ``timeout`` is the legacy single-knob form and sets both the
    connect and read timeouts; prefer the split ``connect_timeout`` /
    ``read_timeout``.  ``retry`` bounds retries of *retryable*
    failures; ``breaker`` defaults to the process-wide per-socket
    breaker (pass your own instance to isolate).  ``rng`` and ``sleep``
    exist for deterministic tests.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        timeout: Optional[float] = None,
        *,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        rng=None,
        sleep=time.sleep,
    ):
        self.socket_path = socket_path or protocol.default_socket_path()
        if timeout is not None:
            connect_timeout = timeout if connect_timeout is None else connect_timeout
            read_timeout = timeout if read_timeout is None else read_timeout
        self.connect_timeout = (
            DEFAULT_CONNECT_TIMEOUT if connect_timeout is None else connect_timeout
        )
        self.read_timeout = (
            DEFAULT_READ_TIMEOUT if read_timeout is None else read_timeout
        )
        self.retry = retry or RetryPolicy()
        self.breaker = breaker if breaker is not None else breaker_for(self.socket_path)
        self.rng = rng
        self.sleep = sleep
        self.last_request_id: Optional[str] = None
        self.last_elapsed_ms: Optional[float] = None
        self.last_metrics: Optional[dict] = None
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection ---------------------------------------------------------

    def connect(self) -> "ServerClient":
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            # nobody listening: not retryable — the caller's inline
            # fallback beats waiting for a daemon that is not there
            raise ServerUnavailable(
                f"no analysis server at {self.socket_path}: {exc}"
            ) from exc
        sock.settimeout(self.read_timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServerClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- requests -----------------------------------------------------------

    def request(self, message: dict, read_timeout: Optional[float] = None):
        """One request (with bounded retries); returns the ``result``.

        Retries only failures marked retryable — the daemon died after
        we reached it (its supervisor may be restarting it) — with
        jittered exponential backoff between attempts, gated by the
        circuit breaker.  Connect refusals, server-side errors
        (:class:`ServerError`), and ``shutdown`` requests are never
        retried.
        """
        retries = 0 if message.get("op") == "shutdown" else self.retry.retries
        attempt = 0
        while True:
            if not self.breaker.allow():
                raise ServerUnavailable(
                    f"circuit breaker open for {self.socket_path}: "
                    f"{self.breaker.failures} consecutive failure(s)"
                )
            try:
                result = self._roundtrip(message, read_timeout=read_timeout)
            except ServerUnavailable as exc:
                self.breaker.record_failure()
                if not exc.retryable or attempt >= retries:
                    get_recorder().count("server.client.failures")
                    raise
                get_recorder().count("server.client.retries")
                self.sleep(self.retry.delay(attempt, rng=self.rng))
                attempt += 1
                continue
            except ServerError:
                # the daemon is alive and answering; its "no" is final
                self.breaker.record_success()
                raise
            self.breaker.record_success()
            return result

    def _roundtrip(self, message: dict, read_timeout: Optional[float] = None):
        """One attempt: write the frame, read one envelope."""
        self.connect()
        if read_timeout is not None:
            self._sock.settimeout(read_timeout)
        try:
            self._file.write(protocol.encode(message))
            self._file.flush()
            response = protocol.read_message(self._file)
        except (OSError, protocol.ProtocolError) as exc:
            self.close()
            # we reached the daemon and it vanished mid-conversation:
            # retryable — a supervisor may already be restarting it
            raise ServerUnavailable(
                f"analysis server lost: {exc}", retryable=True
            ) from exc
        finally:
            if read_timeout is not None and self._sock is not None:
                self._sock.settimeout(self.read_timeout)
        if response is None:
            self.close()
            raise ServerUnavailable(
                "analysis server closed the connection", retryable=True
            )
        self.last_request_id = response.get("request_id")
        self.last_elapsed_ms = response.get("elapsed_ms")
        self.last_metrics = response.get("metrics")
        if not response.get("ok"):
            raise ServerError(response.get("error", "unknown server error"))
        return response.get("result")

    def ping(self, timeout: float = DEFAULT_PING_TIMEOUT) -> dict:
        """Liveness probe under its own short deadline — a wedged
        daemon must fail the probe, not hang it."""
        return self.request({"op": "ping"}, read_timeout=timeout)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def metrics_text(self) -> str:
        """The daemon's totals in Prometheus text exposition format."""
        return self.request({"op": "metrics"})["text"]

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def analyze_source(self, source: str, config: Optional[BatchConfig] = None) -> Report:
        """Analyze one script's text; returns the reconstructed Report."""
        result = self.request(
            {
                "op": "analyze",
                "source": source,
                "config": protocol.config_to_wire(config or BatchConfig()),
            }
        )
        return Report.from_dict(result["report"])

    def optimize_source(
        self, source: str, config: Optional[BatchConfig] = None
    ) -> dict:
        """One script's optimization plan (the serialized plan dict,
        ready for ``OptimizePlan.from_dict``); byte-identical to an
        inline ``repro-optimize`` run over the same source + config."""
        result = self.request(
            {
                "op": "optimize",
                "source": source,
                "config": protocol.config_to_wire(config or BatchConfig()),
            }
        )
        return result["plan"]

    def batch(
        self, inputs: Sequence[str], config: Optional[BatchConfig] = None
    ) -> BatchResult:
        """Batch-analyze files/dirs/globs; returns a BatchResult exactly
        shaped like :func:`~repro.analysis.batch.run_batch`'s.

        Inputs are absolutized first (the daemon resolves paths in *its*
        working directory, which need not be the client's); when every
        input was relative, the returned paths are mapped back to
        cwd-relative form so the rendered output is byte-identical to
        the inline path.
        """
        result = self.request(
            {
                "op": "batch",
                "inputs": [os.path.abspath(item) for item in inputs],
                "config": protocol.config_to_wire(config or BatchConfig()),
            }
        )
        cwd = os.getcwd()
        relativize = all(not os.path.isabs(item) for item in inputs)

        def local_path(path: str) -> str:
            return os.path.relpath(path, cwd) if relativize else path

        batch = BatchResult(
            results=[
                FileResult(
                    path=local_path(entry["path"]),
                    report=Report.from_dict(entry["report"]),
                    cached=entry.get("cached", False),
                    seconds=entry.get("seconds", 0.0),
                    quarantined=entry.get("quarantined", False),
                )
                for entry in result.get("results", [])
            ],
        )
        batch.hits = result.get("hits", 0)
        batch.misses = result.get("misses", 0)
        return batch


def server_available(socket_path: Optional[str] = None) -> bool:
    """True when a daemon answers a ping on the socket."""
    try:
        with ServerClient(socket_path, timeout=2.0) as client:
            client.ping(timeout=2.0)
            return True
    except (ServerUnavailable, ServerError):
        return False
