"""Execution-path visualisation (paper §5, "Comprehension").

"An interactive program visualization system, identifying possible
behaviors and allowing users to explore the impact of different
environments or assumption violations, could make all the difference."

This module renders the symbolic execution tree of a script as text:
one branch per explored world, showing the path conditions (the notes
accumulated at each fork), the final status, observable variable values,
file-system effects, and any diagnostics raised on that path — readable
without programming-languages background.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..checkers import default_checkers
from ..fs import FsOp
from ..symex import Engine, ExecResult, SymState


@dataclass
class PathView:
    """A digest of one execution world."""

    index: int
    conditions: List[str]
    status: Optional[int]
    variables: Dict[str, str]
    effects: List[str]
    findings: List[str]

    def render(self, indent: str = "  ") -> str:
        lines = [f"path #{self.index}" + (f" (exit {self.status})" if self.status is not None else " (exit ?)")]
        for condition in self.conditions:
            lines.append(f"{indent}when {condition}")
        if self.variables:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.variables.items()))
            lines.append(f"{indent}vars: {rendered}")
        for effect in self.effects:
            lines.append(f"{indent}does: {effect}")
        for finding in self.findings:
            lines.append(f"{indent}⚠ {finding}")
        return "\n".join(lines)


def explore(source: str, n_args: int = 0, max_paths: int = 16) -> List[PathView]:
    """All explored execution worlds of a script."""
    engine = Engine(checkers=default_checkers())
    result = engine.run_script(source, n_args=n_args)
    return views_of(result, max_paths=max_paths)


def views_of(result: ExecResult, max_paths: int = 16) -> List[PathView]:
    views = []
    for index, state in enumerate(result.states[:max_paths]):
        views.append(_view(index, state))
    return views


def _view(index: int, state: SymState) -> PathView:
    variables = {}
    for name, value in state.env.items():
        variables[name] = value.describe(state.store)
    effects = []
    for event in state.fs.log:
        if event.op in (FsOp.DELETE, FsOp.CREATE, FsOp.WRITE):
            effects.append(str(event))
    findings = [d.render() for d in state.diagnostics]
    return PathView(
        index=index,
        conditions=list(state.notes),
        status=state.status,
        variables=variables,
        effects=effects,
        findings=findings,
    )


def render_tree(source: str, n_args: int = 0, max_paths: int = 16) -> str:
    """A full textual exploration of a script's behaviours."""
    views = explore(source, n_args=n_args, max_paths=max_paths)
    header = f"{len(views)} execution world(s):"
    body = "\n\n".join(view.render() for view in views)
    return header + "\n\n" + body


def behaviour_summary(source: str, n_args: int = 0) -> str:
    """A one-screen digest: statuses, effect classes, finding counts —
    the 'what can this script do to my machine' view."""
    engine = Engine(checkers=default_checkers())
    result = engine.run_script(source, n_args=n_args)

    statuses = sorted(
        {"?" if s.status is None else str(s.status) for s in result.states}
    )
    deletes, creates, writes = set(), set(), set()
    for state in result.states:
        for event in state.fs.log:
            if event.op is FsOp.DELETE:
                deletes.add(event.path)
            elif event.op is FsOp.CREATE:
                creates.add(event.path)
            elif event.op is FsOp.WRITE:
                writes.add(event.path)

    lines = [
        f"worlds explored : {len(result.states)}",
        f"possible exits  : {', '.join(statuses) or 'none'}",
    ]
    if deletes:
        lines.append(f"may delete      : {', '.join(sorted(deletes))}")
    if creates:
        lines.append(f"may create      : {', '.join(sorted(creates))}")
    if writes:
        lines.append(f"may write       : {', '.join(sorted(writes))}")
    errors = [d for d in result.diagnostics if d.severity.value == "error"]
    warnings = [d for d in result.diagnostics if d.severity.value == "warning"]
    lines.append(f"findings        : {len(errors)} error(s), {len(warnings)} warning(s)")
    for diagnostic in errors + warnings:
        lines.append(f"   {diagnostic.render()}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# dependence-graph DOT export (consumed by `repro-optimize --dot`)
# ---------------------------------------------------------------------------


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def dependency_dot(
    commands: Sequence[str],
    dependencies: Sequence[dict],
    groups: Optional[Sequence[Sequence[int]]] = None,
    title: str = "repro-optimize",
) -> str:
    """A Graphviz digraph of the command dependence graph.

    ``commands`` are the node labels in index order; ``dependencies``
    are ``{"src", "dst", "kind", "via"}`` edge dicts (the plan's own
    serialization); ``groups`` are index sets to highlight as verified
    ``&``-groups.  Works directly off a deserialized ``plan.json``.
    """
    grouped: Dict[int, int] = {}
    for group_index, group in enumerate(groups or ()):
        for member in group:
            grouped[member] = group_index
    lines = [
        f'digraph "{_dot_escape(title)}" {{',
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace", fontsize=10];',
    ]
    for index, text in enumerate(commands):
        label = _dot_escape(f"[{index}] {text}")
        if index in grouped:
            lines.append(
                f'  c{index} [label="{label}", style=filled, '
                f'fillcolor=palegreen, '
                f'tooltip="&-group {grouped[index]}"];'
            )
        else:
            lines.append(f'  c{index} [label="{label}"];')
    for dep in dependencies:
        kind = dep.get("kind", "?")
        via = _dot_escape(f"{kind}: {dep.get('via', '')}")
        style = ' style=dashed' if kind == "external" else ""
        lines.append(
            f'  c{dep.get("src")} -> c{dep.get("dst")} '
            f'[label="{via}", fontsize=9{style}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
