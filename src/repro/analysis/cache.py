"""A content-addressed on-disk cache for analysis reports.

Reports are keyed by ``sha256(source)`` combined with a fingerprint of
the analyzer configuration and a version salt covering the spec corpus,
the rule set, and the report schema — so editing a script, changing an
analysis flag, or upgrading the analyzer each invalidate exactly the
entries they affect, and nothing else.

Entries are JSON files (one per report, sharded by key prefix) written
atomically; a corrupt or unreadable entry is indistinguishable from a
miss.  The cache is safe to share between concurrent processes: writers
never modify files in place, and readers tolerate partial state.

The cache is an accelerator, never a dependency: a write that fails
(disk full, read-only directory, yanked permissions) is swallowed with
a ``batch.cache.write_errors`` count and a once-per-process warning,
and the analysis continues uncached; a corrupt entry reads as a miss
and bumps ``batch.cache.corrupt``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from typing import Optional

from .. import __version__
from ..obs import get_recorder
from .report import Report

#: bump to invalidate every cache entry produced by older analyzers
#: (e.g. when engine semantics or checker rules change without a
#: package-version bump)
ANALYSIS_SALT = "analysis-v2"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/analysis``,
    else ``~/.cache/repro/analysis``."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "analysis")


def version_salt() -> str:
    """The part of every key that ties entries to this analyzer build:
    package version, report schema, rule salt, and the spec corpus (so
    adding or changing a command spec invalidates prior results)."""
    from ..specs import default_registry

    spec_names = ",".join(default_registry().names())
    spec_digest = hashlib.sha256(spec_names.encode("utf-8")).hexdigest()[:16]
    return (
        f"{__version__}/{ANALYSIS_SALT}/schema{Report.SCHEMA_VERSION}"
        f"/specs:{spec_digest}"
    )


def cache_key(source: str, config_fingerprint: str) -> str:
    """The content address of one (script, configuration) pair."""
    hasher = hashlib.sha256()
    hasher.update(source.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(config_fingerprint.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(version_salt().encode("utf-8"))
    return hasher.hexdigest()


#: write-failure warning fires once per process (the daemon must not
#: spam its stderr once the disk fills)
_write_warned = False


def reset_write_warning() -> None:
    """Re-arm the once-per-process write-failure warning (tests)."""
    global _write_warned
    _write_warned = False


class ResultCache:
    """Load/store serialized reports under a root directory."""

    def __init__(self, root: Optional[str] = None):
        self.root = root if root is not None else default_cache_dir()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str, schema: Optional[int] = None) -> Optional[dict]:
        """The stored dict, or None on a miss (including corrupt or
        partially-written entries).  ``schema`` is the expected payload
        schema version — the report schema by default; other payload
        kinds (e.g. optimization plans) pass their own so a stale or
        foreign entry reads as a miss."""
        expected = schema if schema is not None else Report.SCHEMA_VERSION
        try:
            raw = self._read(self.path_for(key))
        except OSError:
            return None
        try:
            data = json.loads(raw)
        except ValueError:
            get_recorder().count("batch.cache.corrupt")
            return None
        if not isinstance(data, dict):
            get_recorder().count("batch.cache.corrupt")
            return None
        if data.get("schema") != expected:
            # fingerprint-equal but written by a different schema build
            # (partial upgrade: old daemon + new CLI sharing one cache
            # dir).  ``from_dict`` on such a payload could raise or —
            # worse — silently misread fields, so it must read as a
            # miss, and as a *visible* one.
            get_recorder().count("batch.cache.schema_miss")
            return None
        return data

    def put(self, key: str, data: dict) -> bool:
        """Atomically store a report dict; never fatal — a read-only or
        full disk degrades the cache to a pass-through with a
        ``batch.cache.write_errors`` count and one warning per
        process."""
        global _write_warned
        path = self.path_for(key)
        try:
            self._write(
                os.path.dirname(path),
                path,
                json.dumps(data, separators=(",", ":")),
            )
        except OSError as exc:
            get_recorder().count("batch.cache.write_errors")
            if not _write_warned:
                _write_warned = True
                warnings.warn(
                    f"result cache write failed ({exc}); continuing "
                    f"uncached (further write failures are counted under "
                    f"batch.cache.write_errors, not repeated)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return False
        return True

    # -- filesystem layer (overridable: chaos injection wraps these) --------

    def _read(self, path: str) -> str:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    def _write(self, directory: str, path: str, payload: str) -> None:
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


class FragmentCache:
    """In-memory LRU cache of per-fragment symex summaries.

    Unlike :class:`ResultCache`, fragment summaries hold live engine
    objects (constraint regexes, fs node records, AST-independent
    deltas) that are cheap to keep but expensive to serialize, so this
    layer is memory-only by design: it accelerates *re*-analysis within
    one daemon lifetime, while the on-disk result cache keeps covering
    whole-file identity across processes.  Thread-safe — watch threads
    and request handlers may share one instance.

    Keys are opaque hashable tuples (built by
    :class:`repro.analysis.incremental.FragmentMemo`); each entry is
    additionally tagged with its fragment's source digest so the
    dependence-graph invalidation path can evict every summary of a
    fragment in one call regardless of entry fingerprints.
    """

    def __init__(self, max_entries: int = 4096):
        from collections import OrderedDict
        import threading

        self.max_entries = max_entries
        self._entries: "OrderedDict" = OrderedDict()
        self._by_digest: dict = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry[0]

    def put(self, key, summary, digest: str = "") -> None:
        with self._lock:
            if key in self._entries:
                self._forget_key(key)
            self._entries[key] = (summary, digest)
            if digest:
                self._by_digest.setdefault(digest, set()).add(key)
            while len(self._entries) > self.max_entries:
                oldest, _ = next(iter(self._entries.items()))
                self._forget_key(oldest)
                get_recorder().count("incremental.fragments.evicted")

    def invalidate_digest(self, digest: str) -> int:
        """Evict every summary of the fragment with this source digest;
        returns how many entries were dropped."""
        with self._lock:
            keys = list(self._by_digest.get(digest, ()))
            for key in keys:
                self._forget_key(key)
            return len(keys)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_digest.clear()

    def _forget_key(self, key) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        digest = entry[1]
        tagged = self._by_digest.get(digest)
        if tagged is not None:
            tagged.discard(key)
            if not tagged:
                del self._by_digest[digest]
