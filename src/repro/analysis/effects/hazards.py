"""File-system race detection over an effect graph.

Two accesses conflict when they are *interleavable* (different tasks,
and one falls inside the other's background region window), at least one
is a write, and they *may alias* (same abstract fs node, or intersecting
symbolic path languages).  Four diagnostic classes:

- ``race-write-write``: two interleavable writes to one file
- ``race-read-write``: a read interleavable with a write
- ``race-missing-wait``: the foreground reads a file a background job
  writes, and the job is never ``wait``-ed for
- ``race-toctou``: a check (stat) and a use by different foreground
  commands straddle a window in which a background job may rewrite the
  checked file

All are "may" findings: the analysis cannot prove the interleaving
happens, only that no ordering in the script prevents it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ...fs import FsOp
from .graph import Access, EffectGraph, display_path

#: cap on reported hazards per explored path; belt-and-braces against
#: pathological scripts with hundreds of interleavable accesses
MAX_HAZARDS_PER_PATH = 64


@dataclass(frozen=True)
class Hazard:
    code: str
    message: str
    pos: Optional[object]
    related: Tuple[str, ...]
    path: str
    witness: str = ""

    def key(self) -> Tuple:
        return (self.code, self.path, frozenset(self.related))


def _describe(access: Access) -> str:
    if access.origin is not None:
        return access.origin.describe()
    return "<unknown command>"


def _anchor(a: Access, b: Access) -> Access:
    """The access to anchor the diagnostic at: prefer the foreground
    one (that is the line the reader will edit), then the later one."""
    for access in (b, a):
        if access.task == 0 and access.origin is not None and access.origin.pos:
            return access
    return b if b.origin is not None else a


def find_hazards(graph: EffectGraph) -> List[Hazard]:
    """All race-family hazards of one explored path."""
    if not graph.windows:
        return []
    hazards: List[Hazard] = []
    seen: Set[Tuple] = set()

    def add(hazard: Hazard) -> None:
        if hazard.key() not in seen and len(hazards) < MAX_HAZARDS_PER_PATH:
            seen.add(hazard.key())
            hazards.append(hazard)

    material = [
        a for a in graph.accesses
        if a.is_write or a.is_read or a.op is FsOp.STAT
    ]

    for i, a in enumerate(material):
        for b in material[i + 1:]:
            if not (a.is_write or b.is_write):
                continue
            if not graph.interleavable(a, b):
                continue
            if a.op is FsOp.STAT or b.op is FsOp.STAT:
                continue  # metadata checks feed the TOCTOU rule instead
            if graph.may_alias(a, b) is None:
                continue
            shown = graph.display(b.path if b.task == 0 else a.path)
            anchor = _anchor(a, b)
            related = (_describe(a), _describe(b))
            if a.is_write and b.is_write:
                add(Hazard(
                    code="race-write-write",
                    message=(
                        f"{_describe(a)} and {_describe(b)} may run "
                        f"concurrently and both write `{shown}`; the final "
                        "contents depend on scheduling"
                    ),
                    pos=anchor.origin.pos if anchor.origin else None,
                    related=related,
                    path=shown,
                ))
            else:
                reader, writer = (a, b) if b.is_write else (b, a)
                add(Hazard(
                    code="race-read-write",
                    message=(
                        f"{_describe(reader)} reads `{shown}` while "
                        f"{_describe(writer)} may still be "
                        f"{_op_verb(writer.op)} it in the background"
                    ),
                    pos=anchor.origin.pos if anchor.origin else None,
                    related=related,
                    path=shown,
                ))
                _check_missing_wait(graph, reader, writer, shown, add)

    _find_toctou(graph, material, add)
    return hazards


def _op_verb(op: FsOp) -> str:
    return {
        FsOp.WRITE: "writing",
        FsOp.CREATE: "creating",
        FsOp.DELETE: "deleting",
    }.get(op, "modifying")


def _check_missing_wait(graph, reader: Access, writer: Access, shown, add) -> None:
    """The reader runs in the foreground after a background writer whose
    region is never joined: a `wait` in between would fix the ordering."""
    if reader.task != 0 or writer.task == 0:
        return
    window = graph.windows.get(writer.task)
    if window is None or window.close_idx is not None:
        return
    if reader.index <= window.open_idx:
        return
    add(Hazard(
        code="race-missing-wait",
        message=(
            f"{_describe(reader)} reads `{shown}` produced by background "
            f"job {_describe(writer)}, but no `wait` joins the job first; "
            "the file may be missing or incomplete"
        ),
        pos=reader.origin.pos if reader.origin else None,
        related=(_describe(writer), _describe(reader)),
        path=shown,
        witness="insert `wait` before the read",
    ))


def _find_toctou(graph: EffectGraph, material: List[Access], add) -> None:
    """Check-then-use straddling a background writer's window."""
    checks = [a for a in material if a.op is FsOp.STAT and a.task == 0]
    uses = [a for a in material if a.task == 0 and (a.is_read or a.is_write)]
    bg_writes = [a for a in material if a.task != 0 and a.is_write]
    if not checks or not uses or not bg_writes:
        return
    for check in checks:
        for use in uses:
            if use.index <= check.index:
                continue
            if check.origin is not None and use.origin is not None \
                    and check.origin == use.origin:
                continue  # a command's own stat+read is not a check/use pair
            if graph.may_alias(check, use) is None:
                continue
            for writer in bg_writes:
                window = graph.windows.get(writer.task)
                if window is None:
                    continue
                if not window.overlaps(check.index, use.index):
                    continue
                if graph.may_alias(check, writer) is None:
                    continue
                shown = graph.display(check.path)
                add(Hazard(
                    code="race-toctou",
                    message=(
                        f"{_describe(check)} checks `{shown}` and "
                        f"{_describe(use)} then uses it, but background job "
                        f"{_describe(writer)} may modify it between the "
                        "check and the use"
                    ),
                    pos=use.origin.pos if use.origin else None,
                    related=(
                        _describe(check), _describe(use), _describe(writer)
                    ),
                    path=shown,
                ))
                break
