"""Per-path effect graphs over the file-system event trace.

One :class:`EffectGraph` summarises a single explored path (one final
``SymState``): every file-system access, attributed to the command that
caused it (its :class:`~repro.fs.Origin`) and to the *task* that ran it
(0 = the foreground script, otherwise the region id of a background
job).  Region lifetimes come from the ``BG_OPEN``/``BG_CLOSE`` markers
the engine writes into the trace: a background job's effects may
interleave with any other-task event whose log index falls inside the
job's open window; ``wait`` closes the window, restoring ordering.

Nodes aggregate the accesses of one command in one task; edges record
the ordering constraints the script *does* establish — program order
within a task (``seq``), launching a job (``fork``), and joining it
(``join``).  Everything not ordered by an edge chain is interleavable,
which is what the hazard detection in :mod:`.hazards` exploits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...fs import FsEvent, FsOp, Origin
from ...rlang import Regex
from ...symstr import ConstraintStore

#: operations that mutate the file system
WRITE_OPS = frozenset({FsOp.WRITE, FsOp.CREATE, FsOp.DELETE})
#: operations that observe file contents (STAT is kept separate: it only
#: observes metadata, and matters for check-then-use reasoning)
READ_OPS = frozenset({FsOp.READ, FsOp.LIST})

_SYM_SEGMENT = re.compile(r"^<v(-?\d+)>$")
_SYM_ANY = re.compile(r"<v(-?\d+)>")


@dataclass(frozen=True)
class Window:
    """The open interval of a background region in the event trace."""

    region: int
    label: str
    origin: Optional[Origin]
    open_idx: int
    close_idx: Optional[int] = None  # None = never joined (open at exit)

    def covers(self, index: int) -> bool:
        if index < self.open_idx:
            return False
        return self.close_idx is None or index < self.close_idx

    def overlaps(self, lo: int, hi: int) -> bool:
        """Does the window intersect the index interval [lo, hi]?"""
        if hi < self.open_idx:
            return False
        return self.close_idx is None or lo < self.close_idx


@dataclass(frozen=True)
class Access:
    """One attributed file-system access."""

    index: int
    op: FsOp
    path: str
    node: Optional[int]
    origin: Optional[Origin]
    task: int

    @property
    def is_write(self) -> bool:
        return self.op in WRITE_OPS

    @property
    def is_read(self) -> bool:
        return self.op in READ_OPS

    def describe(self) -> str:
        who = self.origin.describe() if self.origin else "<unknown command>"
        return f"{who} {self.op.name.lower()}s {display_path(self.path)}"


@dataclass
class EffectNode:
    """All accesses of one command within one task."""

    origin: Optional[Origin]
    task: int
    accesses: List[Access] = field(default_factory=list)
    first_index: int = 0
    last_index: int = 0

    @property
    def reads(self) -> Set[str]:
        return {a.path for a in self.accesses if a.is_read}

    @property
    def writes(self) -> Set[str]:
        return {a.path for a in self.accesses if a.op is FsOp.WRITE}

    @property
    def creates(self) -> Set[str]:
        return {a.path for a in self.accesses if a.op is FsOp.CREATE}

    @property
    def deletes(self) -> Set[str]:
        return {a.path for a in self.accesses if a.op is FsOp.DELETE}

    def label(self) -> str:
        return self.origin.label if self.origin else "?"


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    kind: str  # "seq" | "fork" | "join"


class EffectGraph:
    """The effect summary of one explored path."""

    def __init__(
        self,
        accesses: List[Access],
        windows: Dict[int, Window],
        nodes: List[EffectNode],
        edges: List[Edge],
        store: Optional[ConstraintStore] = None,
    ):
        self.accesses = accesses
        self.windows = windows
        self.nodes = nodes
        self.edges = edges
        self.store = store
        self._languages: Dict[str, Regex] = {}
        # Canonical display names for symbolic segments.  Raw trace paths
        # render variables as ``<vN>`` where N comes from a process-global
        # counter — deterministic *identity*, but not a deterministic
        # *rendering*: the same script analyzed twice (or before/after a
        # semantics-preserving rewrite) shows different numbers.  Number
        # the variables per graph in trace order instead, preferring the
        # variable's source label (``$1``, ``$x``) when it has one.
        self._canonical: Dict[int, str] = {}
        for access in accesses:
            for match in _SYM_ANY.finditer(access.path):
                self._canonical_name(int(match.group(1)))

    def _canonical_name(self, vid: int) -> str:
        if vid < 0:
            return f"<v{vid}>"  # abstract roots (e.g. cwd) keep their tag
        name = self._canonical.get(vid)
        if name is None:
            label = ""
            if self.store is not None and vid in self.store:
                label = self.store.label(vid)
            if label and label != f"v{vid}":
                name = f"<{label}>"
            else:
                name = f"<sym{len(self._canonical) + 1}>"
            self._canonical[vid] = name
        return name

    def display(self, path: str) -> str:
        """Human form of a trace path with *stable* symbolic segments:
        per-graph canonical numbering instead of raw allocator ids."""
        renamed = _SYM_ANY.sub(
            lambda m: self._canonical_name(int(m.group(1))), path
        )
        return display_path(renamed)

    # -- concurrency --------------------------------------------------------

    @property
    def open_at_exit(self) -> List[Window]:
        """Regions never joined before the script ended."""
        return [w for w in self.windows.values() if w.close_idx is None]

    def interleavable(self, a: Access, b: Access) -> bool:
        """May the two accesses happen in either order at runtime?

        The trace serialises a background job's effects at launch time;
        in reality they may land anywhere inside the job's region window.
        Two accesses of *different* tasks are interleavable when either
        one's window covers the other's position in the trace.
        """
        if a.task == b.task:
            return False
        for ev, other in ((a, b), (b, a)):
            if ev.task != 0:
                window = self.windows.get(ev.task)
                if window is not None and window.covers(other.index):
                    return True
        return False

    # -- aliasing -----------------------------------------------------------

    def path_language(self, path: str) -> Regex:
        """The regular language of concrete paths a trace path denotes.

        Trace paths render symbolic segments as ``<vN>``; each is
        replaced by the constraint language of variable ``N`` (or any
        string when unconstrained, e.g. the abstract cwd root ``<v-1>``),
        literal segments by themselves.
        """
        cached = self._languages.get(path)
        if cached is not None:
            return cached
        lang = Regex.literal("/") if path.startswith("/") else Regex.literal("")
        first = True
        for segment in (s for s in path.split("/") if s):
            if not first:
                lang = lang + Regex.literal("/")
            match = _SYM_SEGMENT.match(segment)
            if match:
                vid = int(match.group(1))
                if self.store is not None and vid in self.store:
                    lang = lang + self.store.constraint(vid)
                else:
                    lang = lang + Regex.any_string()
            else:
                lang = lang + Regex.literal(segment)
            first = False
        self._languages[path] = lang
        return lang

    def may_alias(self, a: Access, b: Access) -> Optional[str]:
        """Do the two accesses touch the same file?

        Returns ``"node"`` when both resolved to the same abstract fs
        node (definite), ``"language"`` when their symbolic path
        languages intersect (possible), or None when they are provably
        distinct files.
        """
        if a.node is not None and a.node == b.node:
            return "node"
        if a.path == b.path:
            return "node"
        intersection = self.path_language(a.path) & self.path_language(b.path)
        if not intersection.is_empty():
            return "language"
        return None

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        lines = []
        for idx, node in enumerate(self.nodes):
            task = "fg" if node.task == 0 else f"bg#{node.task}"
            summary = []
            if node.reads:
                summary.append("reads " + ",".join(sorted(map(self.display, node.reads))))
            if node.writes | node.creates:
                summary.append(
                    "writes "
                    + ",".join(sorted(map(self.display, node.writes | node.creates)))
                )
            if node.deletes:
                summary.append("deletes " + ",".join(sorted(map(self.display, node.deletes))))
            lines.append(f"[{idx}] ({task}) {node.label()}: " + "; ".join(summary))
        for edge in self.edges:
            lines.append(f"    {edge.src} -{edge.kind}-> {edge.dst}")
        return "\n".join(lines)


def display_path(path: str) -> str:
    """Human form of a trace path: hide the abstract cwd root."""
    if path.startswith("<v-1>/"):
        return path[len("<v-1>/"):]
    if path == "<v-1>":
        return "."
    return path


def build_effect_graph(state) -> EffectGraph:
    """Build the effect graph of one final symbolic state."""
    accesses: List[Access] = []
    windows: Dict[int, Window] = {}
    open_markers: Dict[int, FsEvent] = {}
    marker_indices: List[Tuple[int, FsEvent]] = []
    for index, event in enumerate(state.fs.log):
        if event.op is FsOp.BG_OPEN and event.region is not None:
            windows[event.region] = Window(
                region=event.region,
                label=event.detail,
                origin=event.origin,
                open_idx=index,
            )
            marker_indices.append((index, event))
            continue
        if event.op is FsOp.BG_CLOSE and event.region is not None:
            window = windows.get(event.region)
            if window is not None and window.close_idx is None:
                windows[event.region] = Window(
                    region=window.region,
                    label=window.label,
                    origin=window.origin,
                    open_idx=window.open_idx,
                    close_idx=index,
                )
            marker_indices.append((index, event))
            continue
        if event.op is FsOp.CHDIR:
            continue
        accesses.append(
            Access(
                index=index,
                op=event.op,
                path=event.path,
                node=event.node,
                origin=event.origin,
                task=event.task,
            )
        )

    # group accesses into nodes: one per (command, task), in trace order
    nodes: List[EffectNode] = []
    by_key: Dict[Tuple, int] = {}
    for access in accesses:
        origin = access.origin
        key = (
            origin.label if origin else "",
            origin.where() if origin else "?",
            access.task,
        )
        node_idx = by_key.get(key)
        if node_idx is None:
            node_idx = len(nodes)
            by_key[key] = node_idx
            nodes.append(
                EffectNode(
                    origin=origin,
                    task=access.task,
                    first_index=access.index,
                    last_index=access.index,
                )
            )
        node = nodes[node_idx]
        node.accesses.append(access)
        node.last_index = access.index

    edges: List[Edge] = []
    by_task: Dict[int, List[int]] = {}
    for idx, node in enumerate(nodes):
        by_task.setdefault(node.task, []).append(idx)
    for indices in by_task.values():
        for prev, nxt in zip(indices, indices[1:]):
            edges.append(Edge(prev, nxt, "seq"))
    for index, marker in marker_indices:
        region = marker.region
        if region is None:
            continue
        region_nodes = by_task.get(region, [])
        if marker.op is FsOp.BG_OPEN:
            launchers = [
                i for i in by_task.get(marker.task, [])
                if nodes[i].first_index < index
            ]
            if launchers and region_nodes:
                edges.append(Edge(launchers[-1], region_nodes[0], "fork"))
        else:  # BG_CLOSE
            joiners = [
                i for i in by_task.get(marker.task, [])
                if nodes[i].first_index > index
            ]
            if joiners and region_nodes:
                edges.append(Edge(region_nodes[-1], joiners[0], "join"))

    return EffectGraph(
        accesses=accesses,
        windows=windows,
        nodes=nodes,
        edges=edges,
        store=state.store,
    )
