"""The race checker: effect-graph hazard analysis as a Checker.

Runs once per exploration (in ``finish``): builds the effect graph of
every final state, scans each for interleaving hazards, and aggregates
the findings across paths (a race found on several paths is reported
once).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ...checkers.base import Checker
from ...diag import Diagnostic, Severity
from ...fs import FsOp
from ...obs import get_recorder
from .graph import build_effect_graph
from .hazards import find_hazards


class RaceChecker(Checker):
    """Reports RACE-family hazards between interleavable commands."""

    name = "races"

    def finish(self, states: Sequence) -> List[Diagnostic]:
        rec = get_recorder()
        diagnostics: List[Diagnostic] = []
        seen: Set[Tuple] = set()
        with rec.span("analysis.effects"):
            for state in states:
                has_bg = any(
                    event.op is FsOp.BG_OPEN for event in state.fs.log
                )
                if not has_bg and not rec.enabled:
                    continue  # no background jobs: nothing can interleave
                graph = build_effect_graph(state)
                rec.count("effects.graph_nodes", len(graph.nodes))
                open_regions = len(graph.open_at_exit)
                if open_regions:
                    rec.count("effects.regions_open_at_exit", open_regions)
                if not graph.windows:
                    continue
                for hazard in find_hazards(graph):
                    if hazard.key() in seen:
                        continue
                    seen.add(hazard.key())
                    diagnostics.append(
                        Diagnostic(
                            code=hazard.code,
                            message=hazard.message,
                            severity=Severity.WARNING,
                            pos=hazard.pos,
                            always=False,
                            witness=hazard.witness,
                            related=hazard.related,
                        )
                    )
            if diagnostics:
                rec.count("effects.conflicts", len(diagnostics))
        return diagnostics
