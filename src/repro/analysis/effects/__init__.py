"""Effect-graph hazard analysis (file-system races over ``&``/``wait``).

The engine's event trace attributes every file-system access to the
command that caused it and to the task (foreground or background region)
that ran it; this package rebuilds the per-path effect graph from those
traces and reports interleaving hazards — write/write and read/write
races, reads missing a ``wait``, and check-then-use (TOCTOU) windows.
"""

from .checker import RaceChecker
from .graph import (
    Access,
    EffectGraph,
    EffectNode,
    Edge,
    Window,
    build_effect_graph,
    display_path,
)
from .hazards import Hazard, find_hazards

__all__ = [
    "Access",
    "EffectGraph",
    "EffectNode",
    "Edge",
    "Window",
    "Hazard",
    "RaceChecker",
    "build_effect_graph",
    "display_path",
    "find_hazards",
]
