"""Resource budgets and crash isolation for the analysis pipeline.

The ahead-of-time framing only works if the analyzer is *always safe to
run*: a pre-command analysis that hangs, blows the stack, or crashes on
one pathological script is worse than no analysis at all (cf. Bagnara
et al. on resource-bounded static analyzers, and ShellFuzzer's crash
corpora for shell tooling).  This module makes termination and crash
containment enforced properties rather than hopes:

- :class:`ResourceBudget` — a wall-clock deadline plus caps on symbolic
  states, DFA construction size, and parser nesting depth, threaded
  through the hot layers (``symex.engine``, ``rlang.ops``/``rlang.dfa``,
  ``shell.parser``).  Exhaustion raises the single exception type
  :class:`AnalysisBudgetExceeded`, which the analyzer converts into a
  *partial* report carrying an ``analysis-degraded`` diagnostic — never
  an uncaught exception.
- an active-budget registry (:func:`get_budget` / :func:`use_budget`),
  mirroring the observability recorder, so lower layers that cannot
  take a budget parameter (DFA products deep inside expansions) still
  honour the caps.
- :class:`GuardedChecker` — per-checker fault isolation: a crashing
  checker yields an ``internal-error`` diagnostic with an exception
  digest and is disabled for the rest of the run, instead of aborting
  the file.

Budget trips are counted under ``budget.*`` (``budget.deadline``,
``budget.states``, ``budget.dfa_states``, ``budget.depth``); checker
crashes under ``checker.faults``.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from typing import List, Optional, Sequence

from ..diag import Diagnostic, Severity
from ..obs import get_recorder
from ..shell.parser import MAX_NESTING_DEPTH as DEFAULT_MAX_NESTING

#: Unconditional ceiling on DFA product/determinisation size, enforced
#: even outside any budgeted analysis so pathological regex
#: intersections cannot allocate unboundedly (each state row holds one
#: int per alphabet atom).  Orders of magnitude above anything the
#: analyzer builds for real scripts.
HARD_DFA_STATE_CAP = 100_000


class AnalysisBudgetExceeded(Exception):
    """A resource budget ran out mid-analysis.

    Carries enough context for the analyzer to report *which* phase and
    *which* budget degraded the result, and how much work was done.
    """

    def __init__(self, phase: str, budget: str, detail: str = ""):
        self.phase = phase          # "parse" | "symex" | "rlang" | ...
        self.budget = budget        # "deadline" | "states" | "dfa-states" | "depth"
        self.detail = detail
        message = f"{budget} budget exhausted during {phase}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class ResourceBudget:
    """Per-analysis resource limits.  All limits are optional; ``None``
    means unlimited.  A budget is (re)armed by :meth:`start` — the
    analyzer calls it at the top of every ``analyze()`` so one budget
    object can be reused across files (each file gets a fresh deadline
    and state meter).
    """

    #: deadline checks sample the monotonic clock once per this many
    #: state charges, keeping the per-eval cost to one int compare
    DEADLINE_STRIDE = 32

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_states: Optional[int] = None,
        max_dfa_states: Optional[int] = None,
        max_depth: Optional[int] = None,
    ):
        self.deadline = deadline
        self.max_states = max_states
        self.max_dfa_states = max_dfa_states
        self.max_depth = max_depth
        self.start()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ResourceBudget":
        """Arm (or re-arm) the deadline and reset consumption meters."""
        self._t0 = time.monotonic()
        self._expires = (
            self._t0 + self.deadline if self.deadline is not None else None
        )
        self.states_used = 0
        return self

    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    # -- checks (raise AnalysisBudgetExceeded) ------------------------------

    def _trip(self, phase: str, budget: str, detail: str) -> None:
        get_recorder().count(f"budget.{budget.replace('-', '_')}")
        raise AnalysisBudgetExceeded(phase, budget, detail)

    def check_deadline(self, phase: str) -> None:
        if self._expires is not None and time.monotonic() > self._expires:
            self._trip(
                phase,
                "deadline",
                f"{self.deadline:g}s wall-clock limit reached",
            )

    def charge_state(self, phase: str = "symex") -> None:
        """Account one symbolic evaluation step; the hot-path check."""
        self.states_used += 1
        if self.max_states is not None and self.states_used > self.max_states:
            self._trip(
                phase, "states", f"more than {self.max_states} evaluation steps"
            )
        if self._expires is not None and self.states_used % self.DEADLINE_STRIDE == 0:
            self.check_deadline(phase)

    def check_dfa_states(self, n: int, phase: str = "rlang") -> None:
        if self.max_dfa_states is not None and n > self.max_dfa_states:
            self._trip(
                phase,
                "dfa-states",
                f"automaton construction exceeded {self.max_dfa_states} states",
            )

    # -- derived budgets ----------------------------------------------------

    def tightened(self, factor: float = 0.5) -> "ResourceBudget":
        """A strictly smaller budget for a retry after a crash or
        exhaustion.  Unset limits acquire conservative defaults so a
        retry is *always* bounded even when the original run was not."""

        def shrink(value, default):
            return default if value is None else max(1, type(value)(value * factor))

        return ResourceBudget(
            deadline=shrink(self.deadline, 10.0),
            max_states=shrink(self.max_states, 50_000),
            max_dfa_states=shrink(self.max_dfa_states, HARD_DFA_STATE_CAP // 2),
            max_depth=shrink(self.max_depth, DEFAULT_MAX_NESTING),
        )

    def __repr__(self) -> str:
        parts = []
        for name in ("deadline", "max_states", "max_dfa_states", "max_depth"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        return f"ResourceBudget({', '.join(parts)})"


def clamped_budget(
    deadline: Optional[float],
    max_states: Optional[int],
    cap_deadline: float = 30.0,
    cap_states: int = 2_000_000,
) -> ResourceBudget:
    """A budget that is *never* unlimited: requested limits are clamped
    to the given ceilings, and unset limits get the ceilings themselves.

    This is the analysis server's request guard — a client may ask for a
    smaller budget than the server default, never a larger one, so one
    pathological request cannot wedge the resident daemon.
    """
    return ResourceBudget(
        deadline=cap_deadline if deadline is None else min(deadline, cap_deadline),
        max_states=cap_states if max_states is None else min(max_states, cap_states),
    )


def jittered_backoff(
    attempt: int,
    base: float = 0.05,
    multiplier: float = 2.0,
    cap: float = 1.0,
    jitter: float = 0.25,
    rng=None,
) -> float:
    """The sleep before retry ``attempt`` (0-based): exponential growth
    capped at ``cap``, with +/- ``jitter`` proportional noise so a herd
    of clients retrying a restarted daemon does not arrive in lockstep.
    Pass a seeded ``rng`` (anything with ``.random()``) for determinism
    in tests; without one the module-level :mod:`random` is used."""
    import random as _random

    delay = min(cap, base * (multiplier ** attempt))
    if jitter > 0:
        roll = (rng or _random).random()  # uniform [0, 1)
        delay *= 1.0 + jitter * (2.0 * roll - 1.0)
    return max(0.0, delay)


# ---------------------------------------------------------------------------
# The active budget (mirrors obs.get_recorder: layers too deep to take a
# budget parameter look it up here; None means unlimited)
# ---------------------------------------------------------------------------

_active: Optional[ResourceBudget] = None


def get_budget() -> Optional[ResourceBudget]:
    """The budget governing the current analysis, or None."""
    return _active


def set_budget(budget: Optional[ResourceBudget]) -> Optional[ResourceBudget]:
    global _active
    previous = _active
    _active = budget
    return previous


@contextmanager
def use_budget(budget: Optional[ResourceBudget]):
    """Scoped installation; the previous budget is restored on exit."""
    previous = set_budget(budget)
    try:
        yield budget
    finally:
        set_budget(previous)


def enforce_dfa_cap(n_states: int, phase: str = "rlang") -> None:
    """Called by DFA constructions as they grow: enforces the active
    budget's cap *and* the unconditional :data:`HARD_DFA_STATE_CAP`."""
    if n_states > HARD_DFA_STATE_CAP:
        get_recorder().count("budget.dfa_states")
        raise AnalysisBudgetExceeded(
            phase,
            "dfa-states",
            f"automaton construction exceeded the hard cap of "
            f"{HARD_DFA_STATE_CAP} states",
        )
    budget = _active
    if budget is not None:
        budget.check_dfa_states(n_states, phase)
        # automaton blowups can spend seconds inside one symbolic step,
        # between the engine's own deadline checks — sample the clock
        # here too so wall-clock budgets stay responsive
        budget.check_deadline(phase)


# ---------------------------------------------------------------------------
# Crash isolation
# ---------------------------------------------------------------------------


def exception_digest(exc: BaseException) -> str:
    """A short, stable identifier for an exception (type + message),
    suitable for grouping crash reports without leaking full tracebacks
    into diagnostics."""
    summary = f"{type(exc).__name__}: {exc}"
    digest = hashlib.sha256(summary.encode("utf-8", "replace")).hexdigest()[:8]
    if len(summary) > 120:
        summary = summary[:117] + "..."
    return f"{summary} [{digest}]"


def internal_error_diagnostic(where: str, exc: BaseException) -> Diagnostic:
    """The diagnostic standing in for a crashed component."""
    return Diagnostic(
        code="internal-error",
        message=f"{where} crashed: {exception_digest(exc)}; "
        "results may be incomplete",
        severity=Severity.INFO,
        always=True,
        source="internal",
    )


def degraded_diagnostic(exc: AnalysisBudgetExceeded, analyzed: str) -> Diagnostic:
    """The diagnostic recording a budget-bounded partial analysis."""
    return Diagnostic(
        code="analysis-degraded",
        message=f"analysis degraded: {exc.budget} budget exhausted during "
        f"the {exc.phase} phase ({exc.detail}); {analyzed}",
        severity=Severity.INFO,
        always=True,
        source="internal",
    )


def quarantine_diagnostic(cause: BaseException, retry: Optional[BaseException]) -> Diagnostic:
    """The diagnostic standing in for a file the batch driver gave up
    on: the first attempt killed its worker (or crashed), and the
    bounded inline retry failed too."""
    message = f"file quarantined: analysis failed ({exception_digest(cause)})"
    if retry is not None and retry is not cause:
        message += f"; retry failed ({exception_digest(retry)})"
    return Diagnostic(
        code="analysis-quarantined",
        message=message,
        severity=Severity.INFO,
        always=True,
        source="internal",
    )


class GuardedChecker:
    """Fault-isolation proxy around one checker.

    Every hook delegates to the wrapped checker inside a try/except: on
    the first crash the checker is disabled for the rest of the run and
    an ``internal-error`` diagnostic (with an exception digest) is
    attached to the current state, so one buggy criterion can never
    abort the whole file.  Budget exhaustion is *not* a fault and
    propagates untouched.
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = getattr(inner, "name", type(inner).__name__)
        self.disabled = False
        self.fault: Optional[BaseException] = None

    def _guard(self, sink, method: str, *args) -> List[Diagnostic]:
        """Run one hook; ``sink`` is anything with ``.warn`` (a SymState
        or the engine's diagnostic sink), or None for ``finish``."""
        if self.disabled:
            return []
        try:
            result = getattr(self.inner, method)(*args)
            return result if result is not None else []
        except AnalysisBudgetExceeded:
            raise
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            self.disabled = True
            self.fault = exc
            get_recorder().count("checker.faults")
            diagnostic = internal_error_diagnostic(
                f"checker {self.name!r} ({method})", exc
            )
            if sink is not None:
                sink.warn(diagnostic)
                return []
            return [diagnostic]

    # -- Checker hooks ------------------------------------------------------

    def on_command(self, state, node, argv, spec) -> None:
        self._guard(state, "on_command", state, node, argv, spec)

    def on_delete(self, state, node, operand, recursive) -> None:
        self._guard(state, "on_delete", state, node, operand, recursive)

    def on_case_arm(self, state, node, item, feasible, static_pattern) -> None:
        self._guard(state, "on_case_arm", state, node, item, feasible, static_pattern)

    def on_always_fails(self, state, node, reason) -> None:
        self._guard(state, "on_always_fails", state, node, reason)

    def on_pipeline(self, state, node, issues) -> None:
        self._guard(state, "on_pipeline", state, node, issues)

    def finish(self, states) -> List[Diagnostic]:
        return self._guard(None, "finish", states)


def guard_checkers(checkers: Sequence) -> List[GuardedChecker]:
    """Wrap each checker in a :class:`GuardedChecker` (idempotent)."""
    return [
        checker if isinstance(checker, GuardedChecker) else GuardedChecker(checker)
        for checker in checkers
    ]
