"""A labelled corpus of buggy and safe shell scripts (E12).

Families are modelled on the bug classes the paper discusses: the Steam
deletion bug and its semantic variants, inverted guards, dead stream
filters, always-fail compositions, plus matched *safe* counterparts that
a context-insensitive linter cannot distinguish from the buggy ones.

Ground-truth labels:
- ``buggy``  — some execution performs a catastrophic/impossible action;
- ``safe``   — guaranteed safe across all executions and environments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class LabelledScript:
    name: str
    source: str
    buggy: bool
    family: str
    n_args: int = 0
    note: str = ""


def _steam(body: str) -> str:
    return 'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\n' + body


CORPUS: List[LabelledScript] = [
    # -- the Steam family (buggy) -------------------------------------------
    LabelledScript(
        "steam-original",
        _steam('rm -fr "$STEAMROOT"/*\n'),
        True,
        "steam",
        note="Fig. 1",
    ),
    LabelledScript(
        "steam-unquoted",
        _steam("rm -fr $STEAMROOT/*\n"),
        True,
        "steam",
    ),
    LabelledScript(
        "steam-rf-merged",
        _steam('rm -rf "$STEAMROOT"/*\n'),
        True,
        "steam",
    ),
    LabelledScript(
        "steam-split-var",
        _steam('c="/*"\nrm -fr $STEAMROOT$c\n'),
        True,
        "steam",
        note="§3 semantic variant",
    ),
    LabelledScript(
        "steam-alias-var",
        _steam('a=$STEAMROOT\nrm -fr "$a"/*\n'),
        True,
        "steam",
    ),
    LabelledScript(
        "steam-whole-dir",
        _steam('rm -fr "$STEAMROOT"\n'),
        True,
        "steam",
        note="deletes the directory itself; may be /",
    ),
    LabelledScript(
        "steam-inverted-guard",
        _steam(
            'if [ "$(realpath "$STEAMROOT/")" = "/" ]; then\n'
            '  rm -fr "$STEAMROOT"/*\nelse\n  exit 1\nfi\n'
        ),
        True,
        "steam",
        note="Fig. 3: one character from safe",
    ),
    LabelledScript(
        "steam-colon-q-only",
        _steam('rm -fr "${STEAMROOT:?}"/*\n'),
        True,
        "steam",
        note="ShellCheck's suggested fix guards emptiness but not /",
    ),
    LabelledScript(
        "steam-guard-wrong-var",
        _steam(
            'OTHER=/opt/x\n'
            'if [ "$(realpath "$OTHER/")" != "/" ]; then\n'
            '  rm -fr "$STEAMROOT"/*\nfi\n'
        ),
        True,
        "steam",
        note="guards the wrong variable",
    ),
    LabelledScript(
        "literal-root",
        "rm -rf /\n",
        True,
        "steam",
    ),
    LabelledScript(
        "literal-root-star",
        "rm -rf /*\n",
        True,
        "steam",
    ),
    LabelledScript(
        "arg-deletion-unguarded",
        'rm -rf "$1"\n',
        True,
        "steam",
        n_args=1,
        note="an unvalidated argument may be /",
    ),
    # -- the Steam family (safe counterparts) --------------------------------
    LabelledScript(
        "steam-guarded",
        _steam(
            'if [ "$(realpath "$STEAMROOT/")" != "/" ]; then\n'
            '  rm -fr "$STEAMROOT"/*\nelse\n  echo "Bad path: $0"; exit 1\nfi\n'
        ),
        False,
        "steam",
        note="Fig. 2",
    ),
    LabelledScript(
        "deep-literal-delete",
        "rm -rf /opt/steam/cache\n",
        False,
        "steam",
    ),
    LabelledScript(
        "deep-literal-star",
        "rm -rf /var/tmp/build/*\n",
        False,
        "steam",
    ),
    LabelledScript(
        "annotated-target",
        '# @var TARGET : /srv/[a-z]+/releases/[a-z0-9]+\nrm -rf "$TARGET"\n',
        False,
        "steam",
        note="§4 ergonomic annotation constrains the variable",
    ),
    LabelledScript(
        "tmp-workdir",
        "mkdir -p /tmp/job/scratch\nrm -rf /tmp/job/scratch\n",
        False,
        "steam",
    ),
    LabelledScript(
        "guarded-arg-delete",
        'if [ "$(realpath "$1/")" != "/" ]; then\n  rm -rf "$1"/work\nfi\n',
        False,
        "steam",
        n_args=1,
    ),
    # -- stream typing (buggy) -----------------------------------------------
    LabelledScript(
        "fig5-grep-case",
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/\n'
        "case $(lsb_release -a | grep '^desc' | cut -f 2) in\n"
        '  Debian) SUFFIX=".config/steam" ;;\n'
        '  *Linux) SUFFIX=".steam" ;;\n'
        "esac\n"
        "rm -fr $STEAMROOT$SUFFIX\n",
        True,
        "stream",
        note="Fig. 5",
    ),
    LabelledScript(
        "dead-grep-filter",
        "lsb_release -a | grep '^desc' | cut -f 2\n",
        True,
        "stream",
    ),
    LabelledScript(
        "dead-grep-wc-hides",
        "R=$(lsb_release -a | grep '^release' | cut -f 2)\nrm -fr /opt/apps/$R\n",
        True,
        "stream",
        note="dead filter leaves the deletion path truncated",
    ),
    LabelledScript(
        "hex-simple-type-break",
        "# @type mangle :: .* -> 0x.*\n"
        "grep -oE '[0-9a-f]+' data | mangle | sort -g\n",
        True,
        "stream",
        note="annotated stage's output is too wide for sort -g",
    ),
    LabelledScript(
        "dead-case-subject",
        'MODE=$(uname | grep "^atari")\n'
        "case $MODE in Linux) echo l ;; Darwin) echo d ;; esac\n",
        True,
        "stream",
        note="grep filter kills the subject; both arms dead",
    ),
    # -- stream typing (safe counterparts) -------------------------------------
    LabelledScript(
        "fig5-corrected",
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/\n'
        "case $(lsb_release -a | grep '^Desc' | cut -f 2) in\n"
        '  Debian*) SUFFIX=".config/steam" ;;\n'
        '  *) SUFFIX=".steam" ;;\n'
        "esac\n"
        'if [ "$(realpath "$STEAMROOT/")" != "/" ]; then\n'
        "  rm -fr $STEAMROOT$SUFFIX\nfi\n",
        False,
        "stream",
    ),
    LabelledScript(
        "live-grep-filter",
        "lsb_release -a | grep '^Desc' | cut -f 2\n",
        False,
        "stream",
    ),
    LabelledScript(
        "hex-pipeline-poly",
        "grep -oE '[0-9a-f]+' data | sed 's/^/0x/' | sort -g\n",
        False,
        "stream",
        note="§4: checkable only with polymorphic types",
    ),
    LabelledScript(
        "filter-then-count",
        "grep '^ERROR' log | wc -l\n",
        False,
        "stream",
    ),
    LabelledScript(
        "live-case",
        "case $(uname) in Linux) echo l ;; Darwin) echo d ;; *) echo o ;; esac\n",
        False,
        "stream",
    ),
    # -- composition / fs contradictions (buggy) --------------------------------
    LabelledScript(
        "rm-then-cat",
        'rm -fr "$1"\ncat "$1/config"\n',
        True,
        "composition",
        n_args=1,
        note="§4's always-fails snippet",
    ),
    LabelledScript(
        "rm-then-redirect-read",
        'rm -f /etc/app.conf\nsort </etc/app.conf\n',
        True,
        "composition",
    ),
    LabelledScript(
        "double-mkdir",
        "mkdir /srv/app\nmkdir /srv/app\n",
        True,
        "composition",
    ),
    LabelledScript(
        "mkdir-under-removed",
        'rm -rf "$1"\nmkdir "$1/sub"\n',
        True,
        "composition",
        n_args=1,
    ),
    LabelledScript(
        "file-as-dir",
        "touch /tmp/target\ncat /tmp/target/config\n",
        True,
        "composition",
    ),
    # -- composition (safe counterparts) ------------------------------------------
    LabelledScript(
        "cat-then-rm",
        '# @var APPDIR : /opt/[a-z]+\ncat "$APPDIR/config"\nrm -f "$APPDIR/config"\n',
        False,
        "composition",
        note="read before delete is fine; the variable is constrained",
    ),
    LabelledScript(
        "rm-recreate-use",
        '# @var WORKDIR : /var/tmp/[a-z]+\n'
        'rm -fr "$WORKDIR"\nmkdir -p "$WORKDIR"\n'
        'touch "$WORKDIR/config"\ncat "$WORKDIR/config"\n',
        False,
        "composition",
    ),
    LabelledScript(
        "mkdir-p-idempotent",
        "mkdir -p /srv/app\nmkdir -p /srv/app\n",
        False,
        "composition",
    ),
    LabelledScript(
        "guarded-recreate",
        'if [ -e /srv/app ]; then rm -rf /srv/app/data; fi\nmkdir -p /srv/app/data\n',
        False,
        "composition",
    ),
    LabelledScript(
        "write-then-read",
        "echo hello >/tmp/msg\ncat /tmp/msg\n",
        False,
        "composition",
    ),
]


CORPUS += [
    # -- wrappers and argument forwarding ------------------------------------
    LabelledScript(
        "wrapper-forwarded-deletion",
        'clean() { rm -rf "$1"; }\nclean "$@"\n',
        True,
        "wrapper",
        n_args=1,
        note="unvalidated argument forwarded through a function",
    ),
    LabelledScript(
        "wrapper-guarded",
        'clean() {\n'
        '  if [ "$(realpath "$1/")" != "/" ]; then rm -rf "$1"/work; fi\n'
        '}\nclean "$@"\n',
        False,
        "wrapper",
        n_args=1,
    ),
    LabelledScript(
        "split-flags-deletion",
        'OPTS="-r -f"\nrm $OPTS "$1"\n',
        True,
        "wrapper",
        n_args=1,
        note="flags arrive via field splitting; still a raw-arg deletion",
    ),
    LabelledScript(
        "wrapper-constant-target",
        'clean() { rm -rf "/var/cache/app/$1"; }\nclean "$@"\n',
        False,
        "wrapper",
        n_args=1,
        note="argument is anchored under a deep constant prefix",
    ),
    # -- compound guards ---------------------------------------------------------
    LabelledScript(
        "compound-guard-good",
        'if [ -n "$1" -a "$1" != "/" ]; then rm -rf "$1"/stage; fi\n',
        True,
        "guards",
        n_args=1,
        note='excludes "" and "/" but not "//" or "/.": still reaches root',
    ),
    LabelledScript(
        "compound-guard-realpath",
        'if [ -n "$1" ]; then\n'
        '  if [ "$(realpath "$1/")" != "/" ]; then rm -rf "$1"/stage; fi\n'
        "fi\n",
        False,
        "guards",
        n_args=1,
    ),
    LabelledScript(
        "guard-on-wrong-branch",
        'if [ "$(realpath "$1/")" != "/" ]; then\n'
        "  echo safe-to-go\nfi\n"
        'rm -rf "$1"/stage\n',
        True,
        "guards",
        n_args=1,
        note="the guard does not dominate the deletion",
    ),
    # -- set -e interactions ------------------------------------------------------
    LabelledScript(
        "errexit-protected",
        'set -e\ncd "$1"\nrm -rf ./build\n',
        False,
        "errexit",
        n_args=1,
        note="set -e makes the failed-cd path abort before the rm",
    ),
    LabelledScript(
        "no-errexit-cd-deletion",
        'cd "$1"\nrm -rf ./build\n',
        False,
        "errexit",
        n_args=1,
        note="even without set -e, ./build is cwd-relative (never /)",
    ),
    LabelledScript(
        "errexit-absolute-still-bad",
        'set -e\ntrue\nrm -rf "$1"\n',
        True,
        "errexit",
        n_args=1,
    ),
    # -- stream extras ---------------------------------------------------------------
    LabelledScript(
        "tr-case-dead-grep",
        "cat names | tr a-z A-Z | grep '^[a-z]'\n",
        True,
        "stream",
        note="grepping lowercase after upcasing: dead filter",
    ),
    LabelledScript(
        "tr-case-live-grep",
        "cat names | tr a-z A-Z | grep '^[A-Z]'\n",
        False,
        "stream",
    ),
    LabelledScript(
        "uname-dead-arm",
        "case $(uname | grep '^zzz') in Linux) echo l ;; *) : ;; esac\n",
        True,
        "stream",
        note="filtered subject kills the Linux arm",
    ),
]


def corpus() -> List[LabelledScript]:
    return list(CORPUS)


def buggy_scripts() -> List[LabelledScript]:
    return [s for s in CORPUS if s.buggy]


def safe_scripts() -> List[LabelledScript]:
    return [s for s in CORPUS if not s.buggy]
