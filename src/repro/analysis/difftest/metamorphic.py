"""The metamorphic oracle: diagnostics must be invariant under
semantics-preserving rewrites.

For each rewrite in :data:`repro.shell.rewrite.REWRITES` the source is
transformed, re-analyzed, and the two diagnostic sets compared after
normalization.  Normalization removes what a rewrite is *allowed* to
change — positions (every rewrite moves text), position fragments
embedded in messages, and (for the quote rewrite only) double-quote
characters in echoed command labels — and nothing else: any remaining
difference is an analyzer bug, either in the printer or in an
order/name-sensitive checker.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...shell.rewrite import REWRITES
from ..analyzer import analyze

#: ``line:col`` fragments embedded in messages (e.g. hazard provenance)
_POS = re.compile(r"\b\d+:\d+\b")

#: rewrites that change the surface text of commands, whose echoed
#: labels may therefore legally differ by quote characters
_TEXT_CHANGING = frozenset({"quotes"})

NormDiag = Tuple[str, str, str, bool, str, Tuple[str, ...]]


@dataclass
class MetamorphicDiff:
    """One invariance violation."""

    rewrite: str
    only_original: List[NormDiag]
    only_rewritten: List[NormDiag]
    rewritten_source: str = ""


@dataclass
class MetamorphicResult:
    source: str
    diffs: List[MetamorphicDiff] = field(default_factory=list)
    rewrites_applied: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.diffs


def normalize_report(report, strip_quotes: bool = False) -> List[NormDiag]:
    """Rewrite-invariant projection of a report's diagnostics."""
    out: List[NormDiag] = []
    for diag in report.diagnostics:
        message = _POS.sub("L:C", diag.message)
        related = tuple(_POS.sub("L:C", r) for r in (diag.related or ()))
        witness = getattr(diag, "witness", "") or ""
        if strip_quotes:
            message = message.replace('"', "")
            related = tuple(r.replace('"', "") for r in related)
            witness = witness.replace('"', "")
        out.append(
            (diag.code, message, diag.severity.name, diag.always, witness, related)
        )
    return sorted(out)


def check_source(
    source: str,
    analyze_fn: Optional[Callable] = None,
    rewrites: Optional[Dict[str, Callable[[str], str]]] = None,
    **analyze_kwargs,
) -> MetamorphicResult:
    """Apply every rewrite and compare normalized diagnostics."""
    run = analyze_fn if analyze_fn is not None else analyze
    result = MetamorphicResult(source=source)
    try:
        base_report = run(source, **analyze_kwargs)
    except Exception:
        return result  # un-analyzable input is the fuzz harness's domain
    for name, rewrite in (rewrites if rewrites is not None else REWRITES).items():
        try:
            rewritten = rewrite(source)
        except Exception:
            continue  # rewrite refused the construct: identity relation
        if rewritten == source:
            continue
        strip = name in _TEXT_CHANGING
        base = normalize_report(base_report, strip_quotes=strip)
        try:
            other = normalize_report(run(rewritten, **analyze_kwargs), strip_quotes=strip)
        except Exception:
            other = None
        result.rewrites_applied.append(name)
        if other is None or base != other:
            other = other or []
            result.diffs.append(
                MetamorphicDiff(
                    rewrite=name,
                    only_original=[d for d in base if d not in other],
                    only_rewritten=[d for d in other if d not in base],
                    rewritten_source=rewritten,
                )
            )
    return result
