"""Differential correctness testing: dynamic + metamorphic oracles.

The static analyzer's verdicts are cross-checked two ways —

- :mod:`.dynamic` executes scripts under a real ``/bin/sh`` inside a
  shim-confined sandbox (:mod:`.sandbox`) and compares observed
  filesystem events against per-checker claims;
- :mod:`.metamorphic` re-analyzes semantics-preserving rewrites of each
  script and requires identical diagnostics.

:mod:`.campaign` fans both oracles over generated (:mod:`.gen`, safe
mode) and corpus scripts, minimizes disagreements (:mod:`.minimize`),
and emits the deterministic precision benchmark consumed by CI.
"""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    compare_to_baseline,
    run_campaign,
)
from .dynamic import CHECKERS, Disagreement, DynamicResult
from .dynamic import check_source as check_dynamic
from .gen import SAFE_ARGS, SAFE_FIXTURES, ScriptGen, generate
from .metamorphic import MetamorphicDiff, MetamorphicResult, normalize_report
from .metamorphic import check_source as check_metamorphic
from .minimize import minimize_lines
from .sandbox import RunResult, Sandbox, TraceRecord, snapshot_tree, tree_diff

__all__ = [
    "CHECKERS",
    "CampaignConfig",
    "CampaignResult",
    "Disagreement",
    "DynamicResult",
    "MetamorphicDiff",
    "MetamorphicResult",
    "RunResult",
    "SAFE_ARGS",
    "SAFE_FIXTURES",
    "Sandbox",
    "ScriptGen",
    "TraceRecord",
    "check_dynamic",
    "check_metamorphic",
    "compare_to_baseline",
    "generate",
    "minimize_lines",
    "normalize_report",
    "run_campaign",
    "snapshot_tree",
    "tree_diff",
]
