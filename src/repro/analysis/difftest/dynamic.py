"""The dynamic oracle: sandboxed execution vs static verdicts.

Each script is executed twice in one fresh sandbox under a real
``/bin/sh`` (shim ``PATH`` + post-hoc tree diff, no strace), and the
observations are compared per checker:

- **idempotence** — a second run whose ``mkdir``/``ln`` invocations
  fail where the first run's succeeded is an observed violation; a
  static warning with no observed violation is an FP *candidate* (the
  execution takes one path; a warning on an untaken path still counts
  here, which makes the benchmark an upper bound on FPs), and an
  observed violation with no warning is an FN.
- **deletion** — a ``dangerous-deletion`` marked ``always`` claims the
  deletion *definitely* reaches the filesystem root; an execution that
  completes while deleting only sandbox-relative paths refutes it.
  ``may``-findings are not dynamically falsifiable (the dangerous
  assignment may simply not occur on this run) and are left unchecked.
- **platform** — a flag diagnosed as unavailable on the platform we are
  running on, whose probe invocation nevertheless succeeds, is an FP.
- **streams** — an ``always`` ``redirect-clobbers-input`` claims the
  named input file is truncated before it is read; if the file's bytes
  are unchanged after the run the claim is refuted.
- **races** — inherently scheduling-dependent, never dynamically
  falsified here; the metamorphic oracle covers their stability.
"""

from __future__ import annotations

import platform as _platform
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analyzer import analyze
from .gen import SAFE_ARGS
from .sandbox import RunResult, Sandbox, run_in_fresh_sandbox

#: diagnostic code -> checker bucket for the precision benchmark
CODE_TO_CHECKER = {
    "dangerous-deletion": "deletion",
    "home-deletion": "deletion",
    "idempotence": "idempotence",
    "platform-flag": "platform",
    "redirect-clobbers-input": "streams",
    "dead-stream": "streams",
    "stream-type-error": "streams",
    "race-read-write": "races",
    "race-write-write": "races",
    "race-missing-wait": "races",
    "race-toctou": "races",
}

CHECKERS = ("deletion", "idempotence", "streams", "platform", "races")

#: commands whose re-run failure constitutes an idempotence violation
_CREATORS = frozenset({"mkdir", "ln"})

_PLATFORM_MSG = re.compile(r"(\S+) (--?\S+) is not available on (\S+);")
_CLOBBER_MSG = re.compile(r"truncates '([^']+)'")


@dataclass(frozen=True)
class Disagreement:
    """One static/dynamic disagreement, with its reproducer."""

    checker: str
    kind: str  # "fp" | "fn"
    code: str
    detail: str
    reproducer: str
    minimized: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {
            "checker": self.checker,
            "kind": self.kind,
            "code": self.code,
            "detail": self.detail,
            "reproducer": self.reproducer,
            "minimized": self.minimized or self.reproducer,
        }


@dataclass
class DynamicResult:
    source: str
    executed: bool
    disagreements: List[Disagreement] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)
    skipped_reason: str = ""


def _host_platform() -> str:
    return "macos" if _platform.system() == "Darwin" else "linux"


def _creator_failures(run: RunResult) -> List[str]:
    return [
        f"{rec.name} {' '.join(rec.args)}"
        for rec in run.trace
        if rec.name in _CREATORS and rec.status != 0
    ]


def check_source(
    source: str,
    base_dir: str,
    tag: str,
    args: Optional[List[str]] = None,
    analyze_kwargs: Optional[dict] = None,
    timeout: float = 10.0,
) -> DynamicResult:
    """Run the dynamic oracle on one script."""
    kwargs = dict(analyze_kwargs or {})
    try:
        report = analyze(source, **kwargs)
    except Exception as exc:  # analyze() never raises by contract, but stay safe
        return DynamicResult(source, False, skipped_reason=f"analyze failed: {exc}")
    if any(
        d.code in ("syntax-error", "parse-error", "internal-error")
        for d in report.diagnostics
    ):
        return DynamicResult(source, False, skipped_reason="not analyzable")

    runs = run_in_fresh_sandbox(
        source, base_dir, tag, runs=2,
        args=args if args is not None else SAFE_ARGS, timeout=timeout,
    )
    first, second = runs[0], runs[1]
    if first.timed_out or second.timed_out:
        return DynamicResult(source, False, skipped_reason="execution timed out")

    result = DynamicResult(source, True)
    by_checker: Dict[str, List] = {name: [] for name in CHECKERS}
    for diag in report.diagnostics:
        checker = CODE_TO_CHECKER.get(diag.code)
        if checker is not None:
            by_checker[checker].append(diag)

    _check_idempotence(result, by_checker["idempotence"], first, second)
    _check_deletion(result, by_checker["deletion"], first)
    _check_platform(result, by_checker["platform"], base_dir, tag)
    _check_streams(result, by_checker["streams"], first)
    # races: counted as analyzed but never dynamically falsified
    return result


def _check_idempotence(
    result: DynamicResult, diags: List, first: RunResult, second: RunResult
) -> None:
    result.checked.append("idempotence")
    first_failures = set(_creator_failures(first))
    observed = [f for f in _creator_failures(second) if f not in first_failures]
    if diags and not observed:
        detail = (
            "static warns the script is not re-runnable, but every "
            "mkdir/ln that failed on the second run had already failed "
            "identically on the first (no succeed-then-fail)"
            if first_failures
            else "static warns the script is not re-runnable, but a "
            "second execution repeated every mkdir/ln cleanly"
        )
        for diag in diags:
            result.disagreements.append(
                Disagreement(
                    checker="idempotence",
                    kind="fp",
                    code=diag.code,
                    detail=detail,
                    reproducer=result.source,
                )
            )
    elif observed and not diags:
        result.disagreements.append(
            Disagreement(
                checker="idempotence",
                kind="fn",
                code="idempotence",
                detail=(
                    "second run failed where the first succeeded "
                    f"({'; '.join(sorted(observed))}) with no static warning"
                ),
                reproducer=result.source,
            )
        )


def _check_deletion(result: DynamicResult, diags: List, first: RunResult) -> None:
    always = [d for d in diags if d.code == "dangerous-deletion" and d.always]
    if not always:
        return  # may-findings are not dynamically falsifiable
    result.checked.append("deletion")
    deleted = [p for p, op in first.diff.items() if op == "deleted"]
    # every observed deletion is sandbox-relative by construction; a
    # *definite* root deletion claim on a run that completed is refuted
    if first.returncode == 0:
        for diag in always:
            result.disagreements.append(
                Disagreement(
                    checker="deletion",
                    kind="fp",
                    code=diag.code,
                    detail=(
                        "static claims the deletion always reaches the fs "
                        f"root, but execution completed deleting only "
                        f"{deleted or 'nothing'} inside the sandbox"
                    ),
                    reproducer=result.source,
                )
            )


def _check_platform(
    result: DynamicResult, diags: List, base_dir: str, tag: str
) -> None:
    host = _host_platform()
    probed = False
    for diag in diags:
        match = _PLATFORM_MSG.search(diag.message)
        if not match:
            continue
        command, flag, claimed_platform = match.groups()
        if claimed_platform != host:
            continue  # can only falsify claims about the platform we run on
        probed = True
        sandbox = Sandbox(f"{base_dir}/{tag}.probe")
        sandbox.populate()
        probe = sandbox.run(f"{command} {flag} > /dev/null 2>&1\n", args=[])
        if probe.returncode == 0:
            result.disagreements.append(
                Disagreement(
                    checker="platform",
                    kind="fp",
                    code=diag.code,
                    detail=(
                        f"`{command} {flag}` diagnosed unavailable on {host}, "
                        "but the probe invocation succeeded there"
                    ),
                    reproducer=result.source,
                )
            )
    if probed:
        result.checked.append("platform")


def _check_streams(result: DynamicResult, diags: List, first: RunResult) -> None:
    clobbers = [
        d for d in diags if d.code == "redirect-clobbers-input" and d.always
    ]
    if not clobbers:
        return
    result.checked.append("streams")
    for diag in clobbers:
        match = _CLOBBER_MSG.search(diag.message)
        if not match:
            continue
        path = match.group(1)
        before = first.before.get(path)
        after = first.after.get(path)
        if before is not None and after == before and (before[1] or b"") != b"":
            result.disagreements.append(
                Disagreement(
                    checker="streams",
                    kind="fp",
                    code=diag.code,
                    detail=(
                        f"static claims `{path}` is always truncated before "
                        "being read, but its bytes are unchanged after the run"
                    ),
                    reproducer=result.source,
                )
            )
