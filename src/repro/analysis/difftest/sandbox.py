"""Tmpdir-confined execution sandbox for the dynamic oracle.

strace-free observation: every allowlisted command is fronted by a shim
on ``PATH`` that appends one record to a trace file (command, exit
status, working directory, argv) and then runs the real binary, while
the filesystem effect of the whole run is recovered post-hoc by diffing
a full tree snapshot taken before and after.  Shim appends are single
``printf`` calls into an ``O_APPEND`` descriptor, so records from
concurrent background jobs do not interleave mid-line.
"""

from __future__ import annotations

import os
import shutil
import stat
import subprocess
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .gen import SAFE_ARGS, SAFE_COMMANDS, SAFE_FIXTURES

#: field separator inside one trace record (cannot occur in sane argv)
SEP = "\x1f"

#: names reserved for sandbox bookkeeping, excluded from tree snapshots
CONTROL = frozenset({".shims", ".trace", "script.sh"})


@dataclass(frozen=True)
class TraceRecord:
    """One logged command invocation."""

    name: str
    status: int
    cwd: str
    args: Tuple[str, ...]


@dataclass
class RunResult:
    """The observable outcome of one sandboxed execution."""

    returncode: int
    stdout: str
    stderr: str
    timed_out: bool
    before: Dict[str, Tuple[str, Optional[bytes]]]
    after: Dict[str, Tuple[str, Optional[bytes]]]
    trace: List[TraceRecord] = field(default_factory=list)

    @property
    def diff(self) -> Dict[str, str]:
        return tree_diff(self.before, self.after)


#: Shims confine as well as log: any operand that is an absolute path
#: outside the sandbox (or tries to climb out with ``..``) aborts the
#: invocation with status 125 before the real binary runs.  Safe-mode
#: scripts never trip this; it is the backstop for hand-written corpora
#: handed to ``repro-difftest``.
_SHIM_TEMPLATE = """#!/bin/sh
# sandbox shim: confine to the sandbox, log the invocation, run the real binary
_out=""
for _a in "$@"; do
    _out="${{_out}}{sep}${{_a}}"
    case "$_a" in
        -*|/dev/null|/dev/stdin|/dev/stdout|/dev/stderr) ;;
        {root}/*|{root}) ;;
        /*|..|../*|*/..|*/../*)
            printf '%s{sep}125{sep}%s%s\\n' {name} "$PWD" "$_out" >> {trace}
            echo "sandbox: refused operand $_a" >&2
            exit 125 ;;
    esac
done
{real} "$@"
_st=$?
printf '%s{sep}%s{sep}%s%s\\n' {name} "$_st" "$PWD" "$_out" >> {trace}
exit $_st
"""


def snapshot_tree(root: str) -> Dict[str, Tuple[str, Optional[bytes]]]:
    """Full tree state: relpath -> (kind, payload).

    Kinds: ``file`` (payload = bytes), ``dir`` (payload None — empty
    directories are captured too), ``symlink`` (payload = target bytes,
    link not followed).  Sandbox control files are excluded.
    """
    state: Dict[str, Tuple[str, Optional[bytes]]] = {}
    for dirpath, dirnames, filenames in os.walk(root, followlinks=False):
        rel_dir = os.path.relpath(dirpath, root)
        dirnames[:] = [
            d for d in dirnames
            if not (rel_dir == "." and d in CONTROL)
        ]
        if rel_dir != ".":
            state[rel_dir] = ("dir", None)
        for name in filenames:
            if rel_dir == "." and name in CONTROL:
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.normpath(os.path.join(rel_dir, name)) if rel_dir != "." else name
            if os.path.islink(path):
                state[rel] = ("symlink", os.readlink(path).encode())
            else:
                try:
                    with open(path, "rb") as handle:
                        state[rel] = ("file", handle.read())
                except OSError:
                    state[rel] = ("file", None)
        for name in list(dirnames):
            # record symlinked dirs as symlinks without descending
            path = os.path.join(dirpath, name)
            if os.path.islink(path):
                rel = os.path.normpath(os.path.join(rel_dir, name)) if rel_dir != "." else name
                state[rel] = ("symlink", os.readlink(path).encode())
                dirnames.remove(name)
    return state


def tree_diff(
    before: Dict[str, Tuple[str, Optional[bytes]]],
    after: Dict[str, Tuple[str, Optional[bytes]]],
) -> Dict[str, str]:
    """Per-path change classification: created / deleted / modified."""
    diff: Dict[str, str] = {}
    for path in before.keys() - after.keys():
        diff[path] = "deleted"
    for path in after.keys() - before.keys():
        diff[path] = "created"
    for path in before.keys() & after.keys():
        if before[path] != after[path]:
            diff[path] = "modified"
    return dict(sorted(diff.items()))


class Sandbox:
    """One confined execution environment under ``root``."""

    def __init__(self, root: str, commands: Optional[List[str]] = None):
        self.root = os.path.abspath(root)
        self.shim_dir = os.path.join(self.root, ".shims")
        self.trace_path = os.path.join(self.root, ".trace")
        self.script_path = os.path.join(self.root, "script.sh")
        self.commands = list(commands if commands is not None else SAFE_COMMANDS)
        os.makedirs(self.root, exist_ok=True)
        self._build_shims()

    # -- setup ---------------------------------------------------------------

    def populate(self, fixtures: Optional[Dict[str, str]] = None) -> None:
        """Create the fixture tree (trailing ``/`` marks a directory)."""
        for rel, content in (fixtures if fixtures is not None else SAFE_FIXTURES).items():
            target = os.path.join(self.root, rel)
            if rel.endswith("/"):
                os.makedirs(target, exist_ok=True)
            else:
                os.makedirs(os.path.dirname(target) or self.root, exist_ok=True)
                with open(target, "w") as handle:
                    handle.write(content)

    def _build_shims(self) -> None:
        os.makedirs(self.shim_dir, exist_ok=True)
        for name in set(self.commands) | {"["}:
            lookup = "test" if name == "[" else name
            real = shutil.which(lookup)
            if real is None:
                continue
            shim_path = os.path.join(self.shim_dir, name)
            body = _SHIM_TEMPLATE.format(
                sep=SEP,
                real=_sh_quote(real),
                name=_sh_quote(lookup),
                trace=_sh_quote(self.trace_path),
                root=self.root,
            )
            with open(shim_path, "w") as handle:
                handle.write(body)
            os.chmod(shim_path, os.stat(shim_path).st_mode | stat.S_IEXEC)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        source: str,
        args: Optional[List[str]] = None,
        timeout: float = 10.0,
    ) -> RunResult:
        """Execute the script under a real ``/bin/sh`` inside the sandbox.

        ``PATH`` contains only the shim directory, so any command off
        the allowlist fails with 127 instead of touching the host; the
        working directory is the sandbox root, stdin is ``/dev/null``,
        and ``HOME`` points inside the sandbox.
        """
        with open(self.script_path, "w") as handle:
            handle.write(source)
        try:
            os.remove(self.trace_path)
        except FileNotFoundError:
            pass
        before = snapshot_tree(self.root)
        home = os.path.join(self.root, ".shims")  # inert, pre-existing
        env = {
            "PATH": self.shim_dir,
            "HOME": home,
            "LC_ALL": "C",
        }
        timed_out = False
        try:
            proc = subprocess.run(
                ["/bin/sh", "script.sh", *(args if args is not None else SAFE_ARGS)],
                cwd=self.root,
                env=env,
                stdin=subprocess.DEVNULL,
                capture_output=True,
                text=True,
                timeout=timeout,
            )
            returncode, stdout, stderr = proc.returncode, proc.stdout, proc.stderr
        except subprocess.TimeoutExpired as exc:
            timed_out = True
            returncode = -1
            stdout = (exc.stdout or b"").decode("utf-8", "replace") \
                if isinstance(exc.stdout, bytes) else (exc.stdout or "")
            stderr = (exc.stderr or b"").decode("utf-8", "replace") \
                if isinstance(exc.stderr, bytes) else (exc.stderr or "")
        after = snapshot_tree(self.root)
        return RunResult(
            returncode=returncode,
            stdout=stdout,
            stderr=stderr,
            timed_out=timed_out,
            before=before,
            after=after,
            trace=self._read_trace(),
        )

    def _read_trace(self) -> List[TraceRecord]:
        records: List[TraceRecord] = []
        try:
            with open(self.trace_path) as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            return records
        for line in lines:
            fields = line.split(SEP)
            if len(fields) < 3:
                continue
            name, status_text, cwd = fields[0], fields[1], fields[2]
            try:
                status = int(status_text)
            except ValueError:
                continue
            records.append(
                TraceRecord(
                    name=name, status=status, cwd=cwd, args=tuple(fields[3:])
                )
            )
        return records


def _sh_quote(text: str) -> str:
    return "'" + text.replace("'", "'\\''") + "'"


def run_in_fresh_sandbox(
    source: str,
    base_dir: str,
    tag: str,
    runs: int = 1,
    args: Optional[List[str]] = None,
    fixtures: Optional[Dict[str, str]] = None,
    timeout: float = 10.0,
) -> List[RunResult]:
    """Execute ``source`` ``runs`` times in ONE fresh sandbox (the
    repeated-run form the idempotence oracle needs), returning the
    result of each run in order."""
    sandbox = Sandbox(os.path.join(base_dir, tag))
    sandbox.populate(fixtures)
    return [sandbox.run(source, args=args, timeout=timeout) for _ in range(runs)]
