"""Deterministic grammar-based shell-script generator (ShellFuzzer-style).

Everything is driven by a seeded ``random.Random`` — same seed, same
script, no wall-clock or OS dependence — so fuzz failures reproduce
with just the seed number.  The grammar deliberately covers every
construct the parser and engine handle (pipelines, lists, redirects,
loops, case, subshells, command/arith substitution, here-strings via
quoting, background jobs) plus a mutation pass that damages otherwise
well-formed scripts to exercise the syntax-error and recovery paths.

Two modes:

- the default (fuzz) grammar reaches for hostile inputs — ``$HOME``,
  absolute paths, ``..``, unset variables, nonexistent commands, and a
  mutation pass that breaks syntax;
- ``safe=True`` generates *executable* scripts for the dynamic oracle:
  every path is sandbox-relative, every referenced variable is assigned
  in a deterministic preamble, every command is on the
  :data:`SAFE_COMMANDS` allowlist, loops provably terminate, and the
  mutation pass is disabled so the script always parses.
"""

from __future__ import annotations

import random
from typing import Dict, List

NAMES = ["x", "dir", "target", "out", "tmp", "STEAMROOT", "i", "f"]
COMMANDS = [
    "echo", "rm", "mkdir", "cat", "grep", "mv", "cp", "touch",
    "ls", "sed", "head", "wc", "test", "frobnicate",
]
FLAGS = ["-r", "-f", "-rf", "-p", "-n", "-e", "--force", "-x"]
WORDS = [
    "file.txt", "/tmp/out", "$HOME/cache", '"$x"', "$1", "${dir}/sub",
    "log-*.txt", "'a b'", "data", "*", "..", "$(basename $0)", "-",
]
PATTERNS = ["*.txt", "a|b", "[0-9]*", "yes", "*"]
REDIRECTS = ["> /tmp/log", ">> out.txt", "2>/dev/null", "< file.txt", "2>&1"]
OPTSTRINGS = ["ab:c", "xy", "f:o:", ":q"]

#: commands the safe grammar may emit — the execution sandbox builds its
#: logging shims from exactly this list (plus ``[`` for ``test``)
SAFE_COMMANDS = [
    "echo", "rm", "mkdir", "cat", "grep", "mv", "cp", "touch",
    "ls", "sed", "head", "wc", "test", "sort", "true", "basename", "ln",
]
#: sandbox-relative words only: no ``$HOME``, no absolute paths, no
#: ``..`` — with the preamble below, every path stays under the sandbox
SAFE_WORDS = [
    "file.txt", "out.txt", '"$x"', "$1", "${dir}/sub", "log-*.txt",
    "'a b'", "data", "work", "$(basename $0)",
]
SAFE_REDIRECTS = ["> log.out", ">> out.txt", "2>/dev/null", "< file.txt", "2>&1"]
SAFE_CASE_SUBJECTS = ["$1", '"$1"', "$x", '"$#"']

#: files the sandbox pre-creates so generated commands have something to
#: chew on; a trailing ``/`` marks a directory.  ``absent.flag`` is
#: deliberately NOT here (and not in SAFE_WORDS): safe while-loops test
#: it, so they run zero iterations and provably terminate.
SAFE_FIXTURES: Dict[str, str] = {
    "file.txt": "alpha\nbeta\ngamma\n",
    "data": "1\n2\n3\n",
    "out.txt": "",
    "log-a.txt": "log line a\n",
    "log-b.txt": "log line b\n",
    "a b": "spaced name\n",
    "work/": "",
    "work/sub": "sub contents\n",
}

#: deterministic variable preamble for safe scripts: every name the
#: grammar can interpolate resolves to a sandbox-relative path, so
#: ``rm ${dir}/sub`` can never escape (an unset ``dir`` would make it
#: ``rm /sub``)
SAFE_PREAMBLE = [
    "x=file.txt",
    "dir=work",
    "target=data",
    "out=out.txt",
    "tmp=work",
    "STEAMROOT=work",
    "i=0",
    "f=log-a.txt",
]

#: argv the dynamic oracle passes when executing safe scripts (`$1` etc.
#: must be sandbox-relative for the same reason as the preamble)
SAFE_ARGS = ["data", "out.txt"]


class ScriptGen:
    """One seeded generator instance; :meth:`script` returns the text."""

    MAX_DEPTH = 3

    def __init__(self, seed: int, safe: bool = False):
        self.rng = random.Random(seed)
        self.safe = safe
        self.commands = SAFE_COMMANDS if safe else COMMANDS
        self.words = SAFE_WORDS if safe else WORDS
        self.redirects = SAFE_REDIRECTS if safe else REDIRECTS
        self.case_subjects = (
            SAFE_CASE_SUBJECTS if safe
            else ["$1", '"$1"', "$x", "$(uname)", '"$#"']
        )

    # -- words ---------------------------------------------------------------

    def word(self) -> str:
        return self.rng.choice(self.words)

    def simple(self) -> str:
        parts = [self.rng.choice(self.commands)]
        if self.rng.random() < 0.4:
            parts.append(self.rng.choice(FLAGS))
        parts.extend(self.word() for _ in range(self.rng.randint(0, 3)))
        if self.rng.random() < 0.25:
            parts.append(self.rng.choice(self.redirects))
        return " ".join(parts)

    def assignment(self) -> str:
        name = self.rng.choice(NAMES)
        if self.rng.random() < 0.3:
            return f"{name}=$({self.simple()})"
        return f"{name}={self.word()}"

    # -- statements ----------------------------------------------------------

    def statement(self, depth: int) -> str:
        choices = [
            lambda: self.simple(),
            lambda: self.assignment(),
            lambda: self.pipeline(),
            lambda: self.list_stmt(),
        ]
        if depth < self.MAX_DEPTH:
            choices += [
                lambda: self.if_stmt(depth),
                lambda: self.for_stmt(depth),
                lambda: self.while_stmt(depth),
                lambda: self.case_stmt(depth),
                lambda: self.subshell(depth),
                lambda: self.background(),
                lambda: self.getopts_loop(depth),
            ]
        return self.rng.choice(choices)()

    def pipeline(self) -> str:
        n = self.rng.randint(2, 3)
        return " | ".join(self.simple() for _ in range(n))

    def list_stmt(self) -> str:
        op = self.rng.choice([" && ", " || ", "; "])
        return op.join(self.simple() for _ in range(2))

    def if_stmt(self, depth: int) -> str:
        cond = self.rng.choice(
            [f"[ -f {self.word()} ]", f"[ -d {self.word()} ]", self.simple()]
        )
        body = self.block(depth + 1)
        if self.rng.random() < 0.5:
            other = self.block(depth + 1)
            return f"if {cond}; then\n{body}\nelse\n{other}\nfi"
        return f"if {cond}; then\n{body}\nfi"

    def for_stmt(self, depth: int) -> str:
        var = self.rng.choice(NAMES)
        items = " ".join(self.word() for _ in range(self.rng.randint(1, 4)))
        return f"for {var} in {items}; do\n{self.block(depth + 1)}\ndone"

    def while_stmt(self, depth: int) -> str:
        if self.safe:
            # `absent.flag` is never created by fixtures or reachable
            # words, so the loop body runs zero times: guaranteed
            # termination while still exercising loop analysis
            return f"while [ -e absent.flag ]; do\n{self.block(depth + 1)}\ndone"
        return (
            f"while [ -e {self.word()} ]; do\n{self.block(depth + 1)}\ndone"
        )

    def getopts_loop(self, depth: int) -> str:
        """An option-parsing loop (the classic script prologue)."""
        optstring = self.rng.choice(OPTSTRINGS)
        var = self.rng.choice(["opt", "flag", "o"])
        if self.rng.random() < 0.5:
            letters = [c for c in optstring if c != ":"]
            arms = "\n".join(
                f"    {letter}) {self.simple()} ;;" for letter in letters
            )
            body = (
                f'  case "${var}" in\n{arms}\n'
                f"    ?) exit 2 ;;\n  esac"
            )
        else:
            body = f"  {self.simple()}"
        return (
            f'while getopts "{optstring}" {var}; do\n{body}\ndone'
        )

    def argc_guard(self) -> str:
        """The ubiquitous argument-count prologue guard."""
        count = self.rng.randint(1, 3)
        op = self.rng.choice(["-lt", "-ne", "-gt"])
        action = self.rng.choice(
            ["exit 1", 'echo "usage: $0" >&2; exit 1', "shift"]
        )
        return f'if [ "$#" {op} {count} ]; then {action}; fi'

    def case_stmt(self, depth: int) -> str:
        subject = self.rng.choice(self.case_subjects)
        arms = []
        for _ in range(self.rng.randint(1, 3)):
            arms.append(
                f"  {self.rng.choice(PATTERNS)}) {self.simple()} ;;"
            )
        body = "\n".join(arms)
        return f"case {subject} in\n{body}\nesac"

    def subshell(self, depth: int) -> str:
        return f"({self.block(depth + 1)})"

    def background(self) -> str:
        return f"{self.simple()} &"

    def block(self, depth: int) -> str:
        n = self.rng.randint(1, 2)
        return "\n".join(self.statement(depth) for _ in range(n))

    # -- whole scripts -------------------------------------------------------

    def script(self) -> str:
        lines: List[str] = []
        if self.rng.random() < 0.5:
            lines.append("#!/bin/sh")
        if self.safe:
            lines.extend(SAFE_PREAMBLE)
        if self.rng.random() < 0.3:
            # start like real scripts do: guard the argument count
            lines.append(self.argc_guard())
        for _ in range(self.rng.randint(2, 8)):
            lines.append(self.statement(0))
        text = "\n".join(lines) + "\n"
        if not self.safe and self.rng.random() < 0.2:
            text = self.mutate(text)
        return text

    def mutate(self, text: str) -> str:
        """Damage a well-formed script (truncation, bracket injection,
        quote removal) to exercise the error paths."""
        kind = self.rng.randrange(3)
        if kind == 0 and len(text) > 4:
            return text[: self.rng.randrange(1, len(text))]
        if kind == 1:
            pos = self.rng.randrange(len(text))
            return text[:pos] + self.rng.choice(")('\"`;|") + text[pos:]
        return text.replace('"', "", 1)


def generate(seed: int, safe: bool = False) -> str:
    """The script for one seed (deterministic)."""
    return ScriptGen(seed, safe=safe).script()
