"""Line-granular reproducer minimization (greedy ddmin).

Given a script and a predicate that holds on it (e.g. "the metamorphic
oracle still reports a diff" or "the static verdict still disagrees
with execution"), repeatedly drop lines while the predicate keeps
holding.  Deterministic: lines are probed in a fixed order, largest
chunks first, so the same input always minimizes to the same output.
"""

from __future__ import annotations

from typing import Callable, List


def minimize_lines(
    source: str,
    predicate: Callable[[str], bool],
    max_probes: int = 200,
) -> str:
    """The smallest line-subset of ``source`` still satisfying
    ``predicate`` (greedy, chunked).  Returns ``source`` unchanged when
    the predicate does not hold on it (nothing to preserve)."""
    lines = source.splitlines()
    if not predicate(source):
        return source
    probes = 0

    def attempt(candidate: List[str]) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        text = "\n".join(candidate) + ("\n" if candidate else "")
        try:
            return predicate(text)
        except Exception:
            return False

    chunk = max(1, len(lines) // 2)
    while chunk >= 1:
        changed = True
        while changed:
            changed = False
            index = 0
            while index < len(lines):
                candidate = lines[:index] + lines[index + chunk:]
                if candidate != lines and attempt(candidate):
                    lines = candidate
                    changed = True
                else:
                    index += chunk
        chunk //= 2
    return "\n".join(lines) + ("\n" if lines else "")
