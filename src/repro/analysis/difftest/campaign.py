"""Differential-testing campaigns and the precision benchmark.

A campaign takes N generator seeds (safe mode, so every script is
sandbox-executable) plus any corpus files, runs both oracles over each
script — metamorphic always, dynamic unless disabled — minimizes every
disagreement's reproducer, and aggregates per-checker FP/FN counts into
a deterministic benchmark document: same seeds, same counts, same
bytes.  Nothing host-specific (paths, timings, hostnames) reaches the
output, and keys are emitted sorted.

Fan-out mirrors :mod:`repro.analysis.batch`: one pool future per
script, inline fallback when process pools are unavailable, results
re-sorted by label so parallel and serial runs agree.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from . import dynamic as dynamic_oracle
from . import metamorphic as metamorphic_oracle
from .dynamic import CHECKERS, Disagreement
from .gen import generate
from .minimize import minimize_lines

#: version stamp for the benchmark document format
BENCH_FORMAT = 1


@dataclass(frozen=True)
class CampaignConfig:
    """What one campaign runs.  Frozen + picklable (crosses the pool
    boundary); everything in here is reflected in the benchmark's
    ``config`` block so two documents are comparable only when their
    configs match."""

    seeds: Tuple[int, ...] = tuple(range(50))
    corpus: Tuple[str, ...] = ()
    exec_enabled: bool = True
    meta_enabled: bool = True
    timeout: float = 10.0
    minimize: bool = True
    #: fork bound for every analyze() in the campaign.  Deliberately
    #: tighter than the analyzer default: generated scripts can nest
    #: forking constructs pathologically, and the campaign only compares
    #: the analyzer against itself and against execution under ONE
    #: consistent configuration — so a smaller, faster state space is
    #: sound here and keeps 50-seed campaigns in CI territory.
    max_fork: int = 16

    def analyze_kwargs(self) -> dict:
        return {"max_fork": self.max_fork}

    def to_dict(self) -> dict:
        return {
            "corpus": sorted(os.path.basename(p) for p in self.corpus),
            "exec": self.exec_enabled,
            "format": BENCH_FORMAT,
            "max_fork": self.max_fork,
            "meta": self.meta_enabled,
            "seeds": list(self.seeds),
        }


@dataclass
class ScriptOutcome:
    """Both oracles' verdicts on one script."""

    label: str
    executed: bool = False
    skipped_reason: str = ""
    checked: List[str] = field(default_factory=list)
    disagreements: List[Disagreement] = field(default_factory=list)
    meta_applied: List[str] = field(default_factory=list)
    meta_diffs: List[str] = field(default_factory=list)  # rewrite names


@dataclass
class CampaignResult:
    """Aggregated campaign outcome; :meth:`to_bench_dict` is the
    serialized benchmark form."""

    config: CampaignConfig
    outcomes: List[ScriptOutcome] = field(default_factory=list)

    @property
    def disagreements(self) -> List[Tuple[str, Disagreement]]:
        return [
            (outcome.label, d)
            for outcome in self.outcomes
            for d in outcome.disagreements
        ]

    @property
    def metamorphic_diff_count(self) -> int:
        return sum(len(o.meta_diffs) for o in self.outcomes)

    def to_bench_dict(self) -> dict:
        checkers: Dict[str, Dict[str, int]] = {
            name: {"checked": 0, "fn": 0, "fp": 0} for name in CHECKERS
        }
        rewrites: Dict[str, Dict[str, int]] = {}
        executed = skipped = 0
        for outcome in self.outcomes:
            if outcome.executed:
                executed += 1
            elif outcome.skipped_reason:
                skipped += 1
            for name in outcome.checked:
                checkers[name]["checked"] += 1
            for disagreement in outcome.disagreements:
                checkers[disagreement.checker][disagreement.kind] += 1
            for name in outcome.meta_applied:
                rewrites.setdefault(name, {"applied": 0, "diffs": 0})
                rewrites[name]["applied"] += 1
            for name in outcome.meta_diffs:
                rewrites.setdefault(name, {"applied": 0, "diffs": 0})
                rewrites[name]["diffs"] += 1
        return {
            "checkers": checkers,
            "config": self.config.to_dict(),
            "disagreements": [
                dict(script=label, **d.to_dict())
                for label, d in sorted(
                    self.disagreements, key=lambda pair: (pair[0], pair[1].code)
                )
            ],
            "metamorphic": {
                "rewrites": rewrites,
                "total_diffs": self.metamorphic_diff_count,
            },
            "scripts": {
                "executed": executed,
                "skipped": skipped,
                "total": len(self.outcomes),
            },
        }

    def to_json(self) -> str:
        """The canonical byte form: sorted keys, stable separators,
        trailing newline."""
        return json.dumps(self.to_bench_dict(), indent=2, sort_keys=True) + "\n"


# -- per-script worker --------------------------------------------------------


def _minimize_meta(source: str, rewrite: str, analyze_kwargs: dict) -> str:
    def still_diffs(candidate: str) -> bool:
        result = metamorphic_oracle.check_source(candidate, **analyze_kwargs)
        return any(d.rewrite == rewrite for d in result.diffs)

    return minimize_lines(source, still_diffs, max_probes=40)


def _minimize_dynamic(
    source: str,
    disagreement: Disagreement,
    base_dir: str,
    label: str,
    config: "CampaignConfig",
) -> str:
    def still_disagrees(candidate: str) -> bool:
        result = dynamic_oracle.check_source(
            candidate, base_dir, f"{label}.min", timeout=config.timeout,
            analyze_kwargs=config.analyze_kwargs(),
        )
        return any(
            d.checker == disagreement.checker and d.kind == disagreement.kind
            for d in result.disagreements
        )

    return minimize_lines(source, still_disagrees, max_probes=16)


def run_one(item: Tuple) -> dict:
    """Campaign body for one script (module-level so it pickles).

    ``item`` is ``(label, source, config, base_dir)``; the return value
    is a plain dict so it crosses the pool boundary.
    """
    label, source, config, base_dir = item
    outcome = {
        "label": label,
        "executed": False,
        "skipped_reason": "",
        "checked": [],
        "disagreements": [],
        "meta_applied": [],
        "meta_diffs": [],
    }
    if config.meta_enabled:
        meta = metamorphic_oracle.check_source(source, **config.analyze_kwargs())
        outcome["meta_applied"] = list(meta.rewrites_applied)
        outcome["meta_diffs"] = [d.rewrite for d in meta.diffs]
        if config.minimize:
            for diff in meta.diffs:
                minimized = _minimize_meta(
                    source, diff.rewrite, config.analyze_kwargs()
                )
                outcome["disagreements"].append(
                    {
                        "checker": "metamorphic",
                        "kind": "diff",
                        "code": f"rewrite:{diff.rewrite}",
                        "detail": (
                            f"diagnostics change under the {diff.rewrite} "
                            "rewrite"
                        ),
                        "reproducer": source,
                        "minimized": minimized,
                    }
                )
    if config.exec_enabled:
        result = dynamic_oracle.check_source(
            source, base_dir, label, timeout=config.timeout,
            analyze_kwargs=config.analyze_kwargs(),
        )
        outcome["executed"] = result.executed
        outcome["skipped_reason"] = result.skipped_reason
        outcome["checked"] = list(result.checked)
        for disagreement in result.disagreements:
            minimized = (
                _minimize_dynamic(source, disagreement, base_dir, label, config)
                if config.minimize
                else ""
            )
            record = disagreement.to_dict()
            if minimized:
                record["minimized"] = minimized
            outcome["disagreements"].append(record)
    return outcome


def _outcome_from_dict(data: dict) -> ScriptOutcome:
    meta_disagreements = []
    dyn_disagreements = []
    for record in data["disagreements"]:
        target = (
            meta_disagreements
            if record["checker"] == "metamorphic"
            else dyn_disagreements
        )
        target.append(
            Disagreement(
                checker=record["checker"],
                kind=record["kind"],
                code=record["code"],
                detail=record["detail"],
                reproducer=record["reproducer"],
                minimized=record.get("minimized", ""),
            )
        )
    return ScriptOutcome(
        label=data["label"],
        executed=data["executed"],
        skipped_reason=data["skipped_reason"],
        checked=list(data["checked"]),
        disagreements=meta_disagreements + dyn_disagreements,
        meta_applied=list(data["meta_applied"]),
        meta_diffs=list(data["meta_diffs"]),
    )


# -- the campaign -------------------------------------------------------------


def _campaign_items(
    config: CampaignConfig, base_dir: str
) -> List[Tuple[str, str, CampaignConfig, str]]:
    items: List[Tuple[str, str, CampaignConfig, str]] = []
    for seed in config.seeds:
        items.append(
            (f"seed-{seed:05d}", generate(seed, safe=True), config, base_dir)
        )
    for path in sorted(config.corpus):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            continue
        items.append((f"corpus-{os.path.basename(path)}", source, config, base_dir))
    return items


def _make_pool(jobs: int):
    import concurrent.futures as futures

    return futures.ProcessPoolExecutor(max_workers=jobs)


def run_campaign(
    config: Optional[CampaignConfig] = None,
    base_dir: Optional[str] = None,
    jobs: Optional[int] = None,
) -> CampaignResult:
    """Run the full campaign; ``jobs=None`` means ``os.cpu_count()``.

    Sandboxes live under ``base_dir`` (a fresh temporary directory when
    None, removed afterwards).  Output order and content are
    independent of ``jobs``.
    """
    config = config if config is not None else CampaignConfig()
    if jobs is None:
        jobs = os.cpu_count() or 1
    owned_tmp = None
    if base_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-difftest-")
        base_dir = owned_tmp.name
    try:
        items = _campaign_items(config, base_dir)
        raw = _drain(items, jobs)
        raw.sort(key=lambda data: data["label"])
        return CampaignResult(
            config=config,
            outcomes=[_outcome_from_dict(data) for data in raw],
        )
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()


def _drain(items: List[Tuple], jobs: int) -> List[dict]:
    if not items:
        return []
    if jobs > 1 and len(items) > 1:
        try:
            return _drain_pool(items, jobs)
        except (OSError, ImportError, RuntimeError):
            pass  # no multiprocessing here: degrade to inline
    return [run_one(item) for item in items]


def _drain_pool(items: List[Tuple], jobs: int) -> List[dict]:
    results: List[dict] = []
    executor = _make_pool(jobs)
    try:
        futures = [executor.submit(run_one, item) for item in items]
        for future, item in zip(futures, items):
            try:
                results.append(future.result())
            except Exception:  # noqa: BLE001 — BrokenProcessPool et al.
                results.append(run_one(item))  # retry inline, don't lose it
    finally:
        executor.shutdown()
    return results


# -- baseline comparison ------------------------------------------------------


def compare_to_baseline(bench: dict, baseline: dict) -> List[str]:
    """Regressions of ``bench`` relative to ``baseline`` (empty = pass).

    A regression is any per-checker FP/FN count above baseline or any
    metamorphic diff when the baseline has none; improvements (counts
    below baseline) pass and should prompt a baseline refresh.
    """
    problems: List[str] = []
    base_checkers = baseline.get("checkers", {})
    for name, counts in bench.get("checkers", {}).items():
        allowed = base_checkers.get(name, {"fn": 0, "fp": 0})
        for kind in ("fp", "fn"):
            if counts.get(kind, 0) > allowed.get(kind, 0):
                problems.append(
                    f"{name}: {kind} count {counts[kind]} exceeds baseline "
                    f"{allowed.get(kind, 0)}"
                )
    base_meta = baseline.get("metamorphic", {}).get("total_diffs", 0)
    got_meta = bench.get("metamorphic", {}).get("total_diffs", 0)
    if got_meta > base_meta:
        problems.append(
            f"metamorphic: {got_meta} diff(s) exceed baseline {base_meta}"
        )
    return problems
