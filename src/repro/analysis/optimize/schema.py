"""Plan-schema validation against the checked-in JSON Schema.

The validator is a deliberate hand-rolled subset of JSON Schema —
``type`` (including union lists), ``required``, ``properties``,
``items``, and ``enum`` — which is exactly what ``plan.schema.json``
uses.  Keeping it in-tree avoids a third-party ``jsonschema``
dependency while still letting CI validate every emitted plan against
the same document external consumers read.
"""

from __future__ import annotations

import json
import os
from typing import Any, List, Optional

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "plan.schema.json")

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; keep the JSON types disjoint
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def load_schema() -> dict:
    with open(SCHEMA_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_plan(data: Any, schema: Optional[dict] = None) -> List[str]:
    """All schema violations in ``data`` (empty list = valid)."""
    if schema is None:
        schema = load_schema()
    errors: List[str] = []
    _validate(data, schema, "$", errors)
    return errors


def _validate(value: Any, schema: dict, path: str, errors: List[str]) -> None:
    declared = schema.get("type")
    if declared is not None:
        allowed = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[t](value) for t in allowed):
            errors.append(
                f"{path}: expected {' or '.join(allowed)}, "
                f"got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")
        return
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in value:
                _validate(value[name], subschema, f"{path}.{name}", errors)
    elif isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for index, element in enumerate(value):
                _validate(element, items, f"{path}[{index}]", errors)
