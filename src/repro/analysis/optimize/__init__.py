"""Optimization-enabling dependence analysis (paper §5, "Performance").

The advisor combines two facts the analyzer already proves — the
RAW/WAR/WAW dependence graph over top-level commands (:mod:`..deps`)
and per-stage regular stream types (:mod:`repro.rtypes`) — into advice
a PaSh-like rewriter can act on: which pipeline stages split across
input chunks (and what merges the chunk outputs), and which whole
commands can safely run concurrently under ``&``.  Every reordering
suggestion is re-checked by the effect-graph race detector before it is
emitted.
"""

from .advisor import (
    OptimizeBatchResult,
    OptimizeFileResult,
    build_plan,
    optimize_source,
    plan_cache_key,
    run_optimize_batch,
)
from .classify import classify_argv, classify_pipeline, classify_stage
from .plan import (
    BLOCKING,
    CLASSES,
    COMMUTATIVE,
    PARALLELIZABLE,
    PLAN_SCHEMA_VERSION,
    STATELESS,
    UNKNOWN,
    UNSAFE,
    OptimizePlan,
    PipelinePlan,
    ReorderGroup,
    SplitRange,
    StagePlan,
)
from .schema import load_schema, validate_plan

__all__ = [
    "OptimizePlan", "PipelinePlan", "StagePlan", "SplitRange", "ReorderGroup",
    "OptimizeBatchResult", "OptimizeFileResult",
    "build_plan", "optimize_source", "plan_cache_key", "run_optimize_batch",
    "classify_argv", "classify_stage", "classify_pipeline",
    "load_schema", "validate_plan",
    "PLAN_SCHEMA_VERSION", "CLASSES",
    "STATELESS", "PARALLELIZABLE", "COMMUTATIVE", "BLOCKING", "UNSAFE",
    "UNKNOWN",
]
