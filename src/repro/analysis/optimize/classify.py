"""Parallelizability classification of pipeline stages (PaSh taxonomy).

Every stage of every pipeline gets one of the classes in
:mod:`plan` — ``stateless``, ``parallelizable``, ``commutative``,
``blocking``, ``unsafe``, ``unknown`` — with the *evidence* that licensed
it.  Evidence comes from three static sources, in order of strength:

1. **rtypes signatures**: a polymorphic ``∀α. α -> f(α)`` line-map
   signature (Filtered/Mapped output over the input variable) is proof
   the command treats lines independently — stateless by construction.
2. **the merge-operator table**: classic aggregators (``sort``, ``uniq``,
   ``wc``, ``grep -c``) are not line maps but still split, given the
   right operator to merge chunk outputs (``sort -m``, summation, ...).
3. **mined command specs**: a spec clause with write/create/delete
   effects means running the command once per input chunk would multiply
   its side effects — unsafe to split.

Anything without evidence stays ``unknown``; the advisor never promotes
a stage on absence of information.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...rtypes import (
    ConcatT,
    DataflowGraph,
    Filtered,
    Mapped,
    Signature,
    Stage,
    Var,
    signature_for,
)
from ...shell.ast import Command, Pipeline, SimpleCommand
from ...shell.printer import command_label, render
from ...specs import (
    Clause,
    CopiesTo,
    Creates,
    Deletes,
    LinksTo,
    WritesFile,
    default_registry,
)
from .plan import (
    BLOCKING,
    COMMUTATIVE,
    PARALLELIZABLE,
    STATELESS,
    UNKNOWN,
    UNSAFE,
    PipelinePlan,
    SplitRange,
    StagePlan,
)

#: builtins that read or mutate shell state; duplicating them per input
#: chunk (or hoisting them into a subshell) changes program meaning
STATE_BUILTINS = {
    "cd", "export", "unset", "set", "shift", "read", "getopts", "trap",
    "exec", "wait", "umask", "ulimit", ".", "source", "eval", "alias",
    "local", "readonly", "return", "break", "continue", "exit",
}

#: redirect operators that write the file system
_WRITE_REDIRECTS = {">", ">>", ">|", "<>"}

#: commands that ignore stdin and generate the stream (pipeline sources)
_PRODUCERS = {"echo", "seq", "ls", "lsb_release", "basename", "dirname"}

_MUTATING_EFFECTS = (WritesFile, Creates, Deletes, CopiesTo, LinksTo)


def argv_of(node: Command) -> Optional[List[str]]:
    """The statically-known argv of a simple command, or None when the
    command is compound or any word expands dynamically."""
    if not isinstance(node, SimpleCommand) or not node.words:
        return None
    argv: List[str] = []
    for word in node.words:
        text = word.literal_text()
        if text is None:
            return None
        argv.append(text)
    return argv


def _flagchars(argv: List[str]) -> set:
    return set(
        "".join(a[1:] for a in argv[1:] if a.startswith("-") and not a.startswith("--"))
    )


def _is_line_map(sig: Signature) -> bool:
    """True when the signature has the ``∀α. α -> f(α)`` line-map shape:
    output is the input variable filtered or mapped (or a concatenation
    involving it) — evidence the command never mixes information across
    lines."""
    if not sig.vars or not isinstance(sig.input, Var):
        return False
    out = sig.output
    if isinstance(out, (Filtered, Mapped)):
        return True
    if isinstance(out, ConcatT):
        return any(isinstance(part, (Var, Filtered, Mapped)) for part in out.parts)
    return False


def _spec_mutates(name: str) -> Optional[str]:
    """The spec-cited reason this command writes the file system, if the
    mined registry says it does."""
    spec = default_registry().get(name)
    if spec is None:
        return None
    for clause in spec.clauses:
        for effect in clause.effects:
            if isinstance(effect, _MUTATING_EFFECTS):
                return f"spec clause has {type(effect).__name__} effect"
    return None


def classify_argv(argv: Optional[List[str]]) -> Tuple[str, Optional[str], str, str]:
    """``(class, merge, evidence, role)`` for one statically-known argv."""
    if not argv:
        return UNKNOWN, None, "dynamic or compound command", "transformer"
    name = argv[0]
    flags = _flagchars(argv)

    if name in STATE_BUILTINS:
        return UNSAFE, None, f"'{name}' reads/mutates shell state", "transformer"

    if name in ("grep", "egrep", "fgrep"):
        if "c" in flags:
            return (
                COMMUTATIVE,
                "sum",
                "per-chunk match counts add up",
                "transformer",
            )
        sig = signature_for(argv)
        if sig is not None and _is_line_map(sig):
            return STATELESS, "cat", f"line-map signature: {sig.label}", "transformer"
        return UNKNOWN, None, "grep variant without a typed signature", "transformer"

    if name in ("sed", "tr", "cut", "awk"):
        sig = signature_for(argv)
        if sig is not None and _is_line_map(sig):
            return STATELESS, "cat", f"line-map signature: {sig.label}", "transformer"
        if name == "sed":
            ok, why = _sed_is_per_line(argv)
            if ok:
                return STATELESS, "cat", why, "transformer"
        if name == "cut":
            return STATELESS, "cat", "cut maps each line independently", "transformer"
        return UNKNOWN, None, f"untyped {name} program", "transformer"

    if name == "cat":
        if len(argv) == 1 or argv[1:] == ["-"]:
            return STATELESS, "cat", "identity over the stream", "transformer"
        return BLOCKING, None, "reads named files, not the pipe", "source"
    if name == "tac":
        return (
            PARALLELIZABLE,
            "tac-concat",
            "reverse chunks, then concatenate in reverse chunk order",
            "transformer",
        )
    if name == "sort":
        sort_flags = [a for a in argv[1:] if a.startswith("-")]
        merge = " ".join(["sort", "-m"] + sort_flags)
        return (
            COMMUTATIVE,
            merge,
            "total order is insensitive to input chunking",
            "transformer",
        )
    if name == "uniq":
        if "c" in flags:
            return (
                BLOCKING,
                None,
                "counts span chunk boundaries; no simple merge",
                "transformer",
            )
        return (
            PARALLELIZABLE,
            "uniq re-collapse",
            "re-run uniq over the concatenated chunk outputs",
            "transformer",
        )
    if name == "wc":
        return COMMUTATIVE, "sum", "per-chunk counts add up", "transformer"
    if name in ("head", "tail", "nl"):
        return (
            BLOCKING,
            None,
            f"{name} depends on absolute stream position",
            "transformer",
        )
    if name in _PRODUCERS:
        return BLOCKING, None, "producer: ignores stdin", "source"
    if name == "xargs":
        return UNKNOWN, None, "xargs re-invokes an inner command", "transformer"

    mutates = _spec_mutates(name)
    if mutates is not None:
        return UNSAFE, None, mutates, "transformer"

    sig = signature_for(argv)
    if sig is not None and _is_line_map(sig):
        return STATELESS, "cat", f"line-map signature: {sig.label}", "transformer"
    return UNKNOWN, None, "no signature or spec evidence", "transformer"


def _sed_is_per_line(argv: List[str]) -> Tuple[bool, str]:
    """A plain ``s///`` sed script with no address and no hold-space or
    multi-line commands rewrites each line independently."""
    operands = [a for a in argv[1:] if not a.startswith("-")]
    if len(operands) != 1:
        return False, ""
    script = operands[0]
    # script[0] == 's' means no address prefix (addresses would precede)
    if script.startswith("s") and len(script) > 3:
        delim = script[1]
        parts = script[2:].split(delim)
        if len(parts) >= 2:
            trailer = parts[2] if len(parts) >= 3 else ""
            if all(ch in "gip0123456789" for ch in trailer):
                return True, f"sed {script!r} substitutes within single lines"
    return False, ""


def classify_stage(node: Command, index: int) -> StagePlan:
    """Classify one pipeline stage, checking stage-local redirects."""
    argv = argv_of(node)
    text = command_label(node)
    klass, merge, evidence, role = classify_argv(argv)
    if isinstance(node, SimpleCommand):
        for redirect in node.redirects:
            if redirect.op in _WRITE_REDIRECTS:
                klass, merge, role = UNSAFE, None, role
                evidence = (
                    f"stage redirect '{redirect.op}' writes the file system; "
                    "per-chunk duplication would race"
                )
                break
    elif argv is None:
        evidence = "compound stage: internal control flow is opaque to splitting"
    return StagePlan(
        index=index,
        text=text,
        klass=klass,
        argv=argv,
        merge=merge,
        evidence=evidence,
        role=role,
    )


def _infer_stream_types(stages: List[StagePlan]) -> None:
    """Annotate each stage with its inferred output line language by
    running the rtypes dataflow fixpoint over the pipeline chain."""
    graph = DataflowGraph()
    for stage in stages:
        sig = signature_for(stage.argv) if stage.argv else None
        graph.add_stage(f"s{stage.index}", signature=sig)
    for left, right in zip(stages, stages[1:]):
        graph.connect(f"s{left.index}", f"s{right.index}")
    result = graph.infer(max_iterations=16)
    for stage in stages:
        inferred = result.types.get(f"s{stage.index}")
        if inferred is None or inferred.is_dead():
            continue
        stage.stream_type = inferred.describe()


def _split_ranges(stages: List[StagePlan]) -> List[SplitRange]:
    """Maximal stateless runs merge with ``cat``; each commutative or
    parallelizable stage splits on its own with its merge operator."""
    splits: List[SplitRange] = []
    run_start: Optional[int] = None

    def close_run(end: int) -> None:
        nonlocal run_start
        if run_start is None:
            return
        count = end - run_start + 1
        splits.append(
            SplitRange(
                begin=run_start,
                end=end,
                merge="cat",
                justification=(
                    f"{count} consecutive stateless line-map stage(s): chunks "
                    "can flow through independently and concatenate in order"
                ),
            )
        )
        run_start = None

    for stage in stages:
        if stage.klass == STATELESS:
            if run_start is None:
                run_start = stage.index
            continue
        close_run(stage.index - 1)
        if stage.klass in (COMMUTATIVE, PARALLELIZABLE) and stage.merge:
            splits.append(
                SplitRange(
                    begin=stage.index,
                    end=stage.index,
                    merge=stage.merge,
                    justification=stage.evidence,
                )
            )
    if stages and run_start is not None:
        close_run(stages[-1].index)
    return splits


def classify_pipeline(node: Pipeline, command_index: int, source_line: int) -> PipelinePlan:
    """The full stage-by-stage plan for one pipeline."""
    stages = [classify_stage(child, idx) for idx, child in enumerate(node.commands)]
    _infer_stream_types(stages)
    plan = PipelinePlan(
        command=command_index,
        line=source_line,
        source=render(node),
        stages=stages,
        splits=_split_ranges(stages),
    )
    if any(s.klass == UNSAFE for s in stages):
        plan.notes.append(
            "pipeline contains an unsafe stage; splits are limited to the "
            "segments around it"
        )
    if all(s.klass in (UNKNOWN, BLOCKING) for s in stages):
        plan.notes.append("no splittable stage found")
    return plan
