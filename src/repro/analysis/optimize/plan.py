"""The optimization plan: the advisor's machine-readable output.

A plan is what a PaSh-like rewriter would consume (paper §5,
"Performance"): per-pipeline stage classifications with split points and
merge operators, script-level reorder groups that are safe under ``&``,
the parallel schedule, and the dependence edges that justify every
decision.  The plan is deliberately **deterministic** — no timings, no
absolute paths — so a cached, server-returned, or re-rendered plan is
byte-identical to an inline run over the same source and configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: bump when the dict layout changes (salted into plan cache keys, so a
#: schema change invalidates exactly the plan entries)
PLAN_SCHEMA_VERSION = 1

#: the parallelizability taxonomy (PaSh-style)
STATELESS = "stateless"          # pure per-line map: split anywhere, merge by cat
PARALLELIZABLE = "parallelizable"  # splittable with a non-trivial merge operator
COMMUTATIVE = "commutative"      # order-insensitive aggregator (sort, wc)
BLOCKING = "blocking"            # consumes/ignores the whole stream; no split
UNSAFE = "unsafe"                # side effects: duplicating it per chunk is wrong
UNKNOWN = "unknown"              # no evidence either way

CLASSES = (STATELESS, PARALLELIZABLE, COMMUTATIVE, BLOCKING, UNSAFE, UNKNOWN)


@dataclass
class StagePlan:
    """One pipeline stage's classification."""

    index: int
    text: str                       # rendered source of the stage
    klass: str                      # one of CLASSES
    argv: Optional[List[str]] = None  # None when any argument is dynamic
    merge: Optional[str] = None     # merge operator for split execution
    evidence: str = ""              # the signature/spec fact that licensed it
    role: str = "transformer"       # "transformer" | "source"
    stream_type: Optional[str] = None  # inferred output line language

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "text": self.text,
            "class": self.klass,
            "argv": self.argv,
            "merge": self.merge,
            "evidence": self.evidence,
            "role": self.role,
            "stream_type": self.stream_type,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StagePlan":
        return cls(
            index=data.get("index", 0),
            text=data.get("text", ""),
            klass=data.get("class", UNKNOWN),
            argv=data.get("argv"),
            merge=data.get("merge"),
            evidence=data.get("evidence", ""),
            role=data.get("role", "transformer"),
            stream_type=data.get("stream_type"),
        )


@dataclass
class SplitRange:
    """A maximal run of stages that can run data-parallel over input
    chunks, with the operator that merges the chunk outputs."""

    begin: int
    end: int
    merge: str
    justification: str

    def to_dict(self) -> dict:
        return {
            "begin": self.begin,
            "end": self.end,
            "merge": self.merge,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SplitRange":
        return cls(
            begin=data.get("begin", 0),
            end=data.get("end", 0),
            merge=data.get("merge", "cat"),
            justification=data.get("justification", ""),
        )


@dataclass
class PipelinePlan:
    """Stage classification of one pipeline in the script."""

    command: int                    # index of the enclosing top-level command
    line: int
    source: str
    stages: List[StagePlan] = field(default_factory=list)
    splits: List[SplitRange] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "command": self.command,
            "line": self.line,
            "source": self.source,
            "stages": [s.to_dict() for s in self.stages],
            "splits": [s.to_dict() for s in self.splits],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelinePlan":
        return cls(
            command=data.get("command", 0),
            line=data.get("line", 0),
            source=data.get("source", ""),
            stages=[StagePlan.from_dict(s) for s in data.get("stages", ())],
            splits=[SplitRange.from_dict(s) for s in data.get("splits", ())],
            notes=list(data.get("notes", ())),
        )


@dataclass
class ReorderGroup:
    """Top-level commands with no dependence edges among them, verified
    safe to run concurrently under ``&`` ... ``wait``."""

    commands: List[int]
    sources: List[str]
    verified: bool
    justification: str

    def to_dict(self) -> dict:
        return {
            "commands": list(self.commands),
            "sources": list(self.sources),
            "verified": self.verified,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReorderGroup":
        return cls(
            commands=list(data.get("commands", ())),
            sources=list(data.get("sources", ())),
            verified=data.get("verified", False),
            justification=data.get("justification", ""),
        )


@dataclass
class OptimizePlan:
    """The advisor's full verdict on one script."""

    source_sha256: str = ""
    degraded: bool = False
    degraded_reason: Optional[str] = None
    commands: List[str] = field(default_factory=list)
    pipelines: List[PipelinePlan] = field(default_factory=list)
    groups: List[ReorderGroup] = field(default_factory=list)
    #: candidate groups the race-detector cross-check refused, with why —
    #: the advisor never emits a transform it cannot prove hazard-free
    rejected: List[dict] = field(default_factory=list)
    #: commands excluded from backgrounding, with why (shell-state
    #: mutations do not survive a ``&`` subshell)
    pinned: List[dict] = field(default_factory=list)
    schedule: List[List[int]] = field(default_factory=list)
    dependencies: List[dict] = field(default_factory=list)
    rewritten_script: Optional[str] = None

    SCHEMA_VERSION = PLAN_SCHEMA_VERSION

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe dict that :meth:`from_dict` restores exactly;
        ``OptimizePlan.from_dict(p.to_dict()).to_dict() == p.to_dict()``
        (the server round-trips plans through this identity so daemon
        responses are byte-identical to inline runs)."""
        return {
            "schema": self.SCHEMA_VERSION,
            "source_sha256": self.source_sha256,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "commands": list(self.commands),
            "pipelines": [p.to_dict() for p in self.pipelines],
            "groups": [g.to_dict() for g in self.groups],
            "rejected": [dict(r) for r in self.rejected],
            "pinned": [dict(p) for p in self.pinned],
            "schedule": [list(gen) for gen in self.schedule],
            "dependencies": [dict(d) for d in self.dependencies],
            "rewritten_script": self.rewritten_script,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OptimizePlan":
        return cls(
            source_sha256=data.get("source_sha256", ""),
            degraded=data.get("degraded", False),
            degraded_reason=data.get("degraded_reason"),
            commands=list(data.get("commands", ())),
            pipelines=[PipelinePlan.from_dict(p) for p in data.get("pipelines", ())],
            groups=[ReorderGroup.from_dict(g) for g in data.get("groups", ())],
            rejected=[dict(r) for r in data.get("rejected", ())],
            pinned=[dict(p) for p in data.get("pinned", ())],
            schedule=[list(gen) for gen in data.get("schedule", ())],
            dependencies=[dict(d) for d in data.get("dependencies", ())],
            rewritten_script=data.get("rewritten_script"),
        )

    def to_dot(self) -> str:
        """Graphviz export of the dependence graph with verified
        ``&``-groups highlighted (``repro-optimize --dot``)."""
        from ..viz import dependency_dot

        return dependency_dot(
            self.commands,
            self.dependencies,
            [group.commands for group in self.groups],
        )

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """The human-readable report (deterministic, like the dict)."""
        header = (
            f"optimization plan · sha256 {self.source_sha256[:12] or '?'} · "
            f"schema {self.SCHEMA_VERSION}"
        )
        if self.degraded:
            header += f" [degraded: {self.degraded_reason or 'budget exhausted'}]"
        lines = [header, "commands:"]
        for index, text in enumerate(self.commands):
            lines.append(f"  [{index}] {text}")
        if self.pipelines:
            lines.append("pipelines:")
            for pipe in self.pipelines:
                lines.append(f"  line {pipe.line}: {pipe.source}")
                for stage in pipe.stages:
                    merge = f"merge: {stage.merge}" if stage.merge else "no merge"
                    lines.append(
                        f"    [{stage.index}] {stage.text:<24} "
                        f"{stage.klass:<14} {merge}"
                    )
                    if stage.evidence:
                        lines.append(f"        — {stage.evidence}")
                    if stage.stream_type:
                        lines.append(f"        :: {stage.stream_type}")
                for split in pipe.splits:
                    stages = (
                        f"stage {split.begin}" if split.begin == split.end
                        else f"stages {split.begin}-{split.end}"
                    )
                    lines.append(
                        f"    split: {stages} data-parallel, merge with "
                        f"{split.merge!r} — {split.justification}"
                    )
                for note in pipe.notes:
                    lines.append(f"    note: {note}")
        if self.groups:
            lines.append("parallel groups ('&'-safe):")
            for group in self.groups:
                members = ",".join(map(str, group.commands))
                tag = "verified" if group.verified else "unverified"
                lines.append(f"  {{{members}}} [{tag}]: {group.justification}")
        if self.rejected:
            lines.append("rejected candidates:")
            for entry in self.rejected:
                members = ",".join(map(str, entry.get("commands", ())))
                lines.append(f"  {{{members}}}: {entry.get('reason', '?')}")
        if self.pinned:
            lines.append("pinned (never backgrounded):")
            for entry in self.pinned:
                lines.append(
                    f"  [{entry.get('command', '?')}] {entry.get('reason', '?')}"
                )
        lines.append(
            "schedule: "
            + (
                " | ".join(
                    "{" + ",".join(map(str, gen)) + "}" for gen in self.schedule
                )
                or "(empty)"
            )
        )
        if self.dependencies:
            lines.append("dependencies:")
            for dep in self.dependencies:
                lines.append(
                    f"  {dep.get('src')} -> {dep.get('dst')} "
                    f"[{dep.get('kind')} via {dep.get('via')}]"
                )
        else:
            lines.append("dependencies: none — all commands independent")
        if self.rewritten_script:
            lines.append("rewritten script:")
            for line in self.rewritten_script.splitlines():
                lines.append(f"  | {line}")
        summary = (
            f"{len(self.groups)} '&'-group(s), "
            f"{sum(len(p.splits) for p in self.pipelines)} split(s) across "
            f"{len(self.pipelines)} pipeline(s)"
        )
        lines.append(summary)
        return "\n".join(lines)
