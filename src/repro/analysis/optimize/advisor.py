"""The optimization advisor: dependence-directed reordering plus
pipeline parallelizability, with a race-detector safety gate.

The script-level half lifts :mod:`~repro.analysis.deps`'s RAW/WAR/WAW
graph to concrete advice: topological generations of the dependence
graph become candidate ``&``-groups, minus any command whose semantics
would change inside a background subshell (assignments, state builtins,
function definitions).  The pipeline half classifies every stage via
:mod:`.classify`.

**The safety gate**: every suggested reordering is *re-analyzed*.  The
advisor synthesizes the rewritten script (group members under ``&`` plus
a ``wait`` barrier), runs the effect-graph race detector over it, and
compares hazards against the original.  A candidate group survives only
if the rewrite introduces **zero new hazards** — so the advisor provably
never suggests a transform that trips its own race detector.  Groups that
fail the gate are reported under ``rejected`` with the evidence.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...obs import get_recorder
from ...shell.ast import (
    Background,
    Command,
    FunctionDef,
    Pipeline,
    SimpleCommand,
    walk,
)
from ...shell.printer import render
from ..analyzer import analyze
from ..batch import BatchConfig, _make_pool, discover
from ..cache import ResultCache, cache_key
from ..deps import _top_level_commands, analyze_dependencies
from .classify import STATE_BUILTINS, classify_pipeline
from .plan import PLAN_SCHEMA_VERSION, OptimizePlan, ReorderGroup


def plan_cache_key(source: str, config: BatchConfig) -> str:
    """Content address of one (script, config) plan.  The plan schema
    version rides in the fingerprint so bumping it invalidates exactly
    the plan entries, never the analysis reports sharing the cache."""
    return cache_key(
        source, config.fingerprint() + f";optimize-plan-v{PLAN_SCHEMA_VERSION}"
    )


def _via_stabilizer():
    """Symbolic fs node ids are process-global counters, so the raw
    ``node N`` labels differ between runs of the same script.  Renumber
    them in first-appearance order so plans are deterministic (cache,
    server, and inline runs must be byte-identical)."""
    import re

    seen: Dict[str, int] = {}

    def stabilize(via: str) -> str:
        def repl(match) -> str:
            raw = match.group(1)
            if raw not in seen:
                seen[raw] = len(seen)
            return f"node n{seen[raw]}"

        return re.sub(r"node (\d+)", repl, via)

    return stabilize


# ---------------------------------------------------------------------------
# pinning: commands whose meaning changes under `&`
# ---------------------------------------------------------------------------


def _pin_reason(node: Command, var_defs) -> Optional[str]:
    """Why this top-level command must never be backgrounded, or None."""
    if isinstance(node, Background):
        return "already backgrounded"
    if isinstance(node, FunctionDef):
        return "function definitions must stay in the parent shell"
    state = sorted(
        {
            sub.name
            for sub in walk(node)
            if isinstance(sub, SimpleCommand) and sub.name in STATE_BUILTINS
        }
    )
    if state:
        return f"state builtin(s) {', '.join(state)} would run in a subshell"
    if var_defs:
        names = ", ".join(f"${name}" for name in sorted(var_defs))
        return f"assignment(s) to {names} would not survive a '&' subshell"
    return None


# ---------------------------------------------------------------------------
# rewrite synthesis + race-detector cross-check
# ---------------------------------------------------------------------------


def _synthesize(
    nodes: List[Command],
    schedule: List[List[int]],
    groups_by_generation: Dict[int, List[int]],
) -> str:
    """The rewritten script: schedule order, with each chosen group's
    members backgrounded and joined by a ``wait`` barrier."""
    lines: List[str] = []
    for gen_index, generation in enumerate(schedule):
        group = groups_by_generation.get(gen_index, [])
        members = set(group)
        for index in generation:
            if index not in members:
                lines.append(render(nodes[index]))
        if group:
            for index in group:
                lines.append(f"{render(nodes[index])} &")
            lines.append("wait")
    return "\n".join(lines) + "\n"


def _race_keys(report) -> Counter:
    return Counter((d.code, d.message) for d in report.races())


def _verify(
    rewritten: str, config: BatchConfig, baseline_keys: Counter, rec
) -> Tuple[bool, Counter]:
    """Run the race detector over the rewritten script; safe iff zero
    hazards beyond the original's and the analysis fully completed."""
    rec.count("optimize.cross_checks")
    kwargs = config.analyze_kwargs()
    kwargs["races"] = True
    report = analyze(rewritten, budget=config.budget(), **kwargs)
    new = _race_keys(report) - baseline_keys
    return (not new and not report.degraded), new


def _rejection_reason(new_hazards: Counter) -> str:
    if not new_hazards:
        return "race-detector re-analysis did not complete (degraded)"
    codes = sorted({code for code, _ in new_hazards})
    total = sum(new_hazards.values())
    return (
        f"re-analysis of the rewrite surfaced {total} new hazard(s): "
        + ", ".join(codes)
    )


# ---------------------------------------------------------------------------
# the advisor
# ---------------------------------------------------------------------------


def build_plan(source: str, config: Optional[BatchConfig] = None) -> OptimizePlan:
    """The full optimization plan for one script.

    Budget exhaustion (``config.timeout`` / ``config.max_states``)
    degrades the plan — dependence edges past the trip point go
    conservative and the plan is marked — rather than raising.
    """
    config = config if config is not None else BatchConfig()
    rec = get_recorder()
    plan = OptimizePlan(
        source_sha256=hashlib.sha256(source.encode("utf-8")).hexdigest()
    )
    with rec.span("optimize.run"):
        rec.count("optimize.runs")

        with rec.span("optimize.deps"):
            graph = analyze_dependencies(
                source, n_args=config.n_args or 0, budget=config.budget()
            )
        plan.degraded = graph.degraded
        plan.degraded_reason = graph.degraded_reason
        plan.commands = [effect.source for effect in graph.effects]
        stabilize = _via_stabilizer()
        plan.dependencies = [
            {
                "src": dep.src,
                "dst": dep.dst,
                "kind": dep.kind,
                "via": stabilize(dep.via),
            }
            for dep in graph.dependencies
        ]
        plan.schedule = graph.stages()

        nodes = _top_level_commands(source)
        with rec.span("optimize.classify"):
            for index, node in enumerate(nodes):
                for sub in walk(node):
                    if isinstance(sub, Pipeline) and len(sub.commands) >= 2:
                        line = sub.pos.line if sub.pos else 0
                        pipe = classify_pipeline(sub, index, line)
                        plan.pipelines.append(pipe)
                        rec.count("optimize.pipelines")
                        rec.count("optimize.stages", len(pipe.stages))

        pinned: Dict[int, str] = {}
        for index, node in enumerate(nodes):
            reason = _pin_reason(node, graph.effects[index].var_defs)
            if reason is not None:
                pinned[index] = reason
                plan.pinned.append({"command": index, "reason": reason})

        # a topological generation is an antichain of the dependence
        # graph: its unpinned members are the candidate `&`-groups
        candidates: Dict[int, List[int]] = {}
        for gen_index, generation in enumerate(plan.schedule):
            free = [index for index in generation if index not in pinned]
            if len(free) >= 2:
                candidates[gen_index] = free

        with rec.span("optimize.verify"):
            kept = _gate_candidates(
                source, nodes, plan, candidates, config, rec
            )

        for gen_index in sorted(kept):
            group = kept[gen_index]
            rec.count("optimize.groups")
            plan.groups.append(
                ReorderGroup(
                    commands=list(group),
                    sources=[plan.commands[index] for index in group],
                    verified=True,
                    justification=(
                        f"no dependence edge among commands "
                        f"{{{','.join(map(str, group))}}} (generation "
                        f"{gen_index} of the schedule); rewrite re-analyzed "
                        f"with zero new race hazards"
                    ),
                )
            )
        if kept:
            plan.rewritten_script = _synthesize(nodes, plan.schedule, kept)
    return plan


def _gate_candidates(
    source: str,
    nodes: List[Command],
    plan: OptimizePlan,
    candidates: Dict[int, List[int]],
    config: BatchConfig,
    rec,
) -> Dict[int, List[int]]:
    """The safety gate: accept the whole rewrite if it's clean, else
    verify group-by-group and re-verify the surviving combination."""
    if not candidates:
        return {}
    kwargs = config.analyze_kwargs()
    kwargs["races"] = True
    baseline = analyze(source, budget=config.budget(), **kwargs)
    baseline_keys = _race_keys(baseline)
    if baseline.degraded:
        plan.degraded = True
        plan.degraded_reason = plan.degraded_reason or (
            "baseline race analysis incomplete; suggestions withheld"
        )
        for group in candidates.values():
            _reject(plan, rec, group, "baseline race analysis was degraded")
        return {}

    full = _synthesize(nodes, plan.schedule, candidates)
    ok, _ = _verify(full, config, baseline_keys, rec)
    if ok:
        return candidates

    kept: Dict[int, List[int]] = {}
    for gen_index in sorted(candidates):
        group = candidates[gen_index]
        alone = _synthesize(nodes, plan.schedule, {gen_index: group})
        ok, new = _verify(alone, config, baseline_keys, rec)
        if ok:
            kept[gen_index] = group
        else:
            _reject(plan, rec, group, _rejection_reason(new))
    if kept:
        combined = _synthesize(nodes, plan.schedule, kept)
        ok, new = _verify(combined, config, baseline_keys, rec)
        if not ok:
            for gen_index in sorted(kept):
                _reject(
                    plan,
                    rec,
                    kept[gen_index],
                    "clean alone but "
                    + _rejection_reason(new)
                    + " in combination",
                )
            kept = {}
    return kept


def _reject(plan: OptimizePlan, rec, group: List[int], reason: str) -> None:
    rec.count("optimize.groups_rejected")
    plan.rejected.append({"commands": list(group), "reason": reason})


def optimize_source(source: str, config: Optional[BatchConfig] = None) -> dict:
    """One script's serialized plan; never raises (the worker body —
    module-level so it pickles across the pool boundary)."""
    config = config if config is not None else BatchConfig()
    try:
        return build_plan(source, config).to_dict()
    except Exception as exc:  # noqa: BLE001 — per-file isolation
        plan = OptimizePlan(
            source_sha256=hashlib.sha256(source.encode("utf-8")).hexdigest(),
            degraded=True,
            degraded_reason=f"internal error: {type(exc).__name__}: {exc}",
        )
        return plan.to_dict()


# ---------------------------------------------------------------------------
# batch driver (mirrors analysis.batch, trafficking in plan dicts)
# ---------------------------------------------------------------------------


@dataclass
class OptimizeFileResult:
    path: str
    plan: OptimizePlan
    cached: bool = False
    seconds: float = 0.0


@dataclass
class OptimizeBatchResult:
    results: List[OptimizeFileResult] = field(default_factory=list)
    hits: int = 0
    misses: int = 0

    @property
    def degraded(self) -> bool:
        return any(r.plan.degraded for r in self.results)

    def render(self) -> str:
        """Per-file plan blocks plus a corpus summary; free of timing and
        cache details so warm reruns render byte-identically."""
        blocks = [
            f"== {result.path} ==\n{result.plan.render()}"
            for result in self.results
        ]
        groups = sum(len(r.plan.groups) for r in self.results)
        splits = sum(
            len(p.splits) for r in self.results for p in r.plan.pipelines
        )
        pipelines = sum(len(r.plan.pipelines) for r in self.results)
        summary = (
            f"{len(self.results)} file(s) planned: {groups} '&'-group(s), "
            f"{splits} split(s) across {pipelines} pipeline(s)"
        )
        degraded = sum(1 for r in self.results if r.plan.degraded)
        if degraded:
            summary += f"; {degraded} file(s) degraded"
        blocks.append(summary)
        return "\n\n".join(blocks)


def _optimize_pool_worker(item: Tuple[str, str, BatchConfig]) -> Tuple[str, dict, float]:
    path, source, config = item
    started = time.perf_counter()
    data = optimize_source(source, config)
    return path, data, time.perf_counter() - started


def run_optimize_batch(
    inputs: Sequence[str],
    config: Optional[BatchConfig] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> OptimizeBatchResult:
    """Plan every script reachable from ``inputs`` (files, directories,
    globs), consulting the plan cache and fanning cold files out to a
    process pool.  Plans always round-trip through
    ``OptimizePlan.from_dict(...to_dict())`` so cached, pooled, and
    inline runs render identically."""
    config = config if config is not None else BatchConfig()
    if jobs is None:
        jobs = os.cpu_count() or 1
    rec = get_recorder()
    batch = OptimizeBatchResult()
    slots: List[Optional[OptimizeFileResult]] = []
    pending: List[Tuple[int, str, str, str]] = []  # (slot, path, source, key)

    with rec.span("optimize.batch"):
        for path in discover(inputs):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                plan = OptimizePlan(
                    degraded=True, degraded_reason=f"read error: {exc}"
                )
                slots.append(OptimizeFileResult(path=path, plan=plan))
                continue
            key = plan_cache_key(source, config)
            if cache is not None:
                data = cache.get(key, schema=PLAN_SCHEMA_VERSION)
                if data is not None:
                    rec.count("optimize.cache.hit")
                    slots.append(
                        OptimizeFileResult(
                            path=path,
                            plan=OptimizePlan.from_dict(data),
                            cached=True,
                        )
                    )
                    continue
                rec.count("optimize.cache.miss")
            slots.append(None)
            pending.append((len(slots) - 1, path, source, key))

        for (slot, path, _, key), (data, seconds) in zip(
            pending, _drain(pending, config, jobs, rec)
        ):
            plan = OptimizePlan.from_dict(data)
            if cache is not None and not plan.degraded and cache.put(key, data):
                rec.count("optimize.cache.store")
            slots[slot] = OptimizeFileResult(
                path=path, plan=plan, cached=False, seconds=seconds
            )

    batch.results = [result for result in slots if result is not None]
    batch.hits = sum(1 for result in batch.results if result.cached)
    batch.misses = len(batch.results) - batch.hits
    return batch


def _drain(pending, config: BatchConfig, jobs: int, rec):
    """Yield ``(plan_dict, seconds)`` per pending file in input order;
    pool when it pays off, inline in pool-hostile sandboxes."""
    if not pending:
        return
    if jobs > 1 and len(pending) > 1:
        try:
            results = _drain_pool(pending, config, jobs)
        except (OSError, ImportError, RuntimeError):
            rec.count("optimize.pool_unavailable")
        else:
            yield from results
            return
    for _, _, source, _ in pending:
        started = time.perf_counter()
        data = optimize_source(source, config)
        yield data, time.perf_counter() - started


def _drain_pool(pending, config: BatchConfig, jobs: int):
    results: List[Tuple[dict, float]] = []
    executor = _make_pool(jobs)
    try:
        futures = [
            executor.submit(_optimize_pool_worker, (path, source, config))
            for _, path, source, _ in pending
        ]
        for future, (_, path, source, _) in zip(futures, pending):
            try:
                _, data, seconds = future.result()
            except Exception:  # noqa: BLE001 — dead worker loses one file
                started = time.perf_counter()
                data = optimize_source(source, config)
                seconds = time.perf_counter() - started
            results.append((data, seconds))
    finally:
        executor.shutdown()
    return results
