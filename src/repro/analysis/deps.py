"""Read/write dependency analysis between commands (paper §5,
"Performance").

"Shell state and file system reasoning can identify read-write
dependencies between commands in a script, which would allow speculative
execution systems like hS to reorder commands without needing to guard
against misspeculation, and incremental execution systems like Riker to
reduce the runtime tracing overhead."

The analyzer evaluates a script's top-level commands in order on the
symbolic engine, attributing every file-system event to the command that
caused it (across *all* explored paths), then derives the classic
dependence relations on abstract fs nodes:

- RAW (flow): i writes a node j later reads  → j must follow i
- WAR (anti): i reads a node j later writes  → j must follow i
- WAW (output): both write the same node     → order preserved

Environment-variable def/use pairs contribute dependencies the same way.
Commands unrelated by any edge can be reordered or parallelised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..checkers import default_checkers
from ..fs import FsOp
from ..shell import parse
from ..shell.ast import Command, Sequence as SeqNode, SimpleCommand, walk
from ..symex import Engine
from .resilience import AnalysisBudgetExceeded, ResourceBudget, use_budget

#: fs operations that constitute a write (mutation) vs a read
_WRITES = {FsOp.WRITE, FsOp.CREATE, FsOp.DELETE}
_READS = {FsOp.READ, FsOp.LIST, FsOp.STAT}


@dataclass
class CommandEffects:
    """Aggregated effects of one top-level command over all paths."""

    index: int
    source: str
    reads: Set[int] = field(default_factory=set)      # fs node ids
    writes: Set[int] = field(default_factory=set)
    var_uses: Set[str] = field(default_factory=set)
    var_defs: Set[str] = field(default_factory=set)
    external: bool = False  # unknown command: conservatively depends on all


@dataclass(frozen=True)
class Dependency:
    src: int
    dst: int
    kind: str   # "flow" | "anti" | "output" | "var" | "external"
    via: str    # human-readable cause

    def __str__(self) -> str:
        return f"{self.src} -> {self.dst} [{self.kind} via {self.via}]"


class DependencyGraph:
    def __init__(
        self,
        effects: List[CommandEffects],
        deps: List[Dependency],
        degraded: bool = False,
        degraded_reason: Optional[str] = None,
    ):
        self.effects = effects
        self.dependencies = deps
        #: the symbolic evaluation ran out of budget part-way: commands
        #: past the trip point are conservatively marked external, so the
        #: graph stays sound but over-ordered (a partial schedule)
        self.degraded = degraded
        self.degraded_reason = degraded_reason
        self.graph = nx.DiGraph()
        for effect in effects:
            self.graph.add_node(effect.index, source=effect.source)
        for dep in deps:
            self.graph.add_edge(dep.src, dep.dst)

    def independent_pairs(self) -> List[Tuple[int, int]]:
        """Command pairs with no ordering requirement (reorderable)."""
        pairs = []
        n = len(self.effects)
        closure = nx.transitive_closure(self.graph)
        for i in range(n):
            for j in range(i + 1, n):
                if not closure.has_edge(i, j) and not closure.has_edge(j, i):
                    pairs.append((i, j))
        return pairs

    def stages(self) -> List[List[int]]:
        """Parallel schedule: topological generations."""
        return [sorted(gen) for gen in nx.topological_generations(self.graph)]

    def must_precede(self, i: int, j: int) -> bool:
        closure = nx.transitive_closure(self.graph)
        return closure.has_edge(i, j)

    def render(self) -> str:
        lines = []
        for effect in self.effects:
            lines.append(f"[{effect.index}] {effect.source}")
        for dep in self.dependencies:
            lines.append(f"    {dep}")
        stages = self.stages()
        lines.append(
            "schedule: " + " | ".join("{" + ",".join(map(str, s)) + "}" for s in stages)
        )
        if self.degraded:
            lines.append(f"[degraded: {self.degraded_reason or 'budget exhausted'}]")
        return "\n".join(lines)


def _top_level_commands(source: str) -> List[Command]:
    ast = parse(source)
    if isinstance(ast, SeqNode):
        return list(ast.commands)
    return [ast]


#: builtins whose operands name variables they (re)define
_DEFINING_BUILTINS = {"read", "export", "local", "readonly", "unset"}


def _vars_of(node: Command) -> Tuple[Set[str], Set[str]]:
    """(uses, defs) of shell variables, syntactically.

    Defs made *inside command substitutions* run in a subshell and never
    escape to the enclosing shell, so only the substitution's **uses**
    propagate (``X=$(Y=5; echo a)`` defines ``X``, not ``Y``).  ``for``
    loop variables, ``case`` subjects/patterns, compound-command redirect
    targets, and the variable-defining builtins (``read``/``export``/...)
    are all scanned.
    """
    from ..shell.ast import (
        AndOr,
        Background,
        BraceGroup,
        Case,
        CmdSubPart,
        For,
        FunctionDef,
        If,
        ParamPart,
        Pipeline,
        Redirect,
        Sequence,
        Subshell,
        While,
        Word,
    )

    uses: Set[str] = set()
    defs: Set[str] = set()

    def scan_word(word: Word) -> None:
        for part in word.parts:
            if isinstance(part, ParamPart):
                uses.add(part.name)
                if part.arg is not None:
                    scan_word(part.arg)
                if part.op in ("=", ":="):
                    defs.add(part.name)
            elif isinstance(part, CmdSubPart):
                # subshell: reads come from the enclosing environment,
                # but assignments made inside never escape
                sub_uses, _sub_defs = _vars_of(part.command)
                uses.update(sub_uses)

    def scan_redirects(redirects: List[Redirect]) -> None:
        for redirect in redirects:
            scan_word(redirect.target)

    def scan(sub: Optional[Command]) -> None:
        if sub is None:
            return
        if isinstance(sub, SimpleCommand):
            for assignment in sub.assignments:
                defs.add(assignment.name)
                scan_word(assignment.value)
            for word in sub.words:
                scan_word(word)
            scan_redirects(sub.redirects)
            name = sub.name
            if name in _DEFINING_BUILTINS:
                for word in sub.words[1:]:
                    text = word.literal_text()
                    if text and not text.startswith("-"):
                        defs.add(text.split("=", 1)[0])
            elif name == "getopts" and len(sub.words) >= 3:
                text = sub.words[2].literal_text()
                if text:
                    defs.add(text)
                defs.update({"OPTIND", "OPTARG"})
        elif isinstance(sub, (Pipeline, Sequence)):
            for child in sub.commands:
                scan(child)
        elif isinstance(sub, AndOr):
            scan(sub.left)
            scan(sub.right)
        elif isinstance(sub, Background):
            scan(sub.command)
        elif isinstance(sub, (Subshell, BraceGroup)):
            scan(sub.body)
            scan_redirects(sub.redirects)
        elif isinstance(sub, If):
            scan(sub.cond)
            scan(sub.then)
            for clause in sub.elifs:
                scan(clause.cond)
                scan(clause.then)
            scan(sub.else_)
            scan_redirects(sub.redirects)
        elif isinstance(sub, While):
            scan(sub.cond)
            scan(sub.body)
            scan_redirects(sub.redirects)
        elif isinstance(sub, For):
            defs.add(sub.var)
            for word in sub.words or []:
                scan_word(word)
            scan(sub.body)
            scan_redirects(sub.redirects)
        elif isinstance(sub, Case):
            scan_word(sub.subject)
            for item in sub.items:
                for pattern in item.patterns:
                    scan_word(pattern)
                scan(item.body)
            scan_redirects(sub.redirects)
        elif isinstance(sub, FunctionDef):
            scan(sub.body)

    scan(node)
    return uses, defs


def analyze_dependencies(
    source: str,
    n_args: int = 0,
    budget: Optional[ResourceBudget] = None,
) -> DependencyGraph:
    """Build the dependency graph of a script's top-level commands.

    ``budget`` bounds the per-command symbolic evaluation (wall clock and
    state count).  On exhaustion the analysis does not raise: the command
    that tripped the budget and every later command are conservatively
    marked external (ordered after everything), and the returned graph
    carries ``degraded=True`` with the reason.
    """
    commands = _top_level_commands(source)
    engine = Engine(checkers=default_checkers(), budget=budget)
    engine.script_assigned = set()
    from ..symex.engine import _assigned_names

    ast = parse(source)
    engine.script_assigned = _assigned_names(ast)
    states = [engine.initial_state(n_args=n_args)]

    if budget is not None:
        budget.start()
    degraded = False
    degraded_reason: Optional[str] = None

    effects: List[CommandEffects] = []
    with use_budget(budget):
        for index, command in enumerate(commands):
            raw = _render_command(command, source)
            uses, defs = _vars_of(command)
            effect = CommandEffects(
                index=index, source=raw, var_uses=uses, var_defs=defs
            )
            if degraded:
                # past the budget trip: no evaluation, conservative order
                effect.external = True
                effects.append(effect)
                continue
            marks = [(state, len(state.fs.log)) for state in states]
            next_states = []
            try:
                for state, mark in marks:
                    for result in engine.eval(command, state):
                        for event in result.fs.log.since(mark):
                            if event.node is None:
                                continue
                            if event.op in _WRITES:
                                effect.writes.add(event.node)
                                # writing a node requires its ancestors to
                                # exist: record them as reads so `mkdir /d`
                                # -> `cmd >/d/f` yields a flow dependency
                                parent = result.fs.nodes[event.node].parent
                                while parent is not None:
                                    effect.reads.add(parent)
                                    parent = result.fs.nodes[parent].parent
                            elif event.op in _READS:
                                effect.reads.add(event.node)
                        next_states.append(result)
            except AnalysisBudgetExceeded as exc:
                degraded = True
                degraded_reason = str(exc)
                effect.external = True
                effects.append(effect)
                continue
            has_unknown = any(
                isinstance(sub, SimpleCommand)
                and sub.name is not None
                and engine.registry.get(sub.name) is None
                and not _is_builtin_name(sub.name)
                and sub.name not in _assigned_functions(ast)
                for sub in walk(command)
            )
            effect.external = has_unknown
            effects.append(effect)
            states = next_states[: engine.max_fork]

    deps = _derive_dependencies(effects)
    return DependencyGraph(
        effects, deps, degraded=degraded, degraded_reason=degraded_reason
    )


def _is_builtin_name(name: str) -> bool:
    from ..symex import builtins as builtins_mod

    return builtins_mod.is_builtin(name)


def _assigned_functions(ast: Command) -> Set[str]:
    from ..shell.ast import FunctionDef

    return {node.name for node in walk(ast) if isinstance(node, FunctionDef)}


def _derive_dependencies(effects: List[CommandEffects]) -> List[Dependency]:
    deps: List[Dependency] = []
    seen: Set[Tuple[int, int, str]] = set()

    def add(src: int, dst: int, kind: str, via: str):
        key = (src, dst, kind)
        if key not in seen:
            seen.add(key)
            deps.append(Dependency(src, dst, kind, via))

    for j, later in enumerate(effects):
        for i in range(j):
            earlier = effects[i]
            for node in earlier.writes & later.reads:
                add(i, j, "flow", f"node {node}")
            for node in earlier.reads & later.writes:
                add(i, j, "anti", f"node {node}")
            for node in earlier.writes & later.writes:
                add(i, j, "output", f"node {node}")
            for name in earlier.var_defs & later.var_uses:
                add(i, j, "var", f"${name}")
            for name in earlier.var_uses & later.var_defs:
                # WAR on a variable: reordering would let the later
                # redefinition clobber the value the earlier command read
                add(i, j, "var", f"${name} (write-after-read)")
            for name in earlier.var_defs & later.var_defs:
                add(i, j, "var", f"${name} (redefinition)")
            if earlier.external or later.external:
                add(i, j, "external", "opaque command effects")
    return deps


#: public alias: the pairwise RAW/WAR/WAW derivation is also the
#: invalidation structure for fragment-level incremental analysis
#: (repro.analysis.incremental builds synthetic per-fragment
#: CommandEffects rows and reuses exactly this edge derivation)
derive_dependencies = _derive_dependencies


def _render_command(command: Command, source: str) -> str:
    pos = getattr(command, "pos", None)
    if pos is not None:
        lines = source.splitlines()
        if 0 < pos.line <= len(lines):
            return lines[pos.line - 1].strip()
    return type(command).__name__
