"""The end-to-end analyzer: parse → annotations → symbolic execution →
checkers → report.  The public entry point of the library."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..checkers import Checker, default_checkers
from ..diag import Diagnostic, dedupe
from ..lint import lint as run_lint
from ..obs import get_recorder
from ..shell import parse as parse_shell
from ..shell.lexer import ShellSyntaxError
from ..specs import SpecRegistry
from ..symex import Engine
from .annotations import AnnotationSet, load_annotation_file, merge_annotations, parse_annotations
from .report import Report


def analyze(
    source: str,
    n_args: int = 0,
    platform_targets: Optional[Sequence[str]] = None,
    registry: Optional[SpecRegistry] = None,
    checkers: Optional[List[Checker]] = None,
    include_lint: bool = False,
    use_annotations: bool = True,
    annotation_files: Optional[Sequence[str]] = None,
    max_fork: int = 64,
    max_loop: int = 2,
    prune: bool = True,
    races: bool = True,
) -> Report:
    """Statically analyze a shell script.

    - ``n_args``: how many positional arguments to model symbolically
      (overridden by a ``# @args N`` annotation).
    - ``platform_targets``: deployment platforms for portability checks
      (overridden by ``# @platforms ...``).
    - ``include_lint``: additionally run the syntactic baseline and merge
      its findings (tagged ``source="lint"``).
    - ``races``: run the effect-graph hazard analysis (file-system races
      over ``&``/``wait``); ignored when ``checkers`` is given explicitly.
    """
    recorder = get_recorder()

    with recorder.span("analyze.parse"):
        annotations = parse_annotations(source) if use_annotations else AnnotationSet()
        if annotation_files:
            external = [load_annotation_file(path) for path in annotation_files]
            annotations = merge_annotations(*external, annotations)
        if annotations.n_args is not None:
            n_args = annotations.n_args
        if annotations.platforms:
            platform_targets = annotations.platforms
        try:
            ast = parse_shell(source)
        except ShellSyntaxError as exc:
            from ..diag import Severity

            recorder.count("analyze.syntax_errors")
            return Report(
                source=source,
                diagnostics=[
                    Diagnostic(
                        code="syntax-error",
                        message=str(exc),
                        severity=Severity.ERROR,
                        pos=exc.pos,
                        always=True,
                    )
                ],
            )

    if checkers is None:
        checkers = default_checkers(platform_targets=platform_targets, races=races)

    engine = Engine(
        registry=registry,
        checkers=checkers,
        max_fork=max_fork,
        max_loop=max_loop,
        prune=prune,
        signature_overrides=annotations.signatures,
        initial_env=annotations.variables,
    )

    with recorder.span("analyze.symex"):
        result = engine.run(ast, n_args=n_args)

    diagnostics = list(result.diagnostics)
    if include_lint:
        with recorder.span("analyze.lint"):
            diagnostics.extend(run_lint(source))

    return Report(
        source=source,
        diagnostics=dedupe(diagnostics),
        paths_explored=result.paths_explored,
        paths_merged=result.paths_merged,
        states=len(result.states),
        truncations=result.truncations,
    )
