"""The end-to-end analyzer: parse → annotations → symbolic execution →
checkers → report.  The public entry point of the library.

Resilience invariant (enforced by the fault-injection suite under
``tests/robustness/``): :func:`analyze` **never raises** and always
returns a renderable :class:`Report`.  Resource-budget exhaustion
(deadline, state cap, DFA cap, nesting depth) becomes a *partial*
report carrying an INFO ``analysis-degraded`` diagnostic; any other
internal crash becomes an ``internal-error`` diagnostic with an
exception digest.  Degraded reports are never cached.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..checkers import Checker, default_checkers
from ..diag import Diagnostic, Severity, dedupe
from ..lint import lint as run_lint
from ..obs import get_recorder
from ..shell import parse as parse_shell
from ..shell.lexer import ShellSyntaxError
from ..shell.parser import ParseDepthExceeded
from ..specs import SpecRegistry
from ..symex import Engine
from .annotations import AnnotationSet, load_annotation_file, merge_annotations, parse_annotations
from .report import Report
from .resilience import (
    AnalysisBudgetExceeded,
    ResourceBudget,
    degraded_diagnostic,
    internal_error_diagnostic,
    use_budget,
)


def analyze(
    source: str,
    n_args: Optional[int] = None,
    args: Optional[Sequence[str]] = None,
    platform_targets: Optional[Sequence[str]] = None,
    registry: Optional[SpecRegistry] = None,
    checkers: Optional[List[Checker]] = None,
    include_lint: bool = False,
    use_annotations: bool = True,
    annotation_files: Optional[Sequence[str]] = None,
    max_fork: int = 64,
    max_loop: int = 2,
    prune: bool = True,
    races: bool = True,
    budget: Optional[ResourceBudget] = None,
    incremental=None,
) -> Report:
    """Statically analyze a shell script.

    - ``n_args``: how many positional arguments to model symbolically;
      ``None`` (the default) models argv as *unknown at entry* — an
      unconstrained list with a symbolic ``$#`` (overridden by a
      ``# @args N`` annotation).
    - ``args``: concrete argument values (``repro-analyze --args a b``);
      takes precedence over ``n_args``.
    - ``platform_targets``: deployment platforms for portability checks
      (overridden by ``# @platforms ...``).
    - ``include_lint``: additionally run the syntactic baseline and merge
      its findings (tagged ``source="lint"``).
    - ``races``: run the effect-graph hazard analysis (file-system races
      over ``&``/``wait``); ignored when ``checkers`` is given explicitly.
    - ``budget``: resource limits for this analysis (wall-clock deadline,
      symbolic-state cap, DFA cap, nesting depth); exhaustion degrades
      the report instead of raising.
    - ``incremental``: an :class:`repro.analysis.incremental.IncrementalSession`
      to serve function-body evaluations from per-fragment summaries.
      The report stays byte-identical to a cold run; ignored when a
      custom ``registry`` or ``checkers`` list is supplied (their
      behaviour is not part of the fragment cache key).

    Never raises: crashes and budget exhaustion degrade to diagnostics.
    """
    recorder = get_recorder()
    try:
        return _analyze(
            source,
            n_args=n_args,
            args=args,
            platform_targets=platform_targets,
            registry=registry,
            checkers=checkers,
            include_lint=include_lint,
            use_annotations=use_annotations,
            annotation_files=annotation_files,
            max_fork=max_fork,
            max_loop=max_loop,
            prune=prune,
            races=races,
            budget=budget,
            incremental=incremental,
        )
    except AnalysisBudgetExceeded as exc:
        # a budget trip outside the per-phase guards (defensive belt)
        recorder.count("analyze.degraded")
        return Report(
            source=source,
            diagnostics=[degraded_diagnostic(exc, "no partial results available")],
        )
    except Exception as exc:  # noqa: BLE001 — the crash-isolation boundary
        recorder.count("analyze.internal_errors")
        return Report(
            source=source,
            diagnostics=[internal_error_diagnostic("analysis", exc)],
        )


def _analyze(
    source: str,
    n_args: Optional[int],
    args: Optional[Sequence[str]],
    platform_targets: Optional[Sequence[str]],
    registry: Optional[SpecRegistry],
    checkers: Optional[List[Checker]],
    include_lint: bool,
    use_annotations: bool,
    annotation_files: Optional[Sequence[str]],
    max_fork: int,
    max_loop: int,
    prune: bool,
    races: bool,
    budget: Optional[ResourceBudget],
    incremental=None,
) -> Report:
    recorder = get_recorder()
    if budget is not None:
        budget.start()  # fresh deadline + state meter per file

    with recorder.span("analyze.parse"):
        annotations = parse_annotations(source) if use_annotations else AnnotationSet()
        if annotation_files:
            external = [load_annotation_file(path) for path in annotation_files]
            annotations = merge_annotations(*external, annotations)
        if annotations.n_args is not None:
            n_args = annotations.n_args
        if annotations.platforms:
            platform_targets = annotations.platforms
        try:
            max_depth = budget.max_depth if budget is not None else None
            ast = parse_shell(source, max_depth=max_depth)
        except ParseDepthExceeded as exc:
            recorder.count("analyze.degraded")
            trip = AnalysisBudgetExceeded("parse", "depth", str(exc))
            return Report(
                source=source,
                diagnostics=[
                    degraded_diagnostic(trip, "nothing analyzed"),
                ],
            )
        except ShellSyntaxError as exc:
            recorder.count("analyze.syntax_errors")
            return Report(
                source=source,
                diagnostics=[
                    Diagnostic(
                        code="syntax-error",
                        message=str(exc),
                        severity=Severity.ERROR,
                        pos=exc.pos,
                        always=True,
                    )
                ],
            )

    default_checker_set = checkers is None
    if checkers is None:
        checkers = default_checkers(platform_targets=platform_targets, races=races)

    engine = Engine(
        registry=registry,
        checkers=checkers,
        max_fork=max_fork,
        max_loop=max_loop,
        prune=prune,
        signature_overrides=annotations.signatures,
        initial_env=annotations.variables,
        budget=budget,
    )

    if incremental is not None and registry is None and default_checker_set:
        # everything that shapes a fragment's evaluation besides the
        # entry state itself must be part of the summary key; the
        # entry-state fingerprint covers env/params/options, this covers
        # the engine's construction parameters
        config_fp = repr(
            (
                n_args,
                tuple(args) if args is not None else None,
                tuple(platform_targets) if platform_targets else None,
                races,
                max_fork,
                max_loop,
                prune,
                tuple(sorted(
                    (name, str(sig))
                    for name, sig in annotations.signatures.items()
                )),
                tuple(sorted(
                    (name, regex.pattern)
                    for name, regex in annotations.variables.items()
                )),
            )
        )
        engine.fragment_memo = incremental._attach(source, ast, config_fp)

    diagnostics: List[Diagnostic] = []
    paths_explored = paths_merged = states = truncations = 0
    try:
        with recorder.span("analyze.symex"), use_budget(budget):
            result = engine.run(ast, n_args=n_args, args=args)
    except AnalysisBudgetExceeded as exc:
        recorder.count("analyze.degraded")
        diagnostics.append(
            degraded_diagnostic(
                exc,
                f"{engine.paths_explored} path step(s) analyzed before the limit",
            )
        )
        paths_explored = engine.paths_explored
        paths_merged = engine.paths_merged
        truncations = engine.truncations
    else:
        diagnostics.extend(result.diagnostics)
        paths_explored = result.paths_explored
        paths_merged = result.paths_merged
        states = len(result.states)
        truncations = result.truncations

    if include_lint:
        # the syntactic baseline is independent of the semantic phases:
        # run it even for degraded analyses, and isolate its crashes
        with recorder.span("analyze.lint"):
            try:
                diagnostics.extend(run_lint(source))
            except Exception as exc:  # noqa: BLE001
                recorder.count("analyze.internal_errors")
                diagnostics.append(internal_error_diagnostic("lint", exc))

    return Report(
        source=source,
        diagnostics=dedupe(diagnostics),
        paths_explored=paths_explored,
        paths_merged=paths_merged,
        states=states,
        truncations=truncations,
    )
