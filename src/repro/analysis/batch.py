"""Corpus-scale batch analysis.

The paper's ahead-of-time framing (§2, §6) amortizes analysis across
whole script corpora; per-file independence makes that embarrassingly
parallel.  This driver accepts files, directories, and glob patterns,
fans the work out to a process pool, and consults the persistent
:mod:`~repro.analysis.cache` so unchanged files cost one hash + one
read on re-analysis instead of a symbolic execution.

Crash containment: each file is submitted to the pool as its own
future, so one file killing its worker (OOM, segfault in an extension,
``os._exit``) cannot take the rest of the batch with it.  A file whose
worker died is retried once inline under a *tightened*
:class:`~repro.analysis.resilience.ResourceBudget`; if the retry also
fails, the file is quarantined — it still gets a renderable report
carrying an ``analysis-quarantined`` diagnostic.  Degraded and
quarantined reports are never written to the result cache, so a later
run re-analyzes those files from scratch.

Counters (visible via ``--stats``): ``batch.files``,
``batch.cache.hit`` / ``batch.cache.miss`` / ``batch.cache.store``,
``batch.worker_failures`` / ``batch.retries`` / ``batch.quarantined``;
per-file analysis seconds feed the ``batch.file_seconds`` histogram so
the stats table shows aggregate CPU time next to wall time (their ratio
is the realized parallel speedup).
"""

from __future__ import annotations

import glob as glob_mod
import os
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..diag import Diagnostic, Severity
from ..obs import get_recorder
from .analyzer import analyze
from .cache import ResultCache, cache_key
from .report import Report
from .resilience import ResourceBudget, quarantine_diagnostic

#: extensions treated as shell scripts when scanning a directory
SCRIPT_EXTENSIONS = (".sh", ".bash")


@dataclass(frozen=True)
class BatchConfig:
    """The analyzer options one batch run applies to every file.

    Frozen + picklable (crosses the process-pool boundary) and
    fingerprintable (feeds the cache key, so flipping any option
    invalidates exactly the affected entries).
    """

    #: ``None`` models argv as unknown-at-entry (the default);
    #: an int asks for that many symbolic positional parameters
    n_args: Optional[int] = None
    #: concrete argument values (``--args a b c``); wins over ``n_args``
    args: Optional[Tuple[str, ...]] = None
    platform_targets: Optional[Tuple[str, ...]] = None
    include_lint: bool = False
    max_fork: int = 64
    max_loop: int = 2
    prune: bool = True
    races: bool = True
    #: resource limits (``--timeout`` / ``--max-states``).  Deliberately
    #: EXCLUDED from :meth:`fingerprint`: a completed report does not
    #: depend on how generous the budget was, and budget-exhausted
    #: (degraded) reports are never cached — so results computed under
    #: one budget are safely reusable under any other.
    timeout: Optional[float] = None
    max_states: Optional[int] = None

    def fingerprint(self) -> str:
        return (
            f"n_args={self.n_args};args={self.args};"
            f"platforms={self.platform_targets};"
            f"lint={self.include_lint};max_fork={self.max_fork};"
            f"max_loop={self.max_loop};prune={self.prune};races={self.races}"
        )

    def analyze_kwargs(self) -> dict:
        return {
            "n_args": self.n_args,
            "args": self.args,
            "platform_targets": self.platform_targets,
            "include_lint": self.include_lint,
            "max_fork": self.max_fork,
            "max_loop": self.max_loop,
            "prune": self.prune,
            "races": self.races,
        }

    def budget(self) -> Optional[ResourceBudget]:
        """The per-file budget this config implies, or None."""
        if self.timeout is None and self.max_states is None:
            return None
        return ResourceBudget(deadline=self.timeout, max_states=self.max_states)


@dataclass
class FileResult:
    """One analyzed file: its report plus how the result was obtained."""

    path: str
    report: Report
    cached: bool = False
    seconds: float = 0.0
    #: the worker died and the bounded inline retry failed too; the
    #: report is a stub carrying an ``analysis-quarantined`` diagnostic
    quarantined: bool = False


@dataclass
class BatchResult:
    """Per-file results (in input order) plus corpus-level accounting."""

    results: List[FileResult] = field(default_factory=list)
    hits: int = 0
    misses: int = 0

    @property
    def unsafe(self) -> bool:
        return any(r.report.unsafe for r in self.results)

    @property
    def degraded(self) -> bool:
        """At least one file's analysis did not fully complete."""
        return any(r.quarantined or r.report.degraded for r in self.results)

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        """Aggregated multi-file output: per-file headers plus a corpus
        summary line.  Deliberately free of cache/timing details so a
        fully-warm rerun is byte-identical to the cold run."""
        blocks = []
        errors = warnings = infos = flagged = degraded = 0
        for result in self.results:
            report = result.report
            errors += len(report.errors())
            warnings += len(report.warnings())
            infos += len(report.infos())
            if not report.ok:
                flagged += 1
            if result.quarantined or report.degraded:
                degraded += 1
            blocks.append(f"== {result.path} ==\n{report.render(min_severity)}")
        summary = (
            f"{len(self.results)} file(s) analyzed: {errors} error(s), "
            f"{warnings} warning(s), {infos} note(s); {flagged} file(s) flagged"
        )
        if degraded:
            summary += f"; {degraded} file(s) degraded"
        blocks.append(summary)
        return "\n\n".join(blocks)


def discover(inputs: Sequence[str]) -> List[str]:
    """Expand files, directories, and glob patterns into a sorted,
    deduplicated list of script paths.

    Explicit file arguments are always included; directories are walked
    recursively for ``*.sh`` / ``*.bash``; anything else is tried as a
    glob pattern.
    """
    found: List[str] = []
    for item in inputs:
        if os.path.isdir(item):
            for dirpath, dirnames, filenames in os.walk(item):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(SCRIPT_EXTENSIONS):
                        found.append(os.path.join(dirpath, name))
        elif os.path.isfile(item):
            found.append(item)
        else:
            found.extend(
                path
                for path in glob_mod.glob(item, recursive=True)
                if os.path.isfile(path)
            )
    seen = set()
    unique: List[str] = []
    for path in sorted(found):
        normal = os.path.normpath(path)
        if normal not in seen:
            seen.add(normal)
            unique.append(normal)
    return unique


def _read_error_report(source: str, message: str) -> Report:
    return Report(
        source=source,
        diagnostics=[
            Diagnostic(
                code="read-error",
                message=message,
                severity=Severity.ERROR,
                always=True,
            )
        ],
    )


def analyze_source(source: str, config: BatchConfig) -> dict:
    """Analyze one script and return its serialized report (the worker
    body; module-level so it pickles across the pool boundary)."""
    return analyze(source, budget=config.budget(), **config.analyze_kwargs()).to_dict()


def _pool_worker(item: Tuple) -> Tuple[str, dict, float, Optional[dict]]:
    """Pool body: analyze one file; when the parent's recorder is live
    (``traced``), capture the worker-side metrics in a fresh recorder
    and ship the snapshot back as a dict (snapshots are the only metric
    type that crosses the process boundary — recorders don't pickle)."""
    path, source, config = item[:3]
    traced = item[3] if len(item) > 3 else False
    if os.environ.get("REPRO_CHAOS"):
        # chaos plans ride the environment into pool workers (pickling
        # is by name, so parent-side monkeypatching can't reach here);
        # lazy import keeps the hot path free of the server package
        from ..server.chaos import chaos_point

        if chaos_point("worker.kill", source):
            os._exit(137)
    started = time.perf_counter()
    if not traced:
        data = analyze_source(source, config)
        return path, data, time.perf_counter() - started, None
    from ..obs import TraceRecorder, use_thread_recorder

    recorder = TraceRecorder()
    with use_thread_recorder(recorder):
        data = analyze_source(source, config)
    seconds = time.perf_counter() - started
    return path, data, seconds, recorder.snapshot().to_dict()


def _make_pool(jobs: int):
    """Pool factory (module-level so the robustness tests can substitute
    a pool whose workers die)."""
    import concurrent.futures as futures

    return futures.ProcessPoolExecutor(max_workers=jobs)


def run_batch(
    inputs: Sequence[str],
    config: Optional[BatchConfig] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    pool=None,
) -> BatchResult:
    """Analyze every script reachable from ``inputs``.

    ``jobs=None`` means ``os.cpu_count()``; ``cache=None`` disables
    caching.  ``pool`` is an optional *persistent* process-pool executor
    (the analysis server's): it is used instead of a per-batch pool and
    left open for the caller to reuse and eventually shut down.  Reports always round-trip through
    ``Report.from_dict(...to_dict())`` — the pool and the cache both
    traffic in the serialized form — so cold, warm, parallel, and serial
    runs render identically.
    """
    config = config if config is not None else BatchConfig()
    if jobs is None:
        jobs = os.cpu_count() or 1
    rec = get_recorder()
    paths = discover(inputs)
    fingerprint = config.fingerprint()

    batch = BatchResult()
    slots: List[Optional[FileResult]] = []
    pending: List[Tuple[int, str, str, str]] = []  # (slot, path, source, key)

    with rec.span("batch.run"):
        for path in paths:
            rec.count("batch.files")
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                slots.append(
                    FileResult(path=path, report=_read_error_report("", str(exc)))
                )
                continue
            key = cache_key(source, fingerprint)
            if cache is not None:
                data = cache.get(key)
                if data is not None:
                    rec.count("batch.cache.hit")
                    slots.append(
                        FileResult(
                            path=path,
                            report=Report.from_dict(data),
                            cached=True,
                        )
                    )
                    continue
                rec.count("batch.cache.miss")
            slots.append(None)
            pending.append((len(slots) - 1, path, source, key))

        for (slot, path, _, key), (data, seconds, quarantined) in zip(
            pending, _drain(pending, config, jobs, rec, pool=pool)
        ):
            report = Report.from_dict(data)
            # incomplete results must not poison the cache: a cold rerun
            # has to re-analyze them from scratch
            cacheable = not quarantined and not report.degraded
            if cache is not None and cacheable and cache.put(key, data):
                rec.count("batch.cache.store")
            rec.observe("batch.file_seconds", seconds)
            slots[slot] = FileResult(
                path=path,
                report=report,
                cached=False,
                seconds=seconds,
                quarantined=quarantined,
            )

    batch.results = [r for r in slots if r is not None]
    batch.hits = sum(1 for r in batch.results if r.cached)
    batch.misses = sum(
        1 for r in batch.results
        if not r.cached and not r.report.has("read-error")
    )
    return batch


def _drain(
    pending: List[Tuple[int, str, str, str]],
    config: BatchConfig,
    jobs: int,
    rec,
    pool=None,
) -> Iterator[Tuple[dict, float, bool]]:
    """Yield ``(report_dict, seconds, quarantined)`` for every pending
    file in input order, using a process pool when it pays off and
    falling back to inline analysis when pools are unavailable
    (restricted sandboxes)."""
    if not pending:
        return
    if pool is not None or (jobs > 1 and len(pending) > 1):
        try:
            results = _drain_pool(pending, config, jobs, rec, pool=pool)
        except (OSError, ImportError, RuntimeError):
            # no multiprocessing in this environment (sandboxed /dev/shm,
            # missing semaphores, broken pool): degrade to inline
            rec.count("batch.pool_unavailable")
        else:
            yield from results
            return
    for _, path, source, _ in pending:
        started = time.perf_counter()
        with rec.span("batch.file"):
            try:
                data = analyze_source(source, config)
            except Exception as exc:  # noqa: BLE001 — per-file isolation
                rec.count("batch.worker_failures")
                yield _retry_inline(path, source, config, rec, exc)
                continue
        yield data, time.perf_counter() - started, False


def _drain_pool(
    pending: List[Tuple[int, str, str, str]],
    config: BatchConfig,
    jobs: int,
    rec,
    pool=None,
) -> List[Tuple[dict, float, bool]]:
    """One future per file, so a dying worker only loses that file.

    When a worker is killed the pool breaks and every outstanding future
    raises; each affected file is then retried inline (bounded by a
    tightened budget) rather than lost.  Pool-*creation* errors
    propagate to :func:`_drain`'s inline fallback.
    """
    results: List[Tuple[dict, float, bool]] = []
    own_pool = pool is None
    executor = _make_pool(jobs) if own_pool else pool
    try:
        futures = [
            executor.submit(_pool_worker, (path, source, config, rec.enabled))
            for _, path, source, _ in pending
        ]
        for future, (_, path, source, _) in zip(futures, pending):
            try:
                _, data, seconds, worker_metrics = future.result()
            except Exception as exc:  # noqa: BLE001 — BrokenProcessPool et al.
                rec.count("batch.worker_failures")
                results.append(_retry_inline(path, source, config, rec, exc))
            else:
                if worker_metrics:
                    from ..obs import MetricsSnapshot

                    rec.absorb(MetricsSnapshot.from_dict(worker_metrics))
                results.append((data, seconds, False))
    finally:
        if own_pool:
            executor.shutdown()
    return results


def _retry_inline(
    path: str,
    source: str,
    config: BatchConfig,
    rec,
    cause: BaseException,
) -> Tuple[dict, float, bool]:
    """Second (and last) chance for a file whose first attempt crashed:
    re-analyze inline under a tightened budget; quarantine on failure."""
    rec.count("batch.retries")
    budget = config.budget() or ResourceBudget()
    started = time.perf_counter()
    try:
        data = analyze(
            source, budget=budget.tightened(), **config.analyze_kwargs()
        ).to_dict()
    except Exception as retry_exc:  # noqa: BLE001 — quarantine, don't abort
        rec.count("batch.quarantined")
        report = Report(
            source=source,
            diagnostics=[quarantine_diagnostic(cause, retry_exc)],
        )
        return report.to_dict(), time.perf_counter() - started, True
    return data, time.perf_counter() - started, False
