"""Corpus-scale batch analysis.

The paper's ahead-of-time framing (§2, §6) amortizes analysis across
whole script corpora; per-file independence makes that embarrassingly
parallel.  This driver accepts files, directories, and glob patterns,
fans the work out to a process pool, and consults the persistent
:mod:`~repro.analysis.cache` so unchanged files cost one hash + one
read on re-analysis instead of a symbolic execution.

Counters (visible via ``--stats``): ``batch.files``,
``batch.cache.hit`` / ``batch.cache.miss`` / ``batch.cache.store``;
per-file analysis seconds feed the ``batch.file_seconds`` histogram so
the stats table shows aggregate CPU time next to wall time (their ratio
is the realized parallel speedup).
"""

from __future__ import annotations

import glob as glob_mod
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..diag import Diagnostic, Severity
from ..obs import get_recorder
from .analyzer import analyze
from .cache import ResultCache, cache_key
from .report import Report

#: extensions treated as shell scripts when scanning a directory
SCRIPT_EXTENSIONS = (".sh", ".bash")


@dataclass(frozen=True)
class BatchConfig:
    """The analyzer options one batch run applies to every file.

    Frozen + picklable (crosses the process-pool boundary) and
    fingerprintable (feeds the cache key, so flipping any option
    invalidates exactly the affected entries).
    """

    n_args: int = 0
    platform_targets: Optional[Tuple[str, ...]] = None
    include_lint: bool = False
    max_fork: int = 64
    max_loop: int = 2
    prune: bool = True
    races: bool = True

    def fingerprint(self) -> str:
        return (
            f"n_args={self.n_args};platforms={self.platform_targets};"
            f"lint={self.include_lint};max_fork={self.max_fork};"
            f"max_loop={self.max_loop};prune={self.prune};races={self.races}"
        )

    def analyze_kwargs(self) -> dict:
        return {
            "n_args": self.n_args,
            "platform_targets": self.platform_targets,
            "include_lint": self.include_lint,
            "max_fork": self.max_fork,
            "max_loop": self.max_loop,
            "prune": self.prune,
            "races": self.races,
        }


@dataclass
class FileResult:
    """One analyzed file: its report plus how the result was obtained."""

    path: str
    report: Report
    cached: bool = False
    seconds: float = 0.0


@dataclass
class BatchResult:
    """Per-file results (in input order) plus corpus-level accounting."""

    results: List[FileResult] = field(default_factory=list)
    hits: int = 0
    misses: int = 0

    @property
    def unsafe(self) -> bool:
        return any(r.report.unsafe for r in self.results)

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        """Aggregated multi-file output: per-file headers plus a corpus
        summary line.  Deliberately free of cache/timing details so a
        fully-warm rerun is byte-identical to the cold run."""
        blocks = []
        errors = warnings = infos = flagged = 0
        for result in self.results:
            report = result.report
            errors += len(report.errors())
            warnings += len(report.warnings())
            infos += len(report.infos())
            if not report.ok:
                flagged += 1
            blocks.append(f"== {result.path} ==\n{report.render(min_severity)}")
        summary = (
            f"{len(self.results)} file(s) analyzed: {errors} error(s), "
            f"{warnings} warning(s), {infos} note(s); {flagged} file(s) flagged"
        )
        blocks.append(summary)
        return "\n\n".join(blocks)


def discover(inputs: Sequence[str]) -> List[str]:
    """Expand files, directories, and glob patterns into a sorted,
    deduplicated list of script paths.

    Explicit file arguments are always included; directories are walked
    recursively for ``*.sh`` / ``*.bash``; anything else is tried as a
    glob pattern.
    """
    found: List[str] = []
    for item in inputs:
        if os.path.isdir(item):
            for dirpath, dirnames, filenames in os.walk(item):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(SCRIPT_EXTENSIONS):
                        found.append(os.path.join(dirpath, name))
        elif os.path.isfile(item):
            found.append(item)
        else:
            found.extend(
                path
                for path in glob_mod.glob(item, recursive=True)
                if os.path.isfile(path)
            )
    seen = set()
    unique: List[str] = []
    for path in sorted(found):
        normal = os.path.normpath(path)
        if normal not in seen:
            seen.add(normal)
            unique.append(normal)
    return unique


def _read_error_report(source: str, message: str) -> Report:
    return Report(
        source=source,
        diagnostics=[
            Diagnostic(
                code="read-error",
                message=message,
                severity=Severity.ERROR,
                always=True,
            )
        ],
    )


def analyze_source(source: str, config: BatchConfig) -> dict:
    """Analyze one script and return its serialized report (the worker
    body; module-level so it pickles across the pool boundary)."""
    return analyze(source, **config.analyze_kwargs()).to_dict()


def _pool_worker(item: Tuple[str, str, BatchConfig]) -> Tuple[str, dict, float]:
    path, source, config = item
    started = time.perf_counter()
    data = analyze_source(source, config)
    return path, data, time.perf_counter() - started


def run_batch(
    inputs: Sequence[str],
    config: Optional[BatchConfig] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> BatchResult:
    """Analyze every script reachable from ``inputs``.

    ``jobs=None`` means ``os.cpu_count()``; ``cache=None`` disables
    caching.  Reports always round-trip through
    ``Report.from_dict(...to_dict())`` — the pool and the cache both
    traffic in the serialized form — so cold, warm, parallel, and serial
    runs render identically.
    """
    config = config if config is not None else BatchConfig()
    if jobs is None:
        jobs = os.cpu_count() or 1
    rec = get_recorder()
    paths = discover(inputs)
    fingerprint = config.fingerprint()

    batch = BatchResult()
    slots: List[Optional[FileResult]] = []
    pending: List[Tuple[int, str, str, str]] = []  # (slot, path, source, key)

    with rec.span("batch.run"):
        for path in paths:
            rec.count("batch.files")
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                slots.append(
                    FileResult(path=path, report=_read_error_report("", str(exc)))
                )
                continue
            key = cache_key(source, fingerprint)
            if cache is not None:
                data = cache.get(key)
                if data is not None:
                    rec.count("batch.cache.hit")
                    slots.append(
                        FileResult(
                            path=path,
                            report=Report.from_dict(data),
                            cached=True,
                        )
                    )
                    continue
                rec.count("batch.cache.miss")
            slots.append(None)
            pending.append((len(slots) - 1, path, source, key))

        for (slot, path, _, key), (data, seconds) in zip(
            pending, _drain(pending, config, jobs, rec)
        ):
            if cache is not None and cache.put(key, data):
                rec.count("batch.cache.store")
            rec.observe("batch.file_seconds", seconds)
            slots[slot] = FileResult(
                path=path,
                report=Report.from_dict(data),
                cached=False,
                seconds=seconds,
            )

    batch.results = [r for r in slots if r is not None]
    batch.hits = sum(1 for r in batch.results if r.cached)
    batch.misses = sum(
        1 for r in batch.results
        if not r.cached and not r.report.has("read-error")
    )
    return batch


def _drain(
    pending: List[Tuple[int, str, str, str]],
    config: BatchConfig,
    jobs: int,
    rec,
):
    """Yield ``(report_dict, seconds)`` for every pending file in input
    order, using a process pool when it pays off and falling back to
    inline analysis when pools are unavailable (restricted sandboxes)."""
    if not pending:
        return
    if jobs > 1 and len(pending) > 1:
        try:
            results = _drain_pool(pending, config, jobs)
        except (OSError, ImportError, RuntimeError):
            # no multiprocessing in this environment (sandboxed /dev/shm,
            # missing semaphores, broken pool): degrade to inline
            rec.count("batch.pool_unavailable")
        else:
            for _, data, seconds in results:
                yield data, seconds
            return
    for _, _, source, _ in pending:
        started = time.perf_counter()
        with rec.span("batch.file"):
            data = analyze_source(source, config)
        yield data, time.perf_counter() - started


def _drain_pool(
    pending: List[Tuple[int, str, str, str]], config: BatchConfig, jobs: int
) -> List[Tuple[str, dict, float]]:
    import concurrent.futures as futures

    work = [(path, source, config) for _, path, source, _ in pending]
    with futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_pool_worker, work))
