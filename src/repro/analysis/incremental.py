"""Fragment-level incremental analysis (ROADMAP item 2, first half).

The whole-file result cache answers "has this exact file been analyzed
before?"; this module answers the just-in-time question "which *parts*
of the file still mean what they meant last time?".  A script is split
into **fragments** — each top-level function body, plus the top-level
residue — and every function-body evaluation is memoized as a
:class:`FragmentSummary` keyed by

- ``sha256(fragment_source)`` (with the fragment's start line, so a
  shifted definition re-evaluates and diagnostics keep exact positions),
- the digests of every function transitively callable from the body
  (editing a helper invalidates its callers' summaries, editing an
  unrelated function does not),
- a canonical **entry-state fingerprint** (environment, parameters,
  constraint store, file-system facts, shell options, background
  regions, engine context), and
- the analyzer configuration fingerprint + the cache version salt.

Re-analysis after an edit then re-explores only the fragments whose
digest changed plus their downstream dependents — dependents re-run
naturally because the changed fragment's *effects* alter their entry
fingerprints, and proactively because the :class:`IncrementalSession`
evicts their summaries along the RAW/WAR/WAW edges it derives with the
same dependence machinery as :func:`repro.analysis.deps.analyze_dependencies`.

Byte-identity invariant
-----------------------

A report produced through the memo must be byte-identical to a cold run
(guarded like PR 5/7 guarded server and plan byte-identity).  The two
global id allocators (constraint-store vids, fs node ids) make stored
states unusable verbatim: their raw ids come from a different point of
the process-global counters.  Replay therefore *re-materialises* every
stored post-state into the current run's id space — pre-existing ids map
through the canonical fingerprint order, body-created ids are freshly
allocated in stored creation order — so a replayed state is
indistinguishable from one the engine just computed.  Anything
append-only (diagnostics, notes, stdout chunks, fs events) is stored as
a per-post-state *delta* and rebased onto the current prefix, so an
upstream change that only adds a diagnostic does not cascade misses.

When in doubt the memo **bails** to plain evaluation (dynamic function
bindings, nested function definitions, unsupported provenance payloads):
a lost hit is always sound, a wrong hit never is.
"""

from __future__ import annotations

import hashlib
import re
import threading
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..diag import Diagnostic
from ..fs.events import EventLog, FsEvent
from ..fs.model import FileSystem, NodeRecord, _node_ids
from ..obs import get_recorder
from ..shell import parse as parse_shell
from ..shell.ast import (
    Command,
    FunctionDef,
    Sequence as SeqNode,
    SimpleCommand,
    walk,
)
from ..symex.state import StdoutChunk, SymState
from ..symstr import ConstraintStore, GlobAtom, LitAtom, SymString, VarAtom
from ..symstr.store import _ids as _store_ids
from .cache import FragmentCache, version_salt
from .deps import CommandEffects, _vars_of, derive_dependencies

_WRITE_OPS = ("WRITE", "CREATE", "DELETE")
_READ_OPS = ("READ", "STAT", "LIST")

_SYM_NAME = re.compile(r"<v(-?\d+)>")


class _Unsupported(Exception):
    """The entry state cannot be fingerprinted canonically — bail."""


# ---------------------------------------------------------------------------
# fragment splitting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fragment:
    """One memoization unit: a top-level function definition."""

    name: str
    #: unique id within the file (two same-named defs get distinct ids)
    frag_id: str
    start_line: int
    end_line: int          # inclusive, 1-based
    digest: str            # sha256 over start line + exact source slice
    calls: frozenset       # concrete command names invoked in the body
    has_defs: bool         # body defines nested functions -> never memoized
    body: Command = field(compare=False, hash=False, repr=False)


@dataclass
class FragmentTable:
    """All fragments of one parsed script plus the residue digest."""

    fragments: List[Fragment]
    residue_digest: str

    def __post_init__(self) -> None:
        self.by_body: Dict[int, Fragment] = {
            id(f.body): f for f in self.fragments
        }
        #: shell-name -> fragment (later top-level definition wins, like
        #: the shell's own binding order at the end of the file)
        self.by_name: Dict[str, Fragment] = {f.name: f for f in self.fragments}

    def digests(self) -> Dict[str, str]:
        data = {f.frag_id: f.digest for f in self.fragments}
        data["<residue>"] = self.residue_digest
        return data


def _called_names(body: Command) -> frozenset:
    """Concrete first words of every command in the subtree.  Dynamic
    command names can never dispatch to a shell function (the engine
    requires a concrete name in ``state.functions``), so this syntactic
    set is an exact over-approximation of callable function names."""
    names: Set[str] = set()
    for node in walk(body):
        if isinstance(node, SimpleCommand):
            name = node.name
            if name:
                names.add(name)
    return frozenset(names)


def split_fragments(source: str, ast: Optional[Command] = None) -> FragmentTable:
    """Split a script into function fragments and the top-level residue.

    Fragment slices are line-based: a fragment owns the lines from its
    ``function`` keyword up to (not including) the next top-level
    command's first line.  The residue hashes every unowned line *with
    its line number* plus a name-only marker per fragment, so renaming,
    reordering, or editing top-level code always changes at least one
    digest.
    """
    if ast is None:
        ast = parse_shell(source)
    tops = list(ast.commands) if isinstance(ast, SeqNode) else [ast]
    lines = source.splitlines()
    boundaries: List[Tuple[int, Command]] = []
    for node in tops:
        pos = getattr(node, "pos", None)
        line = pos.line if pos is not None and pos.line > 0 else None
        boundaries.append((line, node))

    fragments: List[Fragment] = []
    owned: Dict[int, Fragment] = {}
    for idx, (line, node) in enumerate(boundaries):
        if not isinstance(node, FunctionDef) or line is None:
            continue
        end = len(lines)
        for nxt_line, _ in boundaries[idx + 1:]:
            if nxt_line is not None and nxt_line > line:
                end = nxt_line - 1
                break
        slice_text = "\n".join(lines[line - 1:end])
        digest = hashlib.sha256(
            f"{line}:{node.name}\n{slice_text}".encode("utf-8")
        ).hexdigest()
        frag = Fragment(
            name=node.name,
            frag_id=f"{node.name}@{line}",
            start_line=line,
            end_line=end,
            digest=digest,
            calls=_called_names(node.body),
            has_defs=any(
                isinstance(sub, FunctionDef) for sub in walk(node.body)
            ),
            body=node.body,
        )
        fragments.append(frag)
        for owned_line in range(line, end + 1):
            owned.setdefault(owned_line, frag)

    hasher = hashlib.sha256()
    for number, text in enumerate(lines, start=1):
        frag = owned.get(number)
        if frag is None:
            hasher.update(f"{number}:{text}\n".encode("utf-8"))
        elif number == frag.start_line:
            hasher.update(f"{number}:<fragment {frag.name}>\n".encode("utf-8"))
    return FragmentTable(fragments=fragments, residue_digest=hasher.hexdigest())


# ---------------------------------------------------------------------------
# canonical entry-state fingerprints
# ---------------------------------------------------------------------------


class _PreContext:
    """What the fingerprint pass learned about the entry state — reused
    by replay (id mapping, prefix rebasing) and capture (deltas)."""

    __slots__ = (
        "vids", "vid_index", "constraints", "nodes", "node_index",
        "n_diags", "n_notes", "n_stdout", "log_len",
    )

    def __init__(self, state: SymState):
        self.vids: List[int] = []
        self.vid_index: Dict[int, int] = {}
        store = state.store
        for vid in store._constraints:
            self.vid_index[vid] = len(self.vids)
            self.vids.append(vid)
        self.constraints: Dict[int, object] = dict(store._constraints)
        self.nodes: List[int] = []
        self.node_index: Dict[int, int] = {}
        for nid in state.fs.nodes:
            self.node_index[nid] = len(self.nodes)
            self.nodes.append(nid)
        self.n_diags = len(state.diagnostics)
        self.n_notes = len(state.notes)
        self.n_stdout = len(state.stdout)
        self.log_len = len(state.fs.log)


def _regex_fp(regex, cache: Dict[int, tuple]) -> tuple:
    """A structural fingerprint of a Regex: its exact DFA (atoms,
    transition table, accepting set) plus the construction pattern.
    Equal fingerprints mean behaviourally identical objects under every
    deterministic algorithm the engine runs on them — stricter than
    language equality, which is exactly what replay soundness needs."""
    entry = cache.get(id(regex))
    if entry is not None and entry[1] is regex:
        return entry[0]
    dfa = regex._dfa
    fp = (
        regex.pattern,
        tuple(atom.intervals for atom in dfa.atoms),
        tuple(tuple(row) for row in dfa.delta),
        tuple(sorted(dfa.accepting)),
        dfa.start,
    )
    # hold a reference so the id() key cannot be recycled
    cache[id(regex)] = (fp, regex)
    return fp


def _symstr_fp(value: Optional[SymString], vid_index: Dict[int, int]) -> tuple:
    if value is None:
        return ("none",)
    out = []
    for atom in value.atoms:
        if isinstance(atom, LitAtom):
            out.append(("L", atom.text))
        elif isinstance(atom, GlobAtom):
            out.append(("G", atom.char))
        else:
            idx = vid_index.get(atom.vid)
            if idx is None:
                raise _Unsupported(f"unregistered vid {atom.vid}")
            out.append(("V", idx))
    return tuple(out)


def _canon_vid_text(text: str, vid_index: Dict[int, int]) -> str:
    """Rewrite raw ``<vN>`` markers in a path/name to canonical indices
    (negative pseudo-vids — the abstract cwd root — stay literal)."""

    def sub(match: "re.Match") -> str:
        vid = int(match.group(1))
        if vid < 0:
            return match.group(0)
        idx = vid_index.get(vid)
        if idx is None:
            raise _Unsupported(f"unregistered vid {vid} in path")
        return f"<V{idx}>"

    return _SYM_NAME.sub(sub, text)


def _provenance_fp(prov, vid_index: Dict[int, int]) -> tuple:
    if prov is None:
        return ("none",)
    tag, payload = prov
    if payload is None or isinstance(payload, (str, int, bool)):
        return (tag, payload)
    if isinstance(payload, SymString):
        return (tag, _symstr_fp(payload, vid_index))
    raise _Unsupported(f"provenance payload {type(payload).__name__}")


def _component_fp(component, vid_index: Dict[int, int]):
    if isinstance(component, str):
        return ("s", component)
    idx = vid_index.get(component.vid)
    if idx is None:
        if component.vid < 0:
            return ("a", component.vid)
        raise _Unsupported(f"unregistered vid {component.vid} in component")
    return ("v", idx)


def fingerprint_state(engine, state: SymState, regex_cache: Dict[int, tuple]):
    """The canonical entry fingerprint: a hashable tuple such that two
    states with equal fingerprints evaluate any fragment identically and
    produce renderings that are byte-identical after id canonicalisation.

    Raw allocator ids (vids, fs node ids) are replaced by first-seen
    indices in store/fs insertion order — deterministic for identical
    evaluation prefixes, independent of the process-global counters.

    Append-only history (diagnostics, notes, stdout chunks, the fs event
    trace) is deliberately **excluded**: it cannot influence a body's
    evaluation, and replay rebases the stored deltas onto whatever the
    current prefix accumulated.
    """
    ctx = _PreContext(state)
    vid_index = ctx.vid_index
    node_index = ctx.node_index
    store = state.store

    store_rows = tuple(
        (
            _regex_fp(store._constraints[vid], regex_cache),
            store._labels.get(vid, ""),
            _provenance_fp(store._provenance.get(vid), vid_index),
        )
        for vid in ctx.vids
    )

    node_rows = []
    for nid in ctx.nodes:
        rec = state.fs.nodes[nid]
        children = tuple(
            sorted(
                (_component_fp(comp, vid_index), node_index[cid])
                for comp, cid in rec.children
            )
        )
        parent = node_index[rec.parent] if rec.parent is not None else None
        link = (
            node_index[rec.link_target]
            if rec.link_target is not None
            else None
        )
        node_rows.append(
            (
                rec.existence.name,
                rec.kind.name,
                _canon_vid_text(rec.name, vid_index),
                parent,
                link,
                children,
            )
        )

    sym_root_rows = tuple(
        sorted(
            (
                ("a", vid) if vid < 0 else ("v", _require(vid_index, vid)),
                node_index[nid],
            )
            for vid, nid in state.fs.sym_roots.items()
        )
    )
    denied_rows = tuple(
        sorted(
            (node_index[nid], tuple(sorted(k.name for k in kinds)))
            for nid, kinds in state.fs.denied.items()
        )
    )
    log = state.fs.log
    origin_fp = (
        (log.origin.label, str(log.origin.pos))
        if log.origin is not None
        else None
    )

    fp = (
        tuple(sorted(
            (name, _symstr_fp(value, vid_index))
            for name, value in state.env.items()
        )),
        tuple(_symstr_fp(p, vid_index) for p in state.params),
        state.argv_unknown,
        _symstr_fp(state.argc_sym, vid_index),
        _symstr_fp(state.cwd_str, vid_index),
        node_index[state.cwd_node] if state.cwd_node is not None else None,
        state.status,
        state.halted,
        state.depth,
        state.capturing,
        tuple(sorted(state.options)),
        tuple((j.number, j.region, j.label) for j in state.bg_jobs),
        state.bg_launched,
        state.loop_control,
        store_rows,
        tuple(node_rows),
        sym_root_rows,
        denied_rows,
        log.task,
        origin_fp,
        # engine context the body's evaluation can observe
        tuple(sorted(engine.script_assigned)),
        engine._region_counter,
        engine.loop_depth,
        engine._cond_depth,
    )
    return fp, ctx


def _require(mapping: Dict[int, int], key: int) -> int:
    idx = mapping.get(key)
    if idx is None:
        raise _Unsupported(f"unregistered id {key}")
    return idx


# ---------------------------------------------------------------------------
# summaries: capture and replay
# ---------------------------------------------------------------------------


@dataclass
class _StoredState:
    """A value snapshot of one post-state, in the stored run's id space."""

    env: Dict[str, SymString]
    cwd_node: Optional[int]
    cwd_str: SymString
    status: Optional[int]
    halted: bool
    depth: int
    capturing: bool
    options: frozenset
    bg_jobs: tuple
    bg_launched: int
    loop_control: Optional[tuple]
    store_items: List[tuple]          # (vid, constraint, label, provenance)
    fs_nodes: List[Tuple[int, NodeRecord]]
    sym_roots: Dict[int, int]
    denied: Dict[int, frozenset]
    log_origin: object
    log_task: int
    log_delta: List[FsEvent]
    d_diags: List[Diagnostic]
    d_notes: List[str]
    d_stdout: List[StdoutChunk]


@dataclass
class FragmentSummary:
    """Everything needed to replay one function-body evaluation."""

    posts: List[_StoredState]
    pre_vids: tuple
    pre_nodes: tuple
    pre_constraints: Dict[int, object]
    d_explored: int
    d_merged: int
    d_truncations: int
    d_regions: int
    #: ((fragment frag_id, walk index) -> (feasible delta, visit delta))
    tracker_delta: Dict[Tuple[str, int], Tuple[int, int]]
    reads: frozenset
    writes: frozenset


def _snapshot_post(
    st: SymState, ctx: _PreContext
) -> _StoredState:
    store = st.store
    return _StoredState(
        env=dict(st.env),
        cwd_node=st.cwd_node,
        cwd_str=st.cwd_str,
        status=st.status,
        halted=st.halted,
        depth=st.depth,
        capturing=st.capturing,
        options=frozenset(st.options),
        bg_jobs=st.bg_jobs,
        bg_launched=st.bg_launched,
        loop_control=st.loop_control,
        store_items=[
            (
                vid,
                constraint,
                store._labels.get(vid, ""),
                store._provenance.get(vid),
            )
            for vid, constraint in store._constraints.items()
        ],
        fs_nodes=list(st.fs.nodes.items()),
        sym_roots=dict(st.fs.sym_roots),
        denied=dict(st.fs.denied),
        log_origin=st.fs.log.origin,
        log_task=st.fs.log.task,
        log_delta=st.fs.log.since(ctx.log_len),
        d_diags=list(st.diagnostics[ctx.n_diags:]),
        d_notes=list(st.notes[ctx.n_notes:]),
        d_stdout=list(st.stdout[ctx.n_stdout:]),
    )


class _Replayer:
    """Materialise stored post-states into the current run's id space."""

    def __init__(self, summary: FragmentSummary, ctx: _PreContext):
        self.summary = summary
        self.vid_map: Dict[int, int] = {
            old: ctx.vids[idx] for idx, old in enumerate(summary.pre_vids)
        }
        self.node_map: Dict[int, int] = {
            old: ctx.nodes[idx] for idx, old in enumerate(summary.pre_nodes)
        }
        self.ctx = ctx

    def map_vid(self, old: int) -> int:
        cur = self.vid_map.get(old)
        if cur is None:
            # body-created variable: allocate a fresh current-run id, in
            # stored creation order (posts iterate their stores in
            # insertion order), so numbering stays deterministic
            cur = next(_store_ids)
            self.vid_map[old] = cur
        return cur

    def map_node(self, old: int) -> int:
        cur = self.node_map.get(old)
        if cur is None:
            cur = next(_node_ids)
            self.node_map[old] = cur
        return cur

    def remap_symstr(self, value: Optional[SymString]) -> Optional[SymString]:
        if value is None:
            return None
        if not any(isinstance(a, VarAtom) for a in value.atoms):
            return value
        return SymString(
            VarAtom(self.map_vid(a.vid)) if isinstance(a, VarAtom) else a
            for a in value.atoms
        )

    def remap_name(self, text: str) -> str:
        return _SYM_NAME.sub(
            lambda m: (
                m.group(0)
                if int(m.group(1)) < 0
                else f"<v{self.map_vid(int(m.group(1)))}>"
            ),
            text,
        )

    def remap_provenance(self, prov):
        if prov is None:
            return None
        tag, payload = prov
        if isinstance(payload, SymString):
            return (tag, self.remap_symstr(payload))
        return prov

    def rebuild_store(self, sp: _StoredState) -> ConstraintStore:
        store = ConstraintStore()
        pre_objects = self.summary.pre_constraints
        for old_vid, constraint, label, prov in sp.store_items:
            cur = self.map_vid(old_vid)
            if constraint is pre_objects.get(old_vid):
                # unrefined pre-existing variable: share the *current*
                # run's constraint object so downstream identity-based
                # merging behaves exactly as in a cold run
                constraint = self.ctx.constraints[cur]
            store._constraints[cur] = constraint
            if label:
                store._labels[cur] = label
            if prov is not None:
                store._provenance[cur] = self.remap_provenance(prov)
        return store

    def rebuild_fs(self, sp: _StoredState, pre_log: EventLog) -> FileSystem:
        nodes: Dict[int, NodeRecord] = {}
        for old_id, rec in sp.fs_nodes:
            nid = self.map_node(old_id)
            nodes[nid] = NodeRecord(
                node_id=nid,
                existence=rec.existence,
                kind=rec.kind,
                children=tuple(
                    (self._remap_component(comp), self.map_node(cid))
                    for comp, cid in rec.children
                ),
                parent=(
                    self.map_node(rec.parent)
                    if rec.parent is not None
                    else None
                ),
                name=self.remap_name(rec.name),
                link_target=(
                    self.map_node(rec.link_target)
                    if rec.link_target is not None
                    else None
                ),
            )
        log = pre_log.fork()
        log.origin = sp.log_origin
        log.task = sp.log_task
        for event in sp.log_delta:
            log._tail.append(
                _dc_replace(
                    event,
                    path=self.remap_name(event.path),
                    node=(
                        self.map_node(event.node)
                        if event.node is not None
                        else None
                    ),
                )
            )
        sym_roots = {
            (vid if vid < 0 else self.map_vid(vid)): self.map_node(nid)
            for vid, nid in sp.sym_roots.items()
        }
        denied = {self.map_node(nid): kinds for nid, kinds in sp.denied.items()}
        fs = FileSystem(nodes=nodes, sym_roots=sym_roots, log=log, denied=denied)
        return fs

    def _remap_component(self, component):
        if isinstance(component, str):
            return component
        if component.vid < 0:
            return component
        return type(component)(self.map_vid(component.vid))

    def materialise(self, sp: _StoredState, state: SymState) -> SymState:
        store = self.rebuild_store(sp)
        fs = self.rebuild_fs(sp, state.fs.log)
        return SymState(
            env={k: self.remap_symstr(v) for k, v in sp.env.items()},
            params=state.params,
            functions=state.functions,
            cwd_node=(
                self.map_node(sp.cwd_node) if sp.cwd_node is not None else None
            ),
            cwd_str=self.remap_symstr(sp.cwd_str),
            fs=fs,
            store=store,
            status=sp.status,
            stdout=list(state.stdout)
            + [
                StdoutChunk(
                    text=self.remap_symstr(chunk.text), stream=chunk.stream
                )
                for chunk in sp.d_stdout
            ],
            notes=list(state.notes) + sp.d_notes,
            diagnostics=list(state.diagnostics) + sp.d_diags,
            halted=sp.halted,
            depth=sp.depth,
            capturing=sp.capturing,
            options=sp.options,
            bg_jobs=sp.bg_jobs,
            bg_launched=sp.bg_launched,
            loop_control=sp.loop_control,
            argv_unknown=state.argv_unknown,
            argc_sym=state.argc_sym,
        )


def _event_effects(events: Sequence[FsEvent], labels: Dict[int, str]):
    """Read/written canonical path strings of a body's event delta, for
    the fragment dependence index (raw vids replaced by their source
    labels so strings compare across runs)."""

    def canon(path: str) -> str:
        return _SYM_NAME.sub(
            lambda m: "<" + labels.get(int(m.group(1)), "sym") + ">", path
        )

    reads: Set[str] = set()
    writes: Set[str] = set()
    for event in events:
        if event.op.name in _WRITE_OPS:
            writes.add(canon(event.path))
        elif event.op.name in _READ_OPS:
            reads.add(canon(event.path))
    return frozenset(reads), frozenset(writes)


# ---------------------------------------------------------------------------
# the memo: the engine-side hook
# ---------------------------------------------------------------------------


class FragmentMemo:
    """Per-analysis memoization hook installed as ``engine.fragment_memo``.

    One instance serves a single ``analyze()`` call; the
    :class:`~repro.analysis.cache.FragmentCache` behind it is long-lived
    and shared across re-analyses (and threads) of a session.
    """

    def __init__(
        self,
        cache: FragmentCache,
        table: FragmentTable,
        config_fingerprint: str,
    ):
        self.cache = cache
        self.table = table
        self.config_fp = config_fingerprint + "/" + version_salt()
        self._regex_cache: Dict[int, tuple] = {}
        #: frag_id -> (reads, writes) unioned over this run's summaries
        self.effects: Dict[str, Tuple[frozenset, frozenset]] = {}
        self.hits = 0
        self.misses = 0

    # -- closure of callable fragments -----------------------------------

    def _closure(self, frag: Fragment, functions: Dict[str, Command]):
        """(name, digest-or-None) for every function transitively
        callable from the fragment under the entry bindings, or None
        when a reachable binding is not a memoizable fragment."""
        sig: List[Tuple[str, Optional[str]]] = []
        done: Set[str] = set()
        pending = set(frag.calls)
        while pending:
            name = pending.pop()
            if name in done:
                continue
            done.add(name)
            body = functions.get(name)
            if body is None:
                sig.append((name, None))
                continue
            sub = self.table.by_body.get(id(body))
            if sub is None or sub.has_defs:
                return None
            sig.append((name, sub.digest))
            pending |= sub.calls - done
        return tuple(sorted(sig))

    def _walk_map(self, frag: Fragment, closure) -> Dict[int, Tuple[str, int]]:
        """id(node) -> (frag_id, walk index) over the fragment's body and
        every body in its closure — the namespace for success-tracker
        deltas (``id()`` is parse-specific, walk order is not)."""
        mapping: Dict[int, Tuple[str, int]] = {}
        frags = [frag] + [
            self.table.by_name[name]
            for name, digest in closure
            if digest is not None and name in self.table.by_name
        ]
        seen: Set[str] = set()
        for sub in frags:
            if sub.frag_id in seen:
                continue
            seen.add(sub.frag_id)
            for idx, node in enumerate(walk(sub.body)):
                mapping.setdefault(id(node), (sub.frag_id, idx))
        return mapping

    def _nodes_by_tag(self, frag: Fragment, closure) -> Dict[Tuple[str, int], Command]:
        """Inverse of :meth:`_walk_map`, over the current parse."""
        mapping: Dict[Tuple[str, int], Command] = {}
        frags = [frag] + [
            self.table.by_name[name]
            for name, digest in closure
            if digest is not None and name in self.table.by_name
        ]
        seen: Set[str] = set()
        for sub in frags:
            if sub.frag_id in seen:
                continue
            seen.add(sub.frag_id)
            for idx, node in enumerate(walk(sub.body)):
                mapping.setdefault((sub.frag_id, idx), node)
        return mapping

    # -- the hook ---------------------------------------------------------

    def eval_body(
        self, engine, name: str, body: Command, state: SymState
    ) -> List[SymState]:
        rec = engine._rec
        frag = self.table.by_body.get(id(body))
        if frag is None or frag.has_defs:
            return engine.eval(body, state)
        closure = self._closure(frag, state.functions)
        if closure is None:
            rec.count("incremental.fragments.unsupported")
            return engine.eval(body, state)
        try:
            fp, ctx = fingerprint_state(engine, state, self._regex_cache)
        except _Unsupported:
            rec.count("incremental.fragments.unsupported")
            return engine.eval(body, state)
        key = (frag.digest, closure, self.config_fp, fp)

        summary = self.cache.get(key)
        if summary is not None:
            self.hits += 1
            rec.count("incremental.fragments.hit")
            self.effects[frag.frag_id] = _merge_effects(
                self.effects.get(frag.frag_id), summary.reads, summary.writes
            )
            return self._replay(engine, frag, closure, summary, state, ctx)

        self.misses += 1
        rec.count("incremental.fragments.miss")
        return self._evaluate_and_store(
            engine, frag, closure, key, state, ctx
        )

    def _replay(
        self, engine, frag, closure, summary: FragmentSummary, state, ctx
    ) -> List[SymState]:
        replayer = _Replayer(summary, ctx)
        results = [replayer.materialise(sp, state) for sp in summary.posts]
        engine.paths_explored += summary.d_explored
        engine.paths_merged += summary.d_merged
        engine.truncations += summary.d_truncations
        engine._region_counter += summary.d_regions
        if summary.d_explored:
            engine._rec.count("symex.states_explored", summary.d_explored)
        if summary.tracker_delta:
            nodes_by_tag = self._nodes_by_tag(frag, closure)
            for tag, (d_feasible, d_visits) in summary.tracker_delta.items():
                node = nodes_by_tag.get(tag)
                if node is None:
                    continue
                entry = engine._success_tracker.setdefault(
                    id(node), [node, 0, 0]
                )
                entry[1] += d_feasible
                entry[2] += d_visits
        return results

    def _evaluate_and_store(
        self, engine, frag, closure, key, state, ctx
    ) -> List[SymState]:
        pre_explored = engine.paths_explored
        pre_merged = engine.paths_merged
        pre_trunc = engine.truncations
        pre_regions = engine._region_counter
        pre_tracker = {
            nid: (entry[1], entry[2])
            for nid, entry in engine._success_tracker.items()
        }
        pre_functions = dict(state.functions)

        results = engine.eval(frag.body, state)

        # function tables must be untouched for replay to rebuild them
        # from the caller's bindings (``has_defs`` already excludes all
        # reachable definitions syntactically; this is the belt)
        for st in results:
            if len(st.functions) != len(pre_functions) or any(
                st.functions.get(k) is not v for k, v in pre_functions.items()
            ):
                engine._rec.count("incremental.fragments.unsupported")
                return results

        tracker_delta: Dict[Tuple[str, int], Tuple[int, int]] = {}
        walk_map = self._walk_map(frag, closure)
        for nid, entry in engine._success_tracker.items():
            old_feasible, old_visits = pre_tracker.get(nid, (0, 0))
            d_feasible = entry[1] - old_feasible
            d_visits = entry[2] - old_visits
            if not d_feasible and not d_visits:
                continue
            tag = walk_map.get(nid)
            if tag is None:
                # the body touched a command outside its closure's
                # namespace — cannot be replayed portably
                engine._rec.count("incremental.fragments.unsupported")
                return results
            tracker_delta[tag] = (d_feasible, d_visits)

        posts = [_snapshot_post(st, ctx) for st in results]
        labels: Dict[int, str] = {}
        all_events: List[FsEvent] = []
        for st, sp in zip(results, posts):
            labels.update(st.store._labels)
            all_events.extend(sp.log_delta)
        reads, writes = _event_effects(all_events, labels)
        summary = FragmentSummary(
            posts=posts,
            pre_vids=tuple(ctx.vids),
            pre_nodes=tuple(ctx.nodes),
            pre_constraints=ctx.constraints,
            d_explored=engine.paths_explored - pre_explored,
            d_merged=engine.paths_merged - pre_merged,
            d_truncations=engine.truncations - pre_trunc,
            d_regions=engine._region_counter - pre_regions,
            tracker_delta=tracker_delta,
            reads=reads,
            writes=writes,
        )
        self.cache.put(key, summary, digest=frag.digest)
        self.effects[frag.frag_id] = _merge_effects(
            self.effects.get(frag.frag_id), reads, writes
        )
        return results


def _merge_effects(existing, reads, writes):
    if existing is None:
        return (reads, writes)
    return (existing[0] | reads, existing[1] | writes)


# ---------------------------------------------------------------------------
# the session: invalidation over the fragment dependence graph
# ---------------------------------------------------------------------------


@dataclass
class _PathIndex:
    """What the session remembers about one watched script."""

    digests: Dict[str, str]
    #: frag_id -> set of downstream dependent frag_ids (RAW/WAR/WAW)
    dependents: Dict[str, Set[str]]
    effects: Dict[str, Tuple[frozenset, frozenset]]


class IncrementalSession:
    """Re-analysis driver: whole files in, reports out, with per-function
    summary reuse and dependence-graph invalidation in between.

    One session wraps one :class:`FragmentCache` plus a per-path fragment
    index.  ``analyze()`` is safe to call from the daemon's watch thread
    (a lock serialises re-analyses; the cache itself is thread-safe).
    """

    def __init__(self, config=None, fragment_cache: Optional[FragmentCache] = None):
        from .batch import BatchConfig

        self.config = config if config is not None else BatchConfig()
        # explicit None-check: an empty FragmentCache is falsy (len 0)
        self.fragments = (
            fragment_cache if fragment_cache is not None else FragmentCache()
        )
        self._index: Dict[str, _PathIndex] = {}
        self._lock = threading.RLock()
        self._memo: Optional[FragmentMemo] = None
        #: last-call observability (exposed for ops logging / tests)
        self.last_invalidated: List[str] = []
        self.last_hits = 0
        self.last_misses = 0

    # -- analyzer attachment (called from _analyze) -----------------------

    def _attach(self, source: str, ast, config_fingerprint: str):
        """Build the per-call memo; returns None when the source has no
        memoizable fragments (plain scripts skip the machinery)."""
        table = split_fragments(source, ast)
        memo = FragmentMemo(self.fragments, table, config_fingerprint)
        self._memo = memo
        return memo

    # -- the public entry -------------------------------------------------

    def analyze(self, source: str, path: Optional[str] = None, budget=None):
        """Analyze ``source`` incrementally; byte-identical to a cold
        :func:`repro.analysis.analyze` with the session's configuration."""
        from .analyzer import analyze as _analyze_fn

        rec = get_recorder()
        with self._lock, rec.span("incremental.reanalyze"):
            if path is not None:
                self._invalidate(path, source, rec)
            self._memo = None
            report = _analyze_fn(
                source,
                budget=budget if budget is not None else self.config.budget(),
                incremental=self,
                **self.config.analyze_kwargs(),
            )
            memo = self._memo
            if memo is not None:
                self.last_hits = memo.hits
                self.last_misses = memo.misses
                if path is not None:
                    self._reindex(path, memo)
            else:
                self.last_hits = self.last_misses = 0
            return report

    def forget(self, path: str) -> None:
        """Drop a deleted/renamed script's index (watch-mode eviction)."""
        with self._lock:
            self._index.pop(path, None)

    # -- invalidation -----------------------------------------------------

    def _invalidate(self, path: str, source: str, rec) -> None:
        self.last_invalidated = []
        old = self._index.get(path)
        if old is None:
            return
        try:
            table = split_fragments(source)
        except Exception:  # syntax error: analyze() will report it
            return
        new_digests = table.digests()
        changed = {
            frag_id
            for frag_id, digest in old.digests.items()
            if new_digests.get(frag_id) != digest
        }
        changed |= set(new_digests) - set(old.digests)
        if not changed:
            return
        # downstream closure over the stored RAW/WAR/WAW edges
        invalidated = set(changed)
        frontier = list(changed)
        while frontier:
            frag_id = frontier.pop()
            for dep in old.dependents.get(frag_id, ()):
                if dep not in invalidated:
                    invalidated.add(dep)
                    frontier.append(dep)
        invalidated.discard("<residue>")
        for frag_id in sorted(invalidated):
            digest = old.digests.get(frag_id)
            if digest is not None:
                self.fragments.invalidate_digest(digest)
        if invalidated:
            rec.count("incremental.fragments.invalidated", len(invalidated))
        self.last_invalidated = sorted(invalidated)

    # -- index rebuilding -------------------------------------------------

    def _reindex(self, path: str, memo: FragmentMemo) -> None:
        table = memo.table
        old = self._index.get(path)
        effects: Dict[str, Tuple[frozenset, frozenset]] = {}
        new_digests = table.digests()
        if old is not None:
            # carry effects of unchanged fragments that were not called
            # this round (their summaries — and effects — still hold)
            for frag_id, pair in old.effects.items():
                if old.digests.get(frag_id) == new_digests.get(frag_id):
                    effects[frag_id] = pair
        effects.update(memo.effects)

        rows: List[CommandEffects] = []
        order = sorted(table.fragments, key=lambda f: f.start_line)
        for idx, frag in enumerate(order):
            reads, writes = effects.get(frag.frag_id, (frozenset(), frozenset()))
            uses, defs = _vars_of(frag.body)
            rows.append(
                CommandEffects(
                    index=idx,
                    source=frag.frag_id,
                    reads=set(reads),
                    writes=set(writes),
                    var_uses=uses,
                    var_defs=defs,
                )
            )
        dependents: Dict[str, Set[str]] = {}
        for dep in derive_dependencies(rows):
            src = order[dep.src].frag_id
            dst = order[dep.dst].frag_id
            dependents.setdefault(src, set()).add(dst)
        self._index[path] = _PathIndex(
            digests=new_digests, dependents=dependents, effects=effects
        )
