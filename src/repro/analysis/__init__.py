"""The end-to-end analyzer (public API)."""

from .analyzer import analyze
from .annotations import (
    AnnotationError,
    AnnotationSet,
    load_annotation_file,
    merge_annotations,
    parse_annotations,
)
from .report import Report

__all__ = ["analyze", "Report", "parse_annotations", "AnnotationSet", "AnnotationError",
           "load_annotation_file", "merge_annotations"]
