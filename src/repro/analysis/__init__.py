"""The end-to-end analyzer (public API)."""

from .analyzer import analyze
from .annotations import (
    AnnotationError,
    AnnotationSet,
    load_annotation_file,
    merge_annotations,
    parse_annotations,
)
from .batch import BatchConfig, BatchResult, FileResult, discover, run_batch
from .cache import ResultCache, cache_key, default_cache_dir
from .optimize import (
    OptimizeBatchResult,
    OptimizePlan,
    build_plan,
    optimize_source,
    plan_cache_key,
    run_optimize_batch,
)
from .report import Report
from .resilience import AnalysisBudgetExceeded, ResourceBudget

__all__ = ["analyze", "Report", "parse_annotations", "AnnotationSet", "AnnotationError",
           "load_annotation_file", "merge_annotations",
           "BatchConfig", "BatchResult", "FileResult", "discover", "run_batch",
           "ResultCache", "cache_key", "default_cache_dir",
           "ResourceBudget", "AnalysisBudgetExceeded",
           "OptimizePlan", "OptimizeBatchResult", "build_plan",
           "optimize_source", "plan_cache_key", "run_optimize_batch"]
