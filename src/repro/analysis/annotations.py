"""Ergonomic annotations (paper §4).

Constraints join the shell ecosystem as specialised inline comments, so
scripts stay fully compatible with existing interpreters::

    # @var STEAMROOT : path          -- named type from the library
    # @var VERSION : [0-9.]+         -- inline regular type
    # @type frobnicate :: .* -> [0-9]+
    # @args 2                        -- the script takes two arguments
    # @platforms linux macos         -- deployment targets
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rlang import Regex, RegexSyntaxError
from ..rtypes import Signature, named_type, simple


class AnnotationError(ValueError):
    """A malformed annotation comment."""


@dataclass
class AnnotationSet:
    variables: Dict[str, Regex] = field(default_factory=dict)
    signatures: Dict[str, Signature] = field(default_factory=dict)
    n_args: Optional[int] = None
    platforms: List[str] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (
            self.variables or self.signatures or self.platforms
        ) and self.n_args is None


_VAR = re.compile(r"#\s*@var\s+([A-Za-z_][A-Za-z0-9_]*)\s*:\s*(.+?)\s*$")
_TYPE = re.compile(r"#\s*@type\s+(.+?)\s*::\s*(.+?)\s*->\s*(.+?)\s*$")
_ARGS = re.compile(r"#\s*@args\s+([0-9]+)\s*$")
_PLATFORMS = re.compile(r"#\s*@platforms\s+(.+?)\s*$")


def load_annotation_file(path: str) -> AnnotationSet:
    """Annotations from an external file (§4: constraints may live in
    "external files", enabling community-sourced repositories à la
    TypeScript's DefinitelyTyped).  The file uses the same directive
    syntax as inline comments; bare (uncommented) directives are also
    accepted."""
    with open(path, "r", encoding="utf-8") as handle:
        body = handle.read()
    normalised = "\n".join(
        line if line.lstrip().startswith("#") or not line.strip() else "# " + line.strip()
        for line in body.splitlines()
    )
    return parse_annotations(normalised)


def merge_annotations(*sets: AnnotationSet) -> AnnotationSet:
    """Combine annotation sets; later sets win on conflicts (a script's
    inline annotations override a shared repository's)."""
    result = AnnotationSet()
    for annotations in sets:
        result.variables.update(annotations.variables)
        result.signatures.update(annotations.signatures)
        if annotations.n_args is not None:
            result.n_args = annotations.n_args
        if annotations.platforms:
            result.platforms = list(annotations.platforms)
    return result


def parse_annotations(source: str) -> AnnotationSet:
    """Extract annotations from a script's comments."""
    result = AnnotationSet()
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("#"):
            continue
        match = _VAR.match(stripped)
        if match:
            name, type_text = match.groups()
            result.variables[name] = _resolve_type(type_text, lineno)
            continue
        match = _TYPE.match(stripped)
        if match:
            command, input_text, output_text = match.groups()
            try:
                result.signatures[command.strip()] = simple(
                    _pattern_of(input_text),
                    _pattern_of(output_text),
                    label=f"{command.strip()} (annotated)",
                )
            except RegexSyntaxError as exc:
                raise AnnotationError(f"line {lineno}: bad @type: {exc}") from exc
            continue
        match = _ARGS.match(stripped)
        if match:
            result.n_args = int(match.group(1))
            continue
        match = _PLATFORMS.match(stripped)
        if match:
            result.platforms = match.group(1).split()
            continue
        if stripped.startswith("# @") or stripped.startswith("#@"):
            raise AnnotationError(f"line {lineno}: unrecognised annotation {stripped!r}")
    return result


def _resolve_type(text: str, lineno: int) -> Regex:
    named = named_type(text)
    if named is not None:
        return named.line
    try:
        return Regex.compile(_pattern_of(text))
    except RegexSyntaxError as exc:
        raise AnnotationError(f"line {lineno}: bad @var type: {exc}") from exc


def _pattern_of(text: str) -> str:
    text = text.strip()
    named = named_type(text)
    if named is not None:
        # reuse the library pattern so named types work in @type, too
        from ..rtypes.library import _NAMED_PATTERNS

        return _NAMED_PATTERNS[text]
    return text
