"""Analysis reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..diag import Diagnostic, Severity


@dataclass
class Report:
    """The analyzer's verdict on one script."""

    source: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    paths_explored: int = 0
    paths_merged: int = 0
    states: int = 0
    #: times the engine dropped states past its path budget (`max_fork`);
    #: nonzero means the diagnostics may be incomplete
    truncations: int = 0

    # -- queries ------------------------------------------------------------

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def races(self) -> List[Diagnostic]:
        """RACE-family hazards from the effect-graph analysis."""
        return [d for d in self.diagnostics if d.code.startswith("race-")]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """No errors or warnings (infos are advisory)."""
        return not self.errors() and not self.warnings()

    @property
    def unsafe(self) -> bool:
        """At least one definite incorrectness."""
        return bool(self.errors())

    #: diagnostic codes marking a result as incomplete
    DEGRADED_CODES = ("analysis-degraded", "internal-error", "analysis-quarantined")

    @property
    def degraded(self) -> bool:
        """The analysis did not fully complete: a resource budget ran
        out, a component crashed and was isolated, or the file was
        quarantined by the batch driver.  Degraded reports are still
        renderable but are never written to the result cache (a later
        run re-analyzes the file from scratch)."""
        return any(d.code in self.DEGRADED_CODES for d in self.diagnostics)

    # -- serialization -------------------------------------------------------

    #: bump when the dict layout changes (also salted into cache keys)
    SCHEMA_VERSION = 1

    def to_dict(self) -> dict:
        """A JSON-safe dict that :meth:`from_dict` restores exactly —
        ``Report.from_dict(r.to_dict()).render()`` is byte-identical to
        ``r.render()``, including race hazards and ``related`` entries."""
        return {
            "schema": self.SCHEMA_VERSION,
            "source": self.source,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "paths_explored": self.paths_explored,
            "paths_merged": self.paths_merged,
            "states": self.states,
            "truncations": self.truncations,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Report":
        return cls(
            source=data.get("source", ""),
            diagnostics=[
                Diagnostic.from_dict(d) for d in data.get("diagnostics", ())
            ],
            paths_explored=data.get("paths_explored", 0),
            paths_merged=data.get("paths_merged", 0),
            states=data.get("states", 0),
            truncations=data.get("truncations", 0),
        )

    # -- rendering -----------------------------------------------------------

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        lines = []
        shown = [d for d in self.diagnostics if not (d.severity < min_severity)]
        for diag in sorted(
            shown, key=lambda d: (d.pos.line if d.pos else 0, d.pos.col if d.pos else 0)
        ):
            lines.append(diag.render())
        summary = (
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s), "
            f"{len(self.infos())} note(s) — "
            f"{self.paths_explored} path step(s) explored, "
            f"{self.states} final state(s)"
        )
        hazards = self.races()
        if hazards:
            summary += f" [{len(hazards)} interleaving hazard(s)]"
        if self.truncations:
            summary += f" [truncated {self.truncations}x]"
        if self.degraded:
            summary += " [degraded]"
        lines.append(summary)
        return "\n".join(lines)
