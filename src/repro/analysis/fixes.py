"""Automatic fix suggestion and synthesis (paper §5, "Correctness").

"Besides identifying potential errors, static analysis can be leveraged
to automatically insert fixes targeting correctness. These might include
synthesized dependency prologues that ensure that a script's
dependencies are met — including expected file system state, available
utilities, and shell environment."

Two facilities:

- :func:`suggest_fixes` — per-diagnostic repair suggestions, some of
  them mechanically applicable (flag additions), others templates
  (guards) presented IDE-style;
- :func:`synthesize_prologue` — a dependency prologue derived from the
  analysis: utilities the script invokes but that have no specification
  (checked with ``command -v``), paths the script reads before ever
  creating (checked with ``test -e``), and environment variables it
  consumes (checked with ``${VAR:?}``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..checkers import default_checkers
from ..diag import Diagnostic
from ..fs import FsOp
from ..shell import parse
from ..shell.ast import SimpleCommand, walk
from ..symex import Engine
from .analyzer import analyze
from .report import Report


@dataclass
class Fix:
    """One suggested repair."""

    code: str               # the diagnostic it addresses
    line: int               # 1-based line in the original script
    description: str
    replacement: Optional[str] = None  # full-line replacement when mechanical
    applicable: bool = False

    def __str__(self) -> str:
        mark = "auto" if self.applicable else "hint"
        return f"line {self.line} [{mark}] {self.description}"


# -- per-diagnostic suggesters ------------------------------------------------

_PORTABLE_ALTERNATIVES = {
    ("sed", "-i"): "write to a temporary file and mv it into place",
    ("readlink", "-f"): "use `cd -P` + `pwd -P`, or ship a realpath helper",
    ("date", "-d"): "compute relative dates in the caller or with awk",
    ("date", "-v"): "compute relative dates in the caller or with awk",
    ("sort", "-g"): "use `sort -n` when inputs are plain decimals",
    ("grep", "-P"): "rewrite the pattern as an ERE and use grep -E",
    ("ls", "--color"): "drop --color in scripts (it is for terminals)",
    ("ls", "-G"): "drop -G in scripts (it is for terminals)",
}


def suggest_fixes(source: str, report: Optional[Report] = None, n_args: int = 0) -> List[Fix]:
    """Suggestions for every repairable diagnostic of a script."""
    if report is None:
        report = analyze(source, n_args=n_args)
    lines = source.splitlines()
    fixes: List[Fix] = []
    for diagnostic in report.diagnostics:
        fixes.extend(_fixes_for(diagnostic, lines))
    # deduplicate by (code, line, description)
    seen = set()
    unique = []
    for fix in fixes:
        key = (fix.code, fix.line, fix.description)
        if key not in seen:
            seen.add(key)
            unique.append(fix)
    return unique


def _fixes_for(diagnostic: Diagnostic, lines: List[str]) -> List[Fix]:
    line_no = diagnostic.pos.line if diagnostic.pos else 1
    line = lines[line_no - 1] if 0 < line_no <= len(lines) else ""

    if diagnostic.code == "dangerous-deletion":
        variable = _variable_in(line)
        guard = (
            f'[ "$(realpath "${{{variable}}}/")" != "/" ] || exit 1'
            if variable
            else 'guard the deletion target against "/"'
        )
        return [
            Fix(
                code=diagnostic.code,
                line=line_no,
                description=f"insert a root guard before the deletion: {guard}",
            )
        ]

    if diagnostic.code == "idempotence":
        if re.search(r"\bmkdir\b", line) and " -p" not in line:
            return [
                Fix(
                    code=diagnostic.code,
                    line=line_no,
                    description="make mkdir idempotent with -p",
                    replacement=re.sub(r"\bmkdir\b", "mkdir -p", line, count=1),
                    applicable=True,
                )
            ]
        if re.search(r"\bln\s+-s\b", line) and "-sf" not in line and "-f" not in line:
            return [
                Fix(
                    code=diagnostic.code,
                    line=line_no,
                    description="make ln idempotent with -f",
                    replacement=re.sub(r"\bln\s+-s\b", "ln -sf", line, count=1),
                    applicable=True,
                )
            ]
        return []

    if diagnostic.code == "undefined-variable":
        variable = _variable_named_in(diagnostic.message)
        if variable:
            return [
                Fix(
                    code=diagnostic.code,
                    line=line_no,
                    description=f'fail fast when unset: use "${{{variable}:?}}" '
                    "or give it a default with :-",
                )
            ]
        return []

    if diagnostic.code == "dead-stream":
        return [
            Fix(
                code=diagnostic.code,
                line=line_no,
                description="the filter can never match its input type; "
                "check case/anchoring of the pattern",
            )
        ]

    if diagnostic.code == "platform-flag":
        match = re.search(r"(\S+) (\-\-?\S+) is not available on (\S+);", diagnostic.message)
        if match:
            command, flag, target = match.groups()
            hint = _PORTABLE_ALTERNATIVES.get((command, flag))
            description = f"{command} {flag} is missing on {target}"
            if hint:
                description += f"; portable alternative: {hint}"
            return [Fix(code=diagnostic.code, line=line_no, description=description)]
        return []

    if diagnostic.code == "always-fails":
        return [
            Fix(
                code=diagnostic.code,
                line=line_no,
                description="this invocation contradicts earlier file-system "
                "effects; reorder it or re-create the path first",
            )
        ]

    return []


def apply_fixes(source: str, fixes: Sequence[Fix]) -> str:
    """Apply the mechanically-applicable fixes (full-line replacements)."""
    lines = source.splitlines()
    for fix in fixes:
        if fix.applicable and fix.replacement is not None and 0 < fix.line <= len(lines):
            lines[fix.line - 1] = fix.replacement
    return "\n".join(lines) + ("\n" if source.endswith("\n") else "")


def _variable_in(line: str) -> Optional[str]:
    match = re.search(r"\$\{?([A-Za-z_][A-Za-z0-9_]*)", line)
    return match.group(1) if match else None


def _variable_named_in(message: str) -> Optional[str]:
    match = re.search(r"\$([A-Za-z_][A-Za-z0-9_]*)", message)
    return match.group(1) if match else None


# -- dependency prologue synthesis ------------------------------------------------


@dataclass
class Prologue:
    utility_checks: List[str] = field(default_factory=list)
    path_checks: List[str] = field(default_factory=list)
    env_checks: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = ["# --- synthesized dependency prologue ---"]
        for name in self.utility_checks:
            lines.append(
                f"command -v {name} >/dev/null 2>&1 || "
                f'{{ echo "missing utility: {name}" >&2; exit 127; }}'
            )
        for path in self.path_checks:
            lines.append(
                f'[ -e "{path}" ] || {{ echo "missing path: {path}" >&2; exit 66; }}'
            )
        for variable in self.env_checks:
            lines.append(f': "${{{variable}:?environment variable required}}"')
        lines.append("# --- end prologue ---")
        return "\n".join(lines)

    def is_empty(self) -> bool:
        return not (self.utility_checks or self.path_checks or self.env_checks)


def synthesize_prologue(source: str, n_args: int = 0) -> Prologue:
    """Derive a prologue guaranteeing the script's dependencies (§5)."""
    ast = parse(source)
    engine = Engine(checkers=default_checkers())
    result = engine.run_script(source, n_args=n_args)

    # 1. utilities: invoked commands without specs/builtins/functions
    from ..symex import builtins as builtins_mod
    from ..shell.ast import FunctionDef

    defined = {n.name for n in walk(ast) if isinstance(n, FunctionDef)}
    utilities: List[str] = []
    for node in walk(ast):
        if isinstance(node, SimpleCommand) and node.name:
            name = node.name
            if (
                name not in defined
                and not builtins_mod.is_builtin(name)
                and engine.registry.get(name) is None
                and name not in utilities
            ):
                utilities.append(name)

    # 2. paths: concrete paths read/stat'ed on some path before the script
    #    ever created them
    created: Set[str] = set()
    needed: List[str] = []
    for state in result.states:
        created_here: Set[str] = set()
        for event in state.fs.log:
            path = event.path
            if "<" in path:  # symbolic segment: not checkable concretely
                continue
            if event.op in (FsOp.CREATE, FsOp.WRITE):
                created_here.add(path)
            elif event.op in (FsOp.READ, FsOp.LIST):
                if path not in created_here and path not in needed:
                    needed.append(path)

    # 3. environment variables the script consumes
    env_vars: List[str] = []
    for diagnostic in result.diagnostics:
        if diagnostic.code == "env-variable":
            match = re.search(r"\$([A-Za-z_][A-Za-z0-9_]*)", diagnostic.message)
            if match and match.group(1) not in env_vars and match.group(1) != "HOME":
                env_vars.append(match.group(1))

    return Prologue(
        utility_checks=utilities, path_checks=needed, env_checks=env_vars
    )


# -- automatic platform porting (§5: "even automatically transform the
# program to equivalent variations for different platforms") -------------------


@dataclass
class PortResult:
    source: str
    rewrites: List[str] = field(default_factory=list)
    unresolved: List[str] = field(default_factory=list)

    @property
    def fully_portable(self) -> bool:
        return not self.unresolved


def port_script(source: str, target: str = "macos") -> PortResult:
    """Rewrite platform-dependent invocations into portable equivalents.

    Mechanical rewrites (applied):
    - ``sed -i EXPR FILE``      -> temp-file-and-mv dance
    - ``readlink -f PATH``      -> ``realpath PATH``
    - ``date -I``               -> ``date +%F``
    - ``ls --color[=...]``      -> flag dropped
    - ``grep -P PAT``           -> ``grep -E PAT`` when the pattern has no
      Perl-only constructs

    Anything else flagged by the platform checker is reported as
    unresolved (a human rewrite is needed).
    """
    lines = source.splitlines()
    rewrites: List[str] = []

    for idx, line in enumerate(lines):
        new_line, note = _port_line(line)
        if note:
            lines[idx] = new_line
            rewrites.append(f"line {idx + 1}: {note}")

    ported = "\n".join(lines) + ("\n" if source.endswith("\n") else "")
    report = analyze(ported, platform_targets=[target])
    unresolved = [
        diagnostic.message for diagnostic in report.by_code("platform-flag")
    ]
    return PortResult(source=ported, rewrites=rewrites, unresolved=unresolved)


def _port_line(line: str):
    match = re.match(r"^(\s*)sed\s+-i\s+(\S+)\s+(\S+)\s*$", line)
    if match:
        indent, expr, target_file = match.groups()
        rewritten = (
            f"{indent}sed {expr} {target_file} > {target_file}.tmp && "
            f"mv {target_file}.tmp {target_file}"
        )
        return rewritten, "sed -i rewritten via temp file"
    match = re.match(r"^(\s*)(.*)\breadlink\s+-f\b(.*)$", line)
    if match:
        indent, before, after = match.groups()
        return f"{indent}{before}realpath{after}", "readlink -f -> realpath"
    match = re.match(r"^(\s*)(.*)\bdate\s+-I\b(.*)$", line)
    if match:
        indent, before, after = match.groups()
        return f"{indent}{before}date +%F{after}", "date -I -> date +%F"
    if re.search(r"\bls\b[^|;]*--color(=\w+)?", line):
        rewritten = re.sub(r"\s*--color(=\w+)?", "", line)
        return rewritten, "ls --color dropped"
    match = re.search(r"\bgrep\s+-P\s+('[^']*'|\"[^\"]*\"|\S+)", line)
    if match:
        pattern = match.group(1)
        if not re.search(r"\(\?|\\[A-Z]|\\d|\\w|\\s", pattern):
            rewritten = line.replace("grep -P", "grep -E", 1)
            return rewritten, "grep -P -> grep -E (pattern is ERE-safe)"
    return line, None
