"""Metric value types: counters are plain ints; histograms keep summary
statistics plus a *bounded* sample reservoir, so unbounded workloads stay
O(1) memory while ``describe()`` and the ops console can still report
p50/p95/p99 instead of mean-only."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: reservoir capacity per histogram.  512 doubles is ~4KiB and gives a
#: p99 estimate within a couple of rank positions at any stream length.
RESERVOIR_SIZE = 512

#: fixed PRNG seed: reservoir contents are deterministic for a given
#: observation sequence, which keeps tests and benchmark JSON stable.
_RESERVOIR_SEED = 0x5EED


@dataclass
class Histogram:
    """Streaming summary of an observed distribution.

    Exact ``count``/``total``/``min``/``max`` plus a bounded reservoir
    (Vitter's algorithm R with a fixed seed) backing
    :meth:`percentile`.  Quantiles are therefore estimates once more
    than :data:`RESERVOIR_SIZE` values have been observed; everything
    else is exact.
    """

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    samples: List[float] = field(default_factory=list)
    _rng: Optional[random.Random] = field(
        default=None, repr=False, compare=False
    )

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(value)
        else:
            if self._rng is None:
                self._rng = random.Random(_RESERVOIR_SEED)
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self.samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (``q`` in [0, 100]) from the reservoir,
        by linear interpolation between closest ranks; None when no
        values have been observed."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in, preserving reservoir samples.  When the
        combined reservoirs overflow the cap, a deterministic stride
        subsample keeps a cross-section of both sides."""
        self.count += other.count
        self.total += other.total
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            if self.minimum is None or bound < self.minimum:
                self.minimum = bound
            if self.maximum is None or bound > self.maximum:
                self.maximum = bound
        combined = self.samples + list(other.samples)
        if len(combined) > RESERVOIR_SIZE:
            stride = len(combined) / RESERVOIR_SIZE
            combined = [
                combined[min(int(i * stride), len(combined) - 1)]
                for i in range(RESERVOIR_SIZE)
            ]
        self.samples = combined

    def copy(self) -> "Histogram":
        return Histogram(
            count=self.count,
            total=self.total,
            minimum=self.minimum,
            maximum=self.maximum,
            samples=list(self.samples),
        )

    def describe(self) -> str:
        if not self.count:
            return "n=0"
        text = (
            f"n={self.count} mean={self.mean:.2f} "
            f"min={self.minimum:g} max={self.maximum:g}"
        )
        if len(self.samples) > 1:
            text += (
                f" p50={self.percentile(50):g}"
                f" p95={self.percentile(95):g}"
                f" p99={self.percentile(99):g}"
            )
        return text

    def quantiles(self) -> Dict[str, Optional[float]]:
        """The standard ops quantile set (for stats tables and JSON)."""
        return {
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


@dataclass
class MetricsSnapshot:
    """A point-in-time copy of a recorder's counters and histograms.

    Snapshots are the unit of metric *transport*: workers ship them
    across the process-pool boundary, the analysis server folds one per
    request into its totals, and the ``stats`` op serializes them over
    the wire — so :meth:`to_dict`/:meth:`from_dict` must round-trip
    everything, reservoir samples included.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, histogram in other.histograms.items():
            mine = self.histograms.setdefault(name, Histogram())
            mine.merge(histogram)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        return self.histograms.get(name, Histogram())

    def to_dict(self) -> dict:
        """JSON-serializable form (the analysis server's ``stats`` op
        and the pool-worker return path)."""
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.minimum,
                    "max": h.maximum,
                    "samples": list(h.samples),
                }
                for name, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            histograms={
                name: Histogram(
                    count=h.get("count", 0),
                    total=h.get("total", 0.0),
                    minimum=h.get("min"),
                    maximum=h.get("max"),
                    samples=list(h.get("samples", [])),
                )
                for name, h in data.get("histograms", {}).items()
            },
        )
