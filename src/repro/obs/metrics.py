"""Metric value types: counters are plain ints; histograms keep summary
statistics (not raw samples) so unbounded workloads stay O(1) memory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class Histogram:
    """Streaming summary of an observed distribution."""

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            if self.minimum is None or bound < self.minimum:
                self.minimum = bound
            if self.maximum is None or bound > self.maximum:
                self.maximum = bound

    def describe(self) -> str:
        if not self.count:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:.2f} "
            f"min={self.minimum:g} max={self.maximum:g}"
        )


@dataclass
class MetricsSnapshot:
    """A point-in-time copy of a recorder's counters and histograms."""

    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, histogram in other.histograms.items():
            mine = self.histograms.setdefault(name, Histogram())
            mine.merge(histogram)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def to_dict(self) -> dict:
        """JSON-serializable form (the analysis server's ``stats`` op)."""
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.minimum,
                    "max": h.maximum,
                }
                for name, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            histograms={
                name: Histogram(
                    count=h.get("count", 0),
                    total=h.get("total", 0.0),
                    minimum=h.get("min"),
                    maximum=h.get("max"),
                )
                for name, h in data.get("histograms", {}).items()
            },
        )
