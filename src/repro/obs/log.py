"""Structured operations log: one JSON object per line.

The analysis daemon is a long-running service; when something goes
wrong at 3am the only artifact left is its log.  This logger is built
for that job and nothing else:

- **JSONL**: every event is one compact ``json.dumps`` line — greppable
  with standard tools, parseable by any log pipeline, no multi-line
  records to reassemble.
- **Rotation-safe**: the file is opened in append mode *per event*
  (one ``open``/``write``/``close``), so an external rotation
  (``mv`` + recreate, logrotate) takes effect on the next event with
  no signal handling; single ``write`` calls of one line keep
  concurrent writers from interleaving mid-record.
- **Levels**: ``debug < info < warning < error``; events below the
  configured level are dropped before serialization.
- **Never fatal**: a failed write (disk full, permission lost) is
  swallowed — observability must not take the service down with it.

Event vocabulary (the daemon's lifecycle, see :mod:`repro.server.daemon`):
``server.start`` / ``server.stop``, ``request.accept`` /
``request.done`` / ``request.error`` / ``request.shed`` /
``request.slow``, ``watch.scan`` / ``watch.stat_error``, and
``budget.clamp``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Optional

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class OpsLogger:
    """Append structured events to a JSONL file (or any writable path).

    ``clock`` is injectable for deterministic tests; it must return
    seconds since the epoch.
    """

    def __init__(
        self,
        path: str,
        level: str = "info",
        clock: Callable[[], float] = time.time,
    ):
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
            )
        self.path = path
        self.level = level
        self._threshold = LEVELS[level]
        self._clock = clock
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return True

    def emit(self, event: str, level: str = "info", **fields: Any) -> Optional[dict]:
        """Write one event; returns the record (or None when dropped).

        ``fields`` must be JSON-serializable; anything that isn't is
        stringified rather than raising (the log must never kill the
        request it is describing).
        """
        if LEVELS.get(level, LEVELS["info"]) < self._threshold:
            return None
        record = {"ts": round(self._clock(), 6), "level": level, "event": event}
        record.update(fields)
        try:
            line = json.dumps(record, separators=(",", ":"))
        except (TypeError, ValueError):
            record = {
                key: value if _is_json_scalar(value) else repr(value)
                for key, value in record.items()
            }
            line = json.dumps(record, separators=(",", ":"))
        try:
            with self._lock:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        except OSError:
            pass
        return record

    def debug(self, event: str, **fields: Any) -> Optional[dict]:
        return self.emit(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> Optional[dict]:
        return self.emit(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> Optional[dict]:
        return self.emit(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> Optional[dict]:
        return self.emit(event, level="error", **fields)


class NullOpsLogger(OpsLogger):
    """The default when no ``--log-file`` is given: drops everything."""

    def __init__(self):  # noqa: D401 — deliberately not calling super
        self.path = None
        self.level = "info"

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, event: str, level: str = "info", **fields: Any) -> Optional[dict]:
        return None


def _is_json_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))
