"""Exporters for :class:`~repro.obs.TraceRecorder` data.

Four views of the same run:

- :func:`chrome_trace` — the Chrome trace-event JSON format (open
  ``chrome://tracing`` or https://ui.perfetto.dev and load the file);
- :func:`render_tree` — a human-readable span tree for terminals;
- :func:`render_stats` — a summary table of counters, histograms, and
  per-span-name aggregate wall time (the ``--stats`` output);
- :func:`prometheus_text` — the Prometheus text exposition format for
  a :class:`~repro.obs.MetricsSnapshot` (the server's ``metrics`` op),
  so any standard scraper can consume the daemon's counters.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsSnapshot
from .recorder import SpanRecord, TraceRecorder


def chrome_trace(recorder: TraceRecorder) -> dict:
    """The run as a Chrome trace-event document (``traceEvents`` JSON)."""
    events: List[dict] = []
    origin = recorder.origin_ns
    last_ts = 0.0
    for record in recorder.iter_spans():
        ts = (record.start_ns - origin) / 1000.0  # microseconds
        dur = record.duration_ns / 1000.0
        last_ts = max(last_ts, ts + dur)
        event = {
            "name": record.name,
            "cat": "repro",
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": 1,
            "tid": 1,
        }
        if record.attrs:
            event["args"] = dict(record.attrs)
        events.append(event)
    for name in sorted(recorder.counters):
        events.append(
            {
                "name": name,
                "cat": "repro.counters",
                "ph": "C",
                "ts": last_ts,
                "pid": 1,
                "args": {"value": recorder.counters[name]},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: TraceRecorder, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(recorder), handle, indent=1)


def render_tree(recorder: TraceRecorder, max_depth: Optional[int] = None) -> str:
    """A box-drawing rendering of the span hierarchy with durations."""
    lines: List[str] = []

    def walk(record: SpanRecord, line_prefix: str, child_prefix: str, depth: int) -> None:
        label = f"{record.name}  {record.duration_ms:.3f}ms"
        if record.attrs:
            label += "  " + " ".join(f"{k}={v}" for k, v in record.attrs.items())
        lines.append(line_prefix + label)
        if max_depth is not None and depth + 1 > max_depth:
            if record.children:
                lines.append(child_prefix + f"… {len(record.children)} child span(s)")
            return
        for idx, child in enumerate(record.children):
            last = idx == len(record.children) - 1
            walk(
                child,
                child_prefix + ("└─ " if last else "├─ "),
                child_prefix + ("   " if last else "│  "),
                depth + 1,
            )

    for root in recorder.roots:
        walk(root, "", "", 0)
    return "\n".join(lines)


def span_aggregates(recorder: TraceRecorder) -> Dict[str, Tuple[int, int]]:
    """Per span name: (number of spans, total wall time in ns)."""
    totals: Dict[str, Tuple[int, int]] = {}
    for record in recorder.iter_spans():
        count, total = totals.get(record.name, (0, 0))
        totals[record.name] = (count + 1, total + record.duration_ns)
    return totals


def render_stats(recorder: TraceRecorder) -> str:
    """The ``--stats`` summary table (counters, histograms, span times)."""
    lines: List[str] = []
    width = 44

    def row(name: str, value: str) -> str:
        pad = max(1, width - len(name))
        return f"  {name} {'.' * pad} {value}"

    counters = recorder.counters
    if counters:
        lines.append("counters")
        for name in sorted(counters):
            lines.append(row(name, str(counters[name])))
    histograms = recorder.histograms
    if histograms:
        lines.append("histograms")
        for name in sorted(histograms):
            lines.append(row(name, histograms[name].describe()))
    aggregates = span_aggregates(recorder)
    if aggregates:
        lines.append("spans (wall time)")
        for name in sorted(aggregates, key=lambda n: -aggregates[n][1]):
            count, total_ns = aggregates[name]
            lines.append(row(name, f"n={count} total={total_ns / 1e6:.3f}ms"))
    if not lines:
        return "(no telemetry recorded)"
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    """A dotted internal metric name as a legal Prometheus identifier
    (``batch.cache.hit`` -> ``repro_batch_cache_hit``)."""
    flat = _METRIC_NAME_RE.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{prefix}_{flat}" if prefix else flat


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def prometheus_text(
    snapshot: MetricsSnapshot,
    gauges: Optional[Dict[str, float]] = None,
    prefix: str = "repro",
) -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total`` counter series;
    histograms become summaries (quantile series plus ``_sum`` and
    ``_count``); ``gauges`` carries point-in-time values the snapshot
    doesn't (uptime, in-flight requests).  Output ends with a newline
    as the format requires.
    """
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot.counters[name]}")
    for name in sorted(snapshot.histograms):
        histogram = snapshot.histograms[name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for quantile in (0.5, 0.95, 0.99):
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_prom_value(histogram.percentile(quantile * 100))}"
            )
        lines.append(f"{metric}_sum {_prom_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")
    for name in sorted(gauges or {}):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(gauges[name])}")
    return "\n".join(lines) + "\n"
