"""Observability: tracing spans, counters, and histograms for the analyzer.

The paper's pitch is that ahead-of-time shell analysis is feasible *at
interactive speed*; this package is the measurement substrate that keeps
that claim honest.  It is deliberately zero-dependency and built around
three pieces:

- :class:`NullRecorder` — the default.  Every instrumentation point in
  the hot paths either calls a no-op method or is guarded by
  ``recorder.enabled``, so disabled telemetry costs almost nothing.
- :class:`TraceRecorder` — hierarchical spans with monotonic timing,
  named counters, and histograms.
- :mod:`repro.obs.export` — Chrome ``chrome://tracing`` JSON, a
  human-readable span tree, and a stats summary table.

Usage::

    from repro.obs import TraceRecorder, use_recorder

    recorder = TraceRecorder()
    with use_recorder(recorder):
        analyze(source)
    print(recorder.render_stats())

Instrumented code never holds a recorder directly; it asks
:func:`get_recorder` (or captures it per run) so the active recorder can
be swapped per invocation.
"""

from .log import NullOpsLogger, OpsLogger
from .metrics import Histogram, MetricsSnapshot
from .recorder import (
    NullRecorder,
    Recorder,
    SpanRecord,
    TraceRecorder,
    get_recorder,
    set_recorder,
    traced,
    use_recorder,
    use_thread_recorder,
)

__all__ = [
    "Histogram",
    "MetricsSnapshot",
    "NullOpsLogger",
    "NullRecorder",
    "OpsLogger",
    "Recorder",
    "SpanRecord",
    "TraceRecorder",
    "get_recorder",
    "set_recorder",
    "traced",
    "use_recorder",
    "use_thread_recorder",
]
