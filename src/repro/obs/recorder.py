"""Recorders: the no-op default and the tracing implementation.

Design constraints (see ISSUE 1):

- the *disabled* path must be nearly free: :class:`NullRecorder` methods
  are empty, ``enabled`` is a plain class attribute, and hot loops guard
  span/histogram work behind ``if recorder.enabled:``;
- spans nest hierarchically and time with a monotonic clock
  (``time.perf_counter_ns``), injectable for deterministic tests;
- counters and histograms are named with dotted strings
  (``symex.states_explored``, ``rlang.dfa_states``) so exporters can
  group them without a schema.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from .metrics import Histogram, MetricsSnapshot


class SpanRecord:
    """One timed span; children are spans opened while it was active."""

    __slots__ = ("name", "start_ns", "end_ns", "attrs", "children")

    def __init__(self, name: str, start_ns: int, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs = attrs or {}
        self.children: List["SpanRecord"] = []

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def __repr__(self) -> str:
        return f"SpanRecord({self.name!r}, {self.duration_ms:.3f}ms)"


class _NullSpan:
    """Reusable inert context manager (singleton, allocation-free)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Base interface; also serves as the no-op implementation."""

    enabled: bool = False

    def span(self, name: str, **attrs: Any):
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot's counters/histograms in (no-op when disabled).

        This is how metrics cross execution boundaries: pool workers
        return a snapshot instead of mutating a recorder they don't
        share, and the server folds per-request recorders into totals.
        """


class NullRecorder(Recorder):
    """The default recorder: records nothing, costs ~nothing."""


class _Span:
    """Context-manager handle binding a named span to a recorder."""

    __slots__ = ("_recorder", "_name", "_attrs", "record")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: Dict[str, Any]):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self.record: Optional[SpanRecord] = None

    def __enter__(self) -> SpanRecord:
        self.record = self._recorder._open(self._name, self._attrs)
        return self.record

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._close(self.record)
        return False


class TraceRecorder(Recorder):
    """Records hierarchical spans, counters, and histograms.

    Span nesting is tracked per thread; counters and histograms are
    shared across threads (dict mutation is GIL-atomic for our usage).
    """

    enabled = True

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self._clock = clock
        self.origin_ns: int = clock()
        self.roots: List[SpanRecord] = []
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._local = threading.local()
        self._roots_lock = threading.Lock()
        self._absorb_lock = threading.Lock()

    # -- spans --------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs)

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str, attrs: Dict[str, Any]) -> SpanRecord:
        record = SpanRecord(name, self._clock(), attrs)
        stack = self._stack()
        if stack:
            stack[-1].children.append(record)
        else:
            with self._roots_lock:
                self.roots.append(record)
        stack.append(record)
        return record

    def _close(self, record: Optional[SpanRecord]) -> None:
        if record is None:
            return
        record.end_ns = self._clock()
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:  # mispaired exits: unwind to the record
            while stack and stack.pop() is not record:
                pass

    def iter_spans(self) -> Iterator[SpanRecord]:
        """All recorded spans, depth-first."""
        stack = list(reversed(self.roots))
        while stack:
            record = stack.pop()
            yield record
            stack.extend(reversed(record.children))

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.iter_spans())

    # -- metrics ------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.add(value)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        return self.histograms.get(name, Histogram())

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self.counters),
            histograms={
                name: h.copy() for name, h in self.histograms.items()
            },
        )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Merge a snapshot's counters and histograms into this
        recorder (spans don't transfer: a long-lived recorder absorbing
        per-request snapshots keeps bounded memory)."""
        with self._absorb_lock:
            for name, value in snapshot.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, histogram in snapshot.histograms.items():
                mine = self.histograms.get(name)
                if mine is None:
                    mine = self.histograms[name] = Histogram()
                mine.merge(histogram)

    # -- rendering (delegates; import is lazy to keep this module light) ----

    def to_chrome_trace(self) -> dict:
        from .export import chrome_trace

        return chrome_trace(self)

    def render_tree(self, max_depth: Optional[int] = None) -> str:
        from .export import render_tree

        return render_tree(self, max_depth=max_depth)

    def render_stats(self) -> str:
        from .export import render_stats

        return render_stats(self)


# ---------------------------------------------------------------------------
# The active recorder
# ---------------------------------------------------------------------------

_NULL = NullRecorder()
_current: Recorder = _NULL
_tls = threading.local()


def get_recorder() -> Recorder:
    """The currently active recorder (the no-op recorder by default).

    A thread-local override (see :func:`use_thread_recorder`) wins over
    the process-global recorder: the analysis server uses it to give
    every concurrently-handled request its own recorder without the
    requests clobbering each other."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    return _current


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install ``recorder`` (None restores the no-op); returns the previous."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else _NULL
    return previous


@contextmanager
def use_recorder(recorder: Recorder):
    """Scoped installation: the previous recorder is restored on exit."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@contextmanager
def use_thread_recorder(recorder: Recorder):
    """Scoped installation visible only to the *current thread*.

    Unlike :func:`use_recorder` (a process-global swap), this override
    isolates concurrent request handlers from one another: each server
    thread records into its own request-scoped recorder while other
    threads keep seeing theirs (or the global default).
    """
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(recorder)
    try:
        yield recorder
    finally:
        stack.pop()


def traced(name=None, **attrs):
    """Decorator: wrap calls in a span when the active recorder is enabled.

    Usable bare (``@traced``) or with a name (``@traced("phase.parse")``).
    """

    def decorate(fn):
        label = name if isinstance(name, str) else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            recorder = get_recorder()
            if not recorder.enabled:
                return fn(*args, **kwargs)
            with recorder.span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name):  # bare @traced
        return decorate(name)
    return decorate
