"""Specifications for stream-processing utilities.

Their stream behaviour lives in :mod:`repro.rtypes.library` (signatures
are derived per invocation); the specs here contribute argv syntax,
file-reading effects, and platform flag tables.
"""

from __future__ import annotations

from ...rtypes import StreamType
from ..ir import Clause, CommandSpec, Exists, ListsDir, PathKind, ReadsFile, Sel


def _reader_clauses():
    """Commands that read their path operands (or stdin with none)."""
    return [
        Clause(
            pre=(Exists(Sel.EACH, PathKind.FILE),),
            effects=(ReadsFile(Sel.EACH),),
            exit_code=0,
            note="read operand files",
        ),
        Clause(
            pre=(),
            effects=(),
            exit_code=1,
            stderr=True,
            note="unreadable/missing operand fails",
        ),
    ]


def cat_spec() -> CommandSpec:
    return CommandSpec(
        name="cat",
        summary="concatenate and print files",
        options={"n": False, "b": False, "e": False, "t": False, "u": False,
                 "v": False, "A": False},
        clauses=_reader_clauses(),
        platform_flags={"-A": frozenset({"linux"})},
    )


def grep_spec() -> CommandSpec:
    return CommandSpec(
        name="grep",
        summary="search for a pattern",
        options={"e": True, "E": False, "F": False, "v": False, "i": False,
                 "o": False, "c": False, "n": False, "x": False, "q": False,
                 "r": False, "l": False, "H": False, "h": False, "P": False,
                 "w": False, "s": False, "m": True, "f": True},
        long_options={"regexp": True, "color": True, "include": True,
                      "exclude": True, "perl-regexp": False},
        min_operands=0,
        clauses=[
            Clause(
                pre=(Exists(Sel.EACH, PathKind.FILE),),
                effects=(ReadsFile(Sel.EACH),),
                exit_code=0,
                note="a line matched",
            ),
            Clause(pre=(), effects=(), exit_code=1, note="no line matched"),
        ],
        # the pattern operand is not a path; any following operands are
        path_operands_from=1,
        platform_flags={
            "-P": frozenset({"linux"}),
            "--perl-regexp": frozenset({"linux"}),
        },
    )


def sed_spec() -> CommandSpec:
    return CommandSpec(
        name="sed",
        summary="stream editor",
        options={"n": False, "e": True, "f": True, "i": False, "E": False,
                 "r": False, "s": False, "u": False},
        min_operands=0,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        operands_are_paths=False,
        platform_flags={
            # GNU `sed -i` takes an optional suffix; BSD requires one.
            "-i": frozenset({"linux"}),
            "-r": frozenset({"linux"}),
            "-u": frozenset({"linux"}),
        },
    )


def sort_spec() -> CommandSpec:
    return CommandSpec(
        name="sort",
        summary="sort lines",
        options={"g": False, "n": False, "r": False, "u": False, "k": True,
                 "t": True, "f": False, "h": False, "V": False, "o": True,
                 "c": False, "s": False},
        clauses=_reader_clauses(),
        platform_flags={
            "-g": frozenset({"linux"}),
            "-h": frozenset({"linux"}),
            "-V": frozenset({"linux"}),
        },
    )


def cut_spec() -> CommandSpec:
    return CommandSpec(
        name="cut",
        summary="select fields or characters",
        options={"f": True, "d": True, "c": True, "b": True, "s": False},
        clauses=_reader_clauses(),
    )


def head_spec() -> CommandSpec:
    return CommandSpec(
        name="head",
        summary="first lines of files",
        options={"n": True, "c": True, "q": False, "v": False},
        clauses=_reader_clauses(),
        platform_flags={"-v": frozenset({"linux"}), "-q": frozenset({"linux"})},
    )


def tail_spec() -> CommandSpec:
    return CommandSpec(
        name="tail",
        summary="last lines of files",
        options={"n": True, "c": True, "f": False, "F": False, "q": False},
        clauses=_reader_clauses(),
        platform_flags={"-F": frozenset({"linux", "macos"})},
    )


def wc_spec() -> CommandSpec:
    return CommandSpec(
        name="wc",
        summary="count lines, words, bytes",
        options={"l": False, "w": False, "c": False, "m": False, "L": False},
        clauses=_reader_clauses(),
        stdout=StreamType.of(r"\s*[0-9]+(\s+[0-9]+)*(\s+\S+)?", "counts"),
        platform_flags={"-L": frozenset({"linux"})},
    )


def uniq_spec() -> CommandSpec:
    return CommandSpec(
        name="uniq",
        summary="filter adjacent duplicate lines",
        options={"c": False, "d": False, "u": False, "i": False, "f": True, "s": True},
        clauses=_reader_clauses(),
    )


def tr_spec() -> CommandSpec:
    return CommandSpec(
        name="tr",
        summary="translate characters",
        options={"d": False, "s": False, "c": False, "C": False},
        min_operands=1,
        max_operands=2,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        operands_are_paths=False,
    )


def xargs_spec() -> CommandSpec:
    return CommandSpec(
        name="xargs",
        summary="construct argument lists and invoke a utility",
        options={"n": True, "I": True, "0": False, "t": False, "p": False,
                 "r": False, "P": True, "d": True},
        min_operands=0,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        operands_are_paths=False,
        platform_flags={"-d": frozenset({"linux"}), "-r": frozenset({"linux"})},
    )


def tee_spec() -> CommandSpec:
    return CommandSpec(
        name="tee",
        summary="duplicate standard input to files",
        options={"a": False, "i": False},
        clauses=[
            Clause(
                pre=(),
                effects=(),
                exit_code=0,
                note="writes operands (modelled via redirect machinery)",
            )
        ],
    )


def all_streams():
    return [
        cat_spec(),
        grep_spec(),
        sed_spec(),
        sort_spec(),
        cut_spec(),
        head_spec(),
        tail_spec(),
        wc_spec(),
        uniq_spec(),
        tr_spec(),
        xargs_spec(),
        tee_spec(),
    ]
