"""The bundled specification corpus (~30 POSIX utilities)."""

from .fileops import all_fileops
from .streams import all_streams
from .sysinfo import all_sysinfo


def all_specs():
    return all_fileops() + all_streams() + all_sysinfo()


__all__ = ["all_specs", "all_fileops", "all_streams", "all_sysinfo"]
