"""Hand-written specifications for file-manipulating utilities.

These mirror what the miner derives (E7 validates the two against each
other); they encode POSIX/XBD behaviour of the classic coreutils.
"""

from __future__ import annotations

from ..ir import (
    Absent,
    Clause,
    CommandSpec,
    CopiesTo,
    Creates,
    Deletes,
    Exists,
    LinksTo,
    ListsDir,
    ParentExists,
    PathKind,
    Pre,
    ReadsFile,
    Sel,
    WritesFile,
)


def rm_spec() -> CommandSpec:
    """The paper's running example (§3)."""
    return CommandSpec(
        name="rm",
        summary="remove directory entries",
        options={"f": False, "r": False, "R": False, "i": False, "v": False, "d": False},
        long_options={"force": False, "recursive": False, "preserve-root": False,
                      "no-preserve-root": False, "verbose": False},
        min_operands=0,  # `rm -f` with no operands exits 0
        clauses=[
            # {(∃ $p) ∧ -r} rm -r $p {(∄ $p) ∧ exit 0}
            Clause(
                pre=(Exists(Sel.EACH, PathKind.ANY),),
                effects=(Deletes(Sel.EACH, recursive=True),),
                exit_code=0,
                requires_flags=frozenset({"-r"}),
                note="recursive removal of extant paths",
            ),
            Clause(
                pre=(Exists(Sel.EACH, PathKind.ANY),),
                effects=(Deletes(Sel.EACH, recursive=True),),
                exit_code=0,
                requires_flags=frozenset({"-R"}),
                note="recursive removal (-R synonym)",
            ),
            # {(∃ $p:file)} rm $p {(∄ $p) ∧ exit 0}
            Clause(
                pre=(Exists(Sel.EACH, PathKind.FILE),),
                effects=(Deletes(Sel.EACH, recursive=False),),
                exit_code=0,
                forbids_flags=frozenset({"-r", "-R"}),
                note="non-recursive removal of files",
            ),
            # {(∄ $p) ∧ -f} rm -f $p {exit 0}
            Clause(
                pre=(Absent(Sel.EACH),),
                effects=(),
                exit_code=0,
                requires_flags=frozenset({"-f"}),
                note="-f silences missing operands",
            ),
            # {(∄ $p)} rm $p {exit 1 ∧ stderr}
            Clause(
                pre=(Absent(Sel.EACH),),
                effects=(),
                exit_code=1,
                forbids_flags=frozenset({"-f"}),
                stderr=True,
                note="missing operand without -f fails",
            ),
            # {(∃ $p:dir)} rm $p {exit 1}  -- directory without -r
            Clause(
                pre=(Exists(Sel.EACH, PathKind.DIR),),
                effects=(),
                exit_code=1,
                forbids_flags=frozenset({"-r", "-R", "-d"}),
                stderr=True,
                note="directory operand without -r fails",
            ),
        ],
        platform_flags={
            "--preserve-root": frozenset({"linux"}),
            "--no-preserve-root": frozenset({"linux"}),
            "-v": frozenset({"linux", "macos"}),
        },
    )


def mkdir_spec() -> CommandSpec:
    return CommandSpec(
        name="mkdir",
        summary="make directories",
        options={"p": False, "m": True, "v": False},
        long_options={"parents": False, "mode": True, "verbose": False},
        min_operands=1,
        clauses=[
            Clause(
                pre=(Absent(Sel.EACH), ParentExists(Sel.EACH)),
                effects=(Creates(Sel.EACH, PathKind.DIR),),
                exit_code=0,
                forbids_flags=frozenset({"-p"}),
                note="create when parent exists and target absent",
            ),
            Clause(
                pre=(Absent(Sel.EACH),),
                effects=(Creates(Sel.EACH, PathKind.DIR, ensure_parents=True),),
                exit_code=0,
                requires_flags=frozenset({"-p"}),
                note="-p creates missing parents",
            ),
            Clause(
                pre=(Exists(Sel.EACH, PathKind.DIR),),
                effects=(),
                exit_code=0,
                requires_flags=frozenset({"-p"}),
                note="-p tolerates an existing directory",
            ),
            Clause(
                pre=(Exists(Sel.EACH, PathKind.FILE),),
                effects=(),
                exit_code=1,
                stderr=True,
                note="a file in the way fails even with -p",
            ),
            Clause(
                pre=(Exists(Sel.EACH, PathKind.ANY),),
                effects=(),
                exit_code=1,
                forbids_flags=frozenset({"-p"}),
                stderr=True,
                note="existing target fails without -p",
            ),
        ],
        platform_flags={"-v": frozenset({"linux"})},
    )


def rmdir_spec() -> CommandSpec:
    return CommandSpec(
        name="rmdir",
        summary="remove empty directories",
        options={"p": False},
        long_options={"parents": False},
        min_operands=1,
        clauses=[
            Clause(
                pre=(Exists(Sel.EACH, PathKind.DIR),),
                effects=(Deletes(Sel.EACH, recursive=False),),
                exit_code=0,
                note="remove empty directory",
            ),
            Clause(
                pre=(Absent(Sel.EACH),),
                effects=(),
                exit_code=1,
                stderr=True,
                note="missing directory fails",
            ),
        ],
    )


def touch_spec() -> CommandSpec:
    return CommandSpec(
        name="touch",
        summary="change file timestamps / create empty files",
        options={"a": False, "m": False, "c": False, "r": True, "t": True},
        min_operands=1,
        clauses=[
            Clause(
                pre=(Absent(Sel.EACH), ParentExists(Sel.EACH)),
                effects=(Creates(Sel.EACH, PathKind.FILE),),
                exit_code=0,
                forbids_flags=frozenset({"-c"}),
                note="create missing files",
            ),
            Clause(
                pre=(Exists(Sel.EACH, PathKind.ANY),),
                effects=(WritesFile(Sel.EACH),),
                exit_code=0,
                note="update timestamps of existing paths",
            ),
            Clause(
                pre=(Absent(Sel.EACH),),
                effects=(),
                exit_code=0,
                requires_flags=frozenset({"-c"}),
                note="-c: do not create",
            ),
        ],
    )


def cp_spec() -> CommandSpec:
    return CommandSpec(
        name="cp",
        summary="copy files",
        options={"r": False, "R": False, "f": False, "p": False, "i": False,
                 "a": False, "v": False, "n": False},
        long_options={"recursive": False, "force": False, "archive": False,
                      "reflink": True, "verbose": False, "no-clobber": False},
        min_operands=2,
        clauses=[
            Clause(
                pre=(Exists(Sel.ALL_BUT_LAST, PathKind.ANY),),
                effects=(CopiesTo(move=False),),
                exit_code=0,
                note="copy extant sources to destination",
            ),
            Clause(
                pre=(Absent(Sel.ALL_BUT_LAST),),
                effects=(),
                exit_code=1,
                stderr=True,
                note="missing source fails",
            ),
        ],
        platform_flags={
            "--reflink": frozenset({"linux"}),
            "-a": frozenset({"linux", "macos"}),
        },
    )


def mv_spec() -> CommandSpec:
    return CommandSpec(
        name="mv",
        summary="move (rename) files",
        options={"f": False, "i": False, "n": False, "v": False},
        min_operands=2,
        clauses=[
            Clause(
                pre=(Exists(Sel.ALL_BUT_LAST, PathKind.ANY),),
                effects=(CopiesTo(move=True),),
                exit_code=0,
                note="move extant sources to destination",
            ),
            Clause(
                pre=(Absent(Sel.ALL_BUT_LAST),),
                effects=(),
                exit_code=1,
                stderr=True,
                note="missing source fails",
            ),
        ],
        platform_flags={"-v": frozenset({"linux"})},
    )


def ln_spec() -> CommandSpec:
    return CommandSpec(
        name="ln",
        summary="link files",
        options={"s": False, "f": False, "n": False, "v": False},
        min_operands=1,
        max_operands=2,
        clauses=[
            # hard links require an extant source; -s does not
            Clause(
                pre=(Exists(Sel.FIRST, PathKind.ANY), Absent(Sel.LAST)),
                effects=(Creates(Sel.LAST, PathKind.FILE),),
                exit_code=0,
                forbids_flags=frozenset({"-s"}),
                note="hard link to an extant source",
            ),
            Clause(
                pre=(Absent(Sel.FIRST),),
                effects=(),
                exit_code=1,
                forbids_flags=frozenset({"-s"}),
                stderr=True,
                note="hard link to a missing source fails",
            ),
            Clause(
                pre=(Absent(Sel.LAST),),
                effects=(LinksTo(),),
                exit_code=0,
                requires_flags=frozenset({"-s"}),
                note="symlink creation (source may dangle)",
            ),
            Clause(
                pre=(Exists(Sel.LAST, PathKind.ANY),),
                effects=(Deletes(Sel.LAST), LinksTo()),
                exit_code=0,
                requires_flags=frozenset({"-f", "-s"}),
                note="-sf replaces an existing destination",
            ),
            Clause(
                pre=(Exists(Sel.FIRST, PathKind.ANY), Exists(Sel.LAST, PathKind.ANY)),
                effects=(Deletes(Sel.LAST), Creates(Sel.LAST, PathKind.FILE)),
                exit_code=0,
                requires_flags=frozenset({"-f"}),
                forbids_flags=frozenset({"-s"}),
                note="-f replaces an existing destination (hard)",
            ),
            Clause(
                pre=(Exists(Sel.LAST, PathKind.ANY),),
                effects=(),
                exit_code=1,
                forbids_flags=frozenset({"-f"}),
                stderr=True,
                note="existing destination without -f fails",
            ),
        ],
    )


def chmod_spec() -> CommandSpec:
    return CommandSpec(
        name="chmod",
        summary="change file modes",
        options={"R": False, "v": False, "f": False},
        min_operands=2,
        clauses=[
            Clause(
                pre=(Exists(Sel.LAST, PathKind.ANY),),
                effects=(WritesFile(Sel.LAST),),
                exit_code=0,
                note="mode change on extant paths",
            ),
            Clause(
                pre=(Absent(Sel.LAST),),
                effects=(),
                exit_code=1,
                stderr=True,
                note="missing path fails",
            ),
        ],
        operands_are_paths=False,  # first operand is the mode; handled ad hoc
    )


def all_fileops():
    return [
        rm_spec(),
        mkdir_spec(),
        rmdir_spec(),
        touch_spec(),
        cp_spec(),
        mv_spec(),
        ln_spec(),
        chmod_spec(),
    ]
