"""Specifications for system-information and miscellaneous utilities."""

from __future__ import annotations

from ...rtypes import StreamType, named_type
from ..ir import Clause, CommandSpec, Exists, ListsDir, PathKind, ReadsFile, Sel


def lsb_release_spec() -> CommandSpec:
    return CommandSpec(
        name="lsb_release",
        summary="print Linux Standard Base release information",
        options={"a": False, "d": False, "r": False, "c": False, "i": False,
                 "s": False},
        max_operands=0,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        stdout=named_type("lsb_release"),
        platform_flags={flag: frozenset({"linux"})
                        for flag in ["-a", "-d", "-r", "-c", "-i", "-s"]},
        operands_are_paths=False,
    )


def uname_spec() -> CommandSpec:
    return CommandSpec(
        name="uname",
        summary="print system name",
        options={"a": False, "s": False, "r": False, "m": False, "n": False,
                 "o": False, "p": False},
        max_operands=0,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        stdout=StreamType.of(r"\S+( .*)?", "uname"),
        platform_flags={"-o": frozenset({"linux"})},
        operands_are_paths=False,
    )


def echo_spec() -> CommandSpec:
    return CommandSpec(
        name="echo",
        summary="write arguments to standard output",
        options={"n": False, "e": False, "E": False},
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        operands_are_paths=False,
    )


def printf_spec() -> CommandSpec:
    return CommandSpec(
        name="printf",
        summary="formatted output",
        options={},
        min_operands=1,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        operands_are_paths=False,
    )


def true_spec() -> CommandSpec:
    return CommandSpec(
        name="true", summary="return success",
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        operands_are_paths=False,
    )


def false_spec() -> CommandSpec:
    return CommandSpec(
        name="false", summary="return failure",
        clauses=[Clause(pre=(), effects=(), exit_code=1)],
        operands_are_paths=False,
    )


def sleep_spec() -> CommandSpec:
    return CommandSpec(
        name="sleep", summary="suspend execution",
        min_operands=1, max_operands=1,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        operands_are_paths=False,
    )


def ls_spec() -> CommandSpec:
    return CommandSpec(
        name="ls",
        summary="list directory contents",
        options={"l": False, "a": False, "A": False, "1": False, "t": False,
                 "r": False, "h": False, "d": False, "R": False, "G": False,
                 "F": False},
        long_options={"color": True},
        clauses=[
            Clause(
                pre=(Exists(Sel.EACH, PathKind.ANY),),
                effects=(ListsDir(Sel.EACH),),
                exit_code=0,
                note="list extant operands",
            ),
            Clause(
                pre=(),
                effects=(),
                exit_code=1,
                stderr=True,
                note="missing operand fails",
            ),
        ],
        stdout=StreamType.of(r"[^\n]*", "listing"),
        platform_flags={
            "--color": frozenset({"linux"}),
            # GNU ls supports -G too (--no-group), so it is portable;
            # only --color is GNU-specific.
            "-G": frozenset({"linux", "macos"}),
        },
    )


def realpath_spec() -> CommandSpec:
    return CommandSpec(
        name="realpath",
        summary="print the resolved absolute path",
        options={"m": False, "e": False, "q": False, "s": False},
        min_operands=1,
        clauses=[
            Clause(
                pre=(Exists(Sel.EACH, PathKind.ANY),),
                effects=(),
                exit_code=0,
                note="resolve extant paths",
            ),
            Clause(
                pre=(),
                effects=(),
                exit_code=1,
                stderr=True,
                note="unresolvable path fails",
            ),
        ],
        stdout=named_type("abspath"),
        platform_flags={flag: frozenset({"linux"})
                        for flag in ["-m", "-e", "-q", "-s"]},
    )


def readlink_spec() -> CommandSpec:
    return CommandSpec(
        name="readlink",
        summary="print symbolic link target",
        options={"f": False, "e": False, "m": False, "n": False},
        min_operands=1,
        clauses=[
            Clause(pre=(Exists(Sel.EACH, PathKind.ANY),), effects=(), exit_code=0),
            Clause(pre=(), effects=(), exit_code=1, stderr=True),
        ],
        stdout=named_type("path"),
        platform_flags={
            "-f": frozenset({"linux"}),
            "-e": frozenset({"linux"}),
            "-m": frozenset({"linux"}),
        },
    )


def dirname_spec() -> CommandSpec:
    return CommandSpec(
        name="dirname", summary="path prefix",
        min_operands=1, max_operands=1,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        stdout=named_type("path"),
        operands_are_paths=False,  # purely textual
    )


def basename_spec() -> CommandSpec:
    return CommandSpec(
        name="basename", summary="path suffix",
        min_operands=1, max_operands=2,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        stdout=StreamType.of(r"[^/\n]+", "basename"),
        operands_are_paths=False,
    )


def pwd_spec() -> CommandSpec:
    return CommandSpec(
        name="pwd", summary="print working directory",
        max_operands=0,
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        stdout=named_type("abspath"),
        operands_are_paths=False,
    )


def date_spec() -> CommandSpec:
    return CommandSpec(
        name="date",
        summary="print or set the date",
        options={"u": False, "d": True, "v": True, "r": True, "j": False,
                 "R": False, "I": False},
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        stdout=StreamType.of(r".+", "date"),
        platform_flags={
            "-d": frozenset({"linux"}),
            "-I": frozenset({"linux"}),
            "-v": frozenset({"macos"}),
            "-j": frozenset({"macos"}),
            "-r": frozenset({"linux", "macos"}),
        },
        operands_are_paths=False,
    )


def curl_spec() -> CommandSpec:
    return CommandSpec(
        name="curl",
        summary="transfer a URL",
        options={"s": False, "S": False, "L": False, "o": True, "O": False,
                 "f": False, "k": False, "H": True, "X": True, "d": True},
        long_options={"silent": False, "location": False, "output": True,
                      "fail": False, "insecure": False},
        min_operands=0,
        clauses=[
            Clause(pre=(), effects=(), exit_code=0, note="transfer succeeded"),
            Clause(pre=(), effects=(), exit_code=22, stderr=True,
                   note="server error with -f"),
        ],
        stdout=StreamType.any(),
        operands_are_paths=False,
    )


def wget_spec() -> CommandSpec:
    return CommandSpec(
        name="wget",
        summary="network downloader",
        options={"q": False, "O": True, "c": False, "P": True},
        min_operands=1,
        clauses=[
            Clause(pre=(), effects=(), exit_code=0),
            Clause(pre=(), effects=(), exit_code=8, stderr=True),
        ],
        operands_are_paths=False,
        platform_flags={"-P": frozenset({"linux"})},
    )


def sh_spec() -> CommandSpec:
    return CommandSpec(
        name="sh",
        summary="shell interpreter",
        options={"c": True, "e": False, "u": False, "x": False, "n": False},
        clauses=[Clause(pre=(), effects=(), exit_code=0)],
        operands_are_paths=False,
    )


def find_spec() -> CommandSpec:
    return CommandSpec(
        name="find",
        summary="walk a file hierarchy",
        options={},
        clauses=[
            Clause(
                pre=(Exists(Sel.FIRST, PathKind.ANY),),
                effects=(ListsDir(Sel.FIRST),),
                exit_code=0,
            ),
            Clause(pre=(), effects=(), exit_code=1, stderr=True),
        ],
        stdout=named_type("path"),
    )


def mktemp_spec() -> CommandSpec:
    """mktemp prints the path it created — crucially, a path rooted under
    /tmp, so deleting ``$(mktemp)`` is *not* a dangerous deletion (the
    output language cannot reach ``/`` or other top-level paths)."""
    return CommandSpec(
        name="mktemp",
        summary="create a unique temporary file or directory",
        options={"d": False, "u": False, "q": False, "p": True, "t": False},
        long_options={"directory": False, "dry-run": False, "tmpdir": True,
                      "suffix": True},
        max_operands=1,  # an optional template
        clauses=[
            Clause(pre=(), effects=(), exit_code=0, note="created"),
            Clause(pre=(), effects=(), exit_code=1, stderr=True,
                   note="creation failed"),
        ],
        # The basename always contains at least one non-dot character
        # (mktemp templates end in XXXXXX replaced by random alphanumerics),
        # so the language excludes "/tmp/.", "/tmp/.." and bare "/tmp/" —
        # none of which mktemp can print, and all of which would wrongly
        # intersect the dangerous-deletion language.
        stdout=StreamType.of(
            r"/tmp/[A-Za-z0-9._-]*[A-Za-z0-9_-][A-Za-z0-9._-]*", "tmppath"
        ),
        operands_are_paths=False,  # the template is a pattern, not a path
    )


def trap_spec() -> CommandSpec:
    """``trap`` registers a handler; registration itself has no
    file-system effects (the handler body is out of scope here)."""
    return CommandSpec(
        name="trap",
        summary="register a signal/exit handler",
        options={"l": False, "p": False},
        clauses=[Clause(pre=(), effects=(), exit_code=0, note="registered")],
        operands_are_paths=False,
    )


def test_spec() -> CommandSpec:
    """External `test`; the `[`/`test` builtin is handled by the engine,
    this spec exists for completeness and for the miner benchmark."""
    return CommandSpec(
        name="test",
        summary="evaluate expression",
        clauses=[
            Clause(pre=(), effects=(), exit_code=0, note="expression true"),
            Clause(pre=(), effects=(), exit_code=1, note="expression false"),
        ],
        operands_are_paths=False,
    )


def all_sysinfo():
    return [
        lsb_release_spec(),
        uname_spec(),
        echo_spec(),
        printf_spec(),
        true_spec(),
        false_spec(),
        sleep_spec(),
        ls_spec(),
        realpath_spec(),
        readlink_spec(),
        dirname_spec(),
        basename_spec(),
        pwd_spec(),
        date_spec(),
        curl_spec(),
        wget_spec(),
        sh_spec(),
        find_spec(),
        mktemp_spec(),
        trap_spec(),
        test_spec(),
    ]
