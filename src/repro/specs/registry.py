"""The specification registry.

Specs enter the registry from two provenances — the hand-written corpus
(:mod:`repro.specs.corpus`) and the miner (:mod:`repro.miner`) — and the
analyzer consumes them uniformly (DESIGN.md decision 4)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..obs import get_recorder
from .ir import CommandSpec


class SpecRegistry:
    def __init__(self):
        self._specs: Dict[str, CommandSpec] = {}

    def register(self, spec: CommandSpec, replace: bool = True) -> None:
        if not replace and spec.name in self._specs:
            raise ValueError(f"spec for {spec.name!r} already registered")
        self._specs[spec.name] = spec

    def get(self, name: str) -> Optional[CommandSpec]:
        spec = self._specs.get(name)
        get_recorder().count(
            "specs.lookup_hits" if spec is not None else "specs.lookup_misses"
        )
        return spec

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> List[str]:
        return sorted(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


_default: Optional[SpecRegistry] = None


def default_registry() -> SpecRegistry:
    """The registry preloaded with the bundled corpus."""
    global _default
    if _default is None:
        registry = SpecRegistry()
        from .corpus import all_specs

        for spec in all_specs():
            registry.register(spec)
        _default = registry
    return _default
