"""Hoare-triple command specifications (paper §3, Fig. 4 right).

A :class:`CommandSpec` describes an opaque command well enough for the
symbolic engine: how its argv parses into flags and operands (the XBD
utility conventions), and a set of *clauses* — guarded Hoare triples::

    {(∃ $p) ∧ (arg 0 $p path.FD)}  rm -f -r $p  {(∄ $p) ∧ exit 0}

Each clause has a flag guard, preconditions on the file system, effects,
an exit code, and stream types.  Symbolic execution forks one path per
applicable clause, *assumes* the preconditions (an assumption that
contradicts established facts means the clause can never fire), applies
the effects, and continues with the clause's exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..rtypes import Signature, StreamType


class PathKind(Enum):
    """What an operand path must denote."""

    FILE = auto()
    DIR = auto()
    ANY = auto()  # file or directory ("path.FD" in the paper's notation)


class Sel(Enum):
    """Operand selector for preconditions/effects."""

    EACH = auto()       # every path operand
    FIRST = auto()      # operand 0
    LAST = auto()       # the final operand (e.g. cp/mv destination)
    ALL_BUT_LAST = auto()


# -- preconditions -------------------------------------------------------------


class Pre:
    __slots__ = ()


@dataclass(frozen=True)
class Exists(Pre):
    sel: Sel = Sel.EACH
    kind: PathKind = PathKind.ANY

    def __str__(self) -> str:
        return f"(∃ {_sel(self.sel)}:{self.kind.name.lower()})"


@dataclass(frozen=True)
class Absent(Pre):
    sel: Sel = Sel.EACH

    def __str__(self) -> str:
        return f"(∄ {_sel(self.sel)})"


@dataclass(frozen=True)
class ParentExists(Pre):
    sel: Sel = Sel.EACH

    def __str__(self) -> str:
        return f"(∃ dirname {_sel(self.sel)})"


# -- effects ----------------------------------------------------------------------


class Effect:
    __slots__ = ()


@dataclass(frozen=True)
class Deletes(Effect):
    sel: Sel = Sel.EACH
    recursive: bool = False

    def __str__(self) -> str:
        extra = " -r" if self.recursive else ""
        return f"delete{extra} {_sel(self.sel)}"


@dataclass(frozen=True)
class Creates(Effect):
    sel: Sel = Sel.EACH
    kind: PathKind = PathKind.FILE
    ensure_parents: bool = False

    def __str__(self) -> str:
        return f"create {self.kind.name.lower()} {_sel(self.sel)}"


@dataclass(frozen=True)
class WritesFile(Effect):
    sel: Sel = Sel.EACH

    def __str__(self) -> str:
        return f"write {_sel(self.sel)}"


@dataclass(frozen=True)
class ReadsFile(Effect):
    sel: Sel = Sel.EACH

    def __str__(self) -> str:
        return f"read {_sel(self.sel)}"


@dataclass(frozen=True)
class ListsDir(Effect):
    sel: Sel = Sel.EACH

    def __str__(self) -> str:
        return f"list {_sel(self.sel)}"


@dataclass(frozen=True)
class CopiesTo(Effect):
    """Copy/move sources to the last operand."""

    move: bool = False

    def __str__(self) -> str:
        return "move sources -> last" if self.move else "copy sources -> last"


@dataclass(frozen=True)
class LinksTo(Effect):
    """Create the last operand as a symlink to the first (ln -s)."""

    def __str__(self) -> str:
        return "symlink $dst -> $p0"


def _sel(sel: Sel) -> str:
    return {
        Sel.EACH: "$p",
        Sel.FIRST: "$p0",
        Sel.LAST: "$dst",
        Sel.ALL_BUT_LAST: "$srcs",
    }[sel]


# -- clauses and specs -----------------------------------------------------------


@dataclass(frozen=True)
class Clause:
    """A guarded Hoare triple."""

    pre: Tuple[Pre, ...] = ()
    effects: Tuple[Effect, ...] = ()
    exit_code: int = 0
    #: guard: flags that must all be present / absent for this clause
    requires_flags: FrozenSet[str] = frozenset()
    forbids_flags: FrozenSet[str] = frozenset()
    stderr: bool = False  # clause produces stderr output
    note: str = ""

    def applicable(self, flags: FrozenSet[str]) -> bool:
        return self.requires_flags <= flags and not (self.forbids_flags & flags)

    def triple(self, command: str) -> str:
        pre = " ∧ ".join(str(p) for p in self.pre) or "true"
        post_parts = [str(e) for e in self.effects]
        post_parts.append(f"exit {self.exit_code}")
        post = " ∧ ".join(post_parts)
        invocation = " ".join([command, *sorted(self.requires_flags), "$p"])
        return f"{{{pre}}} {invocation} {{{post}}}"


@dataclass
class Invocation:
    """A parsed argv: flags (with values) and positional operands."""

    name: str
    flags: FrozenSet[str]
    flag_values: Dict[str, str]
    operands: List[int]  # indices into the original word list

    def has(self, *flags: str) -> bool:
        return any(f in self.flags for f in flags)


class SpecParseError(ValueError):
    """argv does not satisfy the command's invocation syntax."""


@dataclass
class CommandSpec:
    """Specification of one command."""

    name: str
    #: single-char flags; value = True when the flag consumes an argument
    options: Dict[str, bool] = field(default_factory=dict)
    long_options: Dict[str, bool] = field(default_factory=dict)
    clauses: List[Clause] = field(default_factory=list)
    min_operands: int = 0
    max_operands: Optional[int] = None
    #: output stream type produced on success (None = no stdout / unknown)
    stdout: Optional[StreamType] = None
    #: stream-transformer signature (overrides stdout when present)
    signature: Optional[Signature] = None
    #: flags available per platform (E15); missing flag = portable
    platform_flags: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: operands are paths (drives fs reasoning)
    operands_are_paths: bool = True
    #: index of the first path operand, for commands whose leading
    #: operand(s) are not paths (``grep pattern file...`` → 1); only
    #: meaningful when ``operands_are_paths`` is True
    path_operands_from: int = 0
    #: free-form documentation line (mirrors the man page's NAME section)
    summary: str = ""

    # -- argv parsing (XBD utility syntax guidelines) -------------------------

    def parse_argv(self, argv: Sequence[str]) -> Invocation:
        """Parse flags/operands; raises :class:`SpecParseError` on
        violations of the declared syntax."""
        flags = set()
        flag_values: Dict[str, str] = {}
        operands: List[int] = []
        idx = 1
        seen_ddash = False
        while idx < len(argv):
            arg = argv[idx]
            if not seen_ddash and arg == "--":
                seen_ddash = True
            elif not seen_ddash and arg.startswith("--"):
                key, _, value = arg[2:].partition("=")
                if key not in self.long_options:
                    raise SpecParseError(f"{self.name}: unknown option --{key}")
                flags.add("--" + key)
                if self.long_options[key] and value:
                    flag_values["--" + key] = value
            elif not seen_ddash and arg.startswith("-") and arg != "-":
                jdx = 1
                while jdx < len(arg):
                    char = arg[jdx]
                    if char not in self.options:
                        raise SpecParseError(f"{self.name}: unknown option -{char}")
                    flags.add("-" + char)
                    if self.options[char]:
                        value = arg[jdx + 1 :]
                        if not value:
                            idx += 1
                            if idx >= len(argv):
                                raise SpecParseError(
                                    f"{self.name}: option -{char} requires an argument"
                                )
                            value = argv[idx]
                        flag_values["-" + char] = value
                        break
                    jdx += 1
            else:
                operands.append(idx)
            idx += 1
        if len(operands) < self.min_operands:
            raise SpecParseError(
                f"{self.name}: expected at least {self.min_operands} operand(s)"
            )
        if self.max_operands is not None and len(operands) > self.max_operands:
            raise SpecParseError(
                f"{self.name}: expected at most {self.max_operands} operand(s)"
            )
        return Invocation(self.name, frozenset(flags), flag_values, operands)

    # -- queries -------------------------------------------------------------------

    def applicable_clauses(self, flags: FrozenSet[str]) -> List[Clause]:
        return [c for c in self.clauses if c.applicable(flags)]

    def triples(self) -> List[str]:
        return [c.triple(self.name) for c in self.clauses]

    def unsupported_flags_on(self, platform: str) -> List[str]:
        """Flags this spec declares unavailable on ``platform`` (E15)."""
        return sorted(
            flag
            for flag, platforms in self.platform_flags.items()
            if platform not in platforms
        )
