"""Hoare-triple command specifications and the spec registry (§3)."""

from .ir import (
    Absent,
    Clause,
    CommandSpec,
    CopiesTo,
    Creates,
    Deletes,
    Effect,
    Exists,
    Invocation,
    LinksTo,
    ListsDir,
    ParentExists,
    PathKind,
    Pre,
    ReadsFile,
    Sel,
    SpecParseError,
    WritesFile,
)
from .registry import SpecRegistry, default_registry

__all__ = [
    "CommandSpec", "Clause", "Invocation", "SpecParseError",
    "SpecRegistry", "default_registry",
    "Pre", "Exists", "Absent", "ParentExists",
    "Effect", "Deletes", "Creates", "WritesFile", "ReadsFile", "ListsDir",
    "CopiesTo", "LinksTo", "PathKind", "Sel",
]
