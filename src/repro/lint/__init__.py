"""Baseline syntactic linter (ShellCheck-class, paper §2)."""

from .engine import lint, lint_codes
from .rules import ALL_RULES, LintRule

__all__ = ["lint", "lint_codes", "ALL_RULES", "LintRule"]
