"""The baseline linter driver."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..diag import Diagnostic, dedupe
from ..obs import get_recorder
from ..shell import parse
from .rules import ALL_RULES, LintRule


def lint(source: str, rules: Optional[Sequence[LintRule]] = None) -> List[Diagnostic]:
    """Run the syntactic rule set over a script."""
    recorder = get_recorder()
    with recorder.span("lint.run"):
        ast = parse(source)
        active = list(rules) if rules is not None else ALL_RULES
        diagnostics: List[Diagnostic] = []
        for rule in active:
            diagnostics.extend(rule.check(ast))
        recorder.count("lint.rules_run", len(active))
        recorder.count("lint.diagnostics", len(diagnostics))
        return dedupe(diagnostics)


def lint_codes(source: str) -> List[str]:
    return sorted({d.code for d in lint(source)})
