"""Syntactic lint rules, ShellCheck-class (paper §2).

Each rule matches a *syntactic pattern* — no symbolic execution, no
constraint tracking, no context sensitivity.  This is the baseline the
paper contrasts against: it warns on Fig. 1, still warns on the safe
Fig. 2 (false positive), assigns the unsafe Fig. 3 exactly the same
generic warning (failing to identify its unambiguous incorrectness), and
is silent about Fig. 5's dead grep filter.

Rule codes follow ShellCheck's numbering where a counterpart exists.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..diag import Diagnostic, Severity
from ..shell.ast import (
    AndOr,
    Assignment,
    Case,
    CmdSubPart,
    Command,
    For,
    GlobPart,
    If,
    LiteralPart,
    ParamPart,
    Pipeline,
    Sequence,
    SimpleCommand,
    While,
    Word,
    walk,
)

#: Variables the shell sets itself; using them unassigned is fine.
_SHELL_VARS = {
    "HOME", "PWD", "OLDPWD", "PATH", "IFS", "PS1", "PS2", "LANG", "TERM",
    "USER", "SHELL", "HOSTNAME", "RANDOM", "LINENO", "OPTARG", "OPTIND",
    "REPLY", "TMPDIR", "EDITOR", "PAGER", "PPID", "UID", "OPTERR",
}


def _lint(code: str, message: str, word_or_node, severity=Severity.WARNING) -> Diagnostic:
    pos = getattr(word_or_node, "pos", None)
    return Diagnostic(
        code=code, message=message, severity=severity, pos=pos, source="lint"
    )


class LintRule:
    code = "SC0000"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        return iter(())


class UnquotedExpansionRule(LintRule):
    """SC2086: unquoted $var in command arguments."""

    code = "SC2086"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, SimpleCommand):
                continue
            for word in node.words[1:] if node.words else []:
                for part in word.parts:
                    if isinstance(part, ParamPart) and not part.quoted:
                        yield _lint(
                            self.code,
                            f"Double quote ${part.name} to prevent globbing "
                            "and word splitting.",
                            word,
                        )
                        break


class RmVariablePathRule(LintRule):
    """SC2115: `rm` on `$var/...` — suggest ${var:?}.

    This is the rule ShellCheck fires on Fig. 1 — and, being syntactic,
    on Figs. 2 and 3 alike.
    """

    code = "SC2115"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, SimpleCommand) or node.name != "rm":
                continue
            for word in node.words[1:]:
                if self._is_var_slash(word):
                    name = self._leading_var(word)
                    yield _lint(
                        self.code,
                        f'Use "${{{name}:?}}" to ensure this never expands '
                        "to /* .",
                        word,
                    )

    @staticmethod
    def _leading_var(word: Word) -> Optional[str]:
        for part in word.parts:
            if isinstance(part, ParamPart):
                return part.name
        return None

    @staticmethod
    def _is_var_slash(word: Word) -> bool:
        parts = word.parts
        for idx, part in enumerate(parts):
            if isinstance(part, ParamPart) and part.op is None:
                rest = parts[idx + 1 :]
                if not rest:
                    continue
                nxt = rest[0]
                if isinstance(nxt, LiteralPart) and nxt.text.startswith("/"):
                    return True
        return False


class CdWithoutGuardRule(LintRule):
    """SC2164: `cd` that is not guarded by || exit or a condition."""

    code = "SC2164"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        guarded = set()
        for node in walk(ast):
            if isinstance(node, AndOr):
                for side in (node.left, node.right):
                    for sub in walk(side):
                        if isinstance(sub, SimpleCommand) and sub.name == "cd":
                            guarded.add(id(sub))
            if isinstance(node, (If, While)):
                for sub in walk(node.cond):
                    if isinstance(sub, SimpleCommand) and sub.name == "cd":
                        guarded.add(id(sub))
        for node in walk(ast):
            if (
                isinstance(node, SimpleCommand)
                and node.name == "cd"
                and id(node) not in guarded
            ):
                yield _lint(
                    self.code,
                    "Use 'cd ... || exit' in case cd fails.",
                    node,
                )


class BackticksRule(LintRule):
    """SC2006: legacy backtick command substitution."""

    code = "SC2006"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, SimpleCommand):
                continue
            for word in list(node.words) + [a.value for a in node.assignments]:
                if "`" in word.raw:
                    yield _lint(
                        self.code,
                        "Use $(...) notation instead of legacy backticks.",
                        word,
                        severity=Severity.INFO,
                    )


class DollarInSingleQuotesRule(LintRule):
    """SC2016: $ inside single quotes does not expand."""

    code = "SC2016"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, SimpleCommand):
                continue
            for word in node.words:
                raw = word.raw
                idx = raw.find("'")
                while idx != -1:
                    end = raw.find("'", idx + 1)
                    if end == -1:
                        break
                    if "$" in raw[idx:end]:
                        yield _lint(
                            self.code,
                            "Expressions don't expand in single quotes; "
                            'use double quotes for that.',
                            word,
                            severity=Severity.INFO,
                        )
                        break
                    idx = raw.find("'", end + 1)


class UnassignedVariableRule(LintRule):
    """SC2154: variable referenced but never assigned in this script."""

    code = "SC2154"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        assigned = set(_SHELL_VARS)
        for node in walk(ast):
            if isinstance(node, SimpleCommand):
                for assignment in node.assignments:
                    assigned.add(assignment.name)
                if node.name in ("export", "read", "local", "readonly") and node.words:
                    for word in node.words[1:]:
                        text = word.literal_text() or ""
                        assigned.add(text.split("=", 1)[0])
            if isinstance(node, For):
                assigned.add(node.var)
        seen = set()
        for node in walk(ast):
            if not isinstance(node, SimpleCommand):
                continue
            for word in node.words:
                for part in word.parts:
                    if (
                        isinstance(part, ParamPart)
                        and part.op is None
                        and part.name not in assigned
                        and not part.name.isdigit()
                        and part.name not in "#?@*$!-"
                        and part.name not in seen
                    ):
                        seen.add(part.name)
                        yield _lint(
                            self.code,
                            f"{part.name} is referenced but not assigned.",
                            word,
                        )


class UnusedVariableRule(LintRule):
    """SC2034: variable assigned but never used."""

    code = "SC2034"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        used = set()
        for node in walk(ast):
            if isinstance(node, SimpleCommand):
                for word in node.words:
                    for part in _all_params(word):
                        used.add(part.name)
                for assignment in node.assignments:
                    for part in _all_params(assignment.value):
                        used.add(part.name)
            elif isinstance(node, Case):
                for part in _all_params(node.subject):
                    used.add(part.name)
        reported = set()
        for node in walk(ast):
            if not isinstance(node, SimpleCommand):
                continue
            for assignment in node.assignments:
                if assignment.name not in used and assignment.name not in reported:
                    reported.add(assignment.name)
                    yield _lint(
                        self.code,
                        f"{assignment.name} appears unused. "
                        "Verify use (or export if used externally).",
                        assignment,
                        severity=Severity.INFO,
                    )


class ReadWithoutRRule(LintRule):
    """SC2162: read without -r mangles backslashes."""

    code = "SC2162"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, SimpleCommand) or node.name != "read":
                continue
            flags = "".join(
                (w.literal_text() or "") for w in node.words[1:]
                if (w.literal_text() or "").startswith("-")
            )
            if "r" not in flags:
                yield _lint(
                    self.code,
                    "read without -r will mangle backslashes.",
                    node,
                    severity=Severity.INFO,
                )


class UnquotedCommandSubRule(LintRule):
    """SC2046: unquoted $(...) undergoes word splitting."""

    code = "SC2046"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, SimpleCommand):
                continue
            for word in node.words[1:] if node.words else []:
                for part in word.parts:
                    if isinstance(part, CmdSubPart) and not part.quoted:
                        yield _lint(
                            self.code,
                            "Quote this to prevent word splitting.",
                            word,
                        )
                        break


class AndOrChainRule(LintRule):
    """SC2015: `A && B || C` is not if-then-else."""

    code = "SC2015"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if (
                isinstance(node, AndOr)
                and node.op == "||"
                and isinstance(node.left, AndOr)
                and node.left.op == "&&"
            ):
                yield _lint(
                    self.code,
                    "Note that A && B || C is not if-then-else: "
                    "C may run when A is true.",
                    node,
                    severity=Severity.INFO,
                )


class UnquotedAtRule(LintRule):
    """SC2068: unquoted $@ undergoes splitting and globbing."""

    code = "SC2068"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, SimpleCommand):
                continue
            for word in node.words:
                for part in word.parts:
                    if (
                        isinstance(part, ParamPart)
                        and part.name == "@"
                        and not part.quoted
                    ):
                        yield _lint(
                            self.code,
                            'Double quote array expansions: use "$@".',
                            word,
                        )


class DeprecatedTestConnectiveRule(LintRule):
    """SC2166: [ a -a b ] / [ a -o b ] are not well defined; prefer
    [ a ] && [ b ]."""

    code = "SC2166"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, SimpleCommand) or node.name not in ("[", "test"):
                continue
            for word in node.words[1:]:
                if word.literal_text() in ("-a", "-o"):
                    connective = "&&" if word.literal_text() == "-a" else "||"
                    yield _lint(
                        self.code,
                        f"Prefer [ p ] {connective} [ q ] as "
                        f"[ p {word.literal_text()} q ] is not well defined.",
                        node,
                        severity=Severity.INFO,
                    )
                    break


class GrepWcRule(LintRule):
    """SC2126: grep | wc -l can be grep -c."""

    code = "SC2126"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, Pipeline):
                continue
            names = [
                c.name for c in node.commands if isinstance(c, SimpleCommand)
            ]
            for idx in range(len(names) - 1):
                if names[idx] == "grep" and names[idx + 1] == "wc":
                    wc = node.commands[idx + 1]
                    flags = "".join(
                        w.literal_text() or "" for w in wc.words[1:]
                    )
                    if "l" in flags:
                        yield _lint(
                            self.code,
                            "Consider using grep -c instead of grep | wc -l.",
                            node,
                            severity=Severity.INFO,
                        )


class UselessCatRule(LintRule):
    """SC2002: cat FILE | cmd — cmd can read the file itself."""

    code = "SC2002"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, Pipeline) or len(node.commands) < 2:
                continue
            first = node.commands[0]
            if (
                isinstance(first, SimpleCommand)
                and first.name == "cat"
                and len(first.words) == 2
                and first.words[1].literal_text()
            ):
                yield _lint(
                    self.code,
                    "Useless cat. Consider 'cmd < file' or 'cmd file'.",
                    first,
                    severity=Severity.INFO,
                )


class EchoUnquotedGlobRule(LintRule):
    """SC2035: leading-dash/glob operands should use ./ or --."""

    code = "SC2035"

    def check(self, ast: Command) -> Iterator[Diagnostic]:
        for node in walk(ast):
            if not isinstance(node, SimpleCommand):
                continue
            if node.name not in ("rm", "mv", "cp", "chmod", "grep"):
                continue
            for word in node.words[1:]:
                if word.has_glob() and word.raw.startswith("*"):
                    yield _lint(
                        self.code,
                        "Use ./*glob* or -- *glob* so names with dashes "
                        "won't become options.",
                        word,
                        severity=Severity.INFO,
                    )


ALL_RULES: List[LintRule] = [
    UnquotedAtRule(),
    DeprecatedTestConnectiveRule(),
    GrepWcRule(),
    UselessCatRule(),
    EchoUnquotedGlobRule(),
    UnquotedExpansionRule(),
    RmVariablePathRule(),
    CdWithoutGuardRule(),
    BackticksRule(),
    DollarInSingleQuotesRule(),
    UnassignedVariableRule(),
    UnusedVariableRule(),
    ReadWithoutRRule(),
    UnquotedCommandSubRule(),
    AndOrChainRule(),
]


def _all_params(word: Word):
    for part in word.parts:
        if isinstance(part, ParamPart):
            yield part
            if part.arg is not None:
                yield from _all_params(part.arg)
        elif isinstance(part, CmdSubPart):
            for sub in walk(part.command):
                if isinstance(sub, SimpleCommand):
                    for w in sub.words:
                        yield from _all_params(w)
                    for a in sub.assignments:
                        yield from _all_params(a.value)
