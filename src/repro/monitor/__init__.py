"""Runtime monitoring and ahead-of-time policy verification (§4-§5)."""

from .plan import MonitorPlan, plan_monitors
from .runtime import (
    MonitoredStage,
    MonitorStats,
    MonitorViolation,
    StreamMonitor,
    monitor_subprocess,
    run_pipeline,
)
from .verify import (
    Guard,
    PolicyRule,
    Verdict,
    VerifyResult,
    Violation,
    parse_policy,
    verify_script,
)

__all__ = [
    "StreamMonitor", "MonitorViolation", "MonitorStats", "MonitoredStage",
    "MonitorPlan", "plan_monitors",
    "run_pipeline", "monitor_subprocess",
    "verify_script", "PolicyRule", "Verdict", "VerifyResult", "Violation",
    "Guard", "parse_policy",
]
