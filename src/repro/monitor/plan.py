"""Monitor placement planning (paper §4).

"Runtime monitoring protects computations adjacent to an untyped command
to ensure their type expectations are maintained" — this module decides
*where* the monitors go and *what* they check: for every pipeline stage
without a static signature, derive the output type its downstream
neighbour expects and the input type its upstream neighbour provides,
and emit a :class:`MonitorPlan` the runtime (or a wrapper generator)
executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..rtypes import (
    PRODUCES_ON_EMPTY,
    Signature,
    StreamType,
    TypeError_,
    apply_signature,
    signature_for,
)
from ..shell import parse
from ..shell.ast import Pipeline, SimpleCommand, walk


@dataclass
class MonitorPlan:
    """One monitor insertion."""

    pipeline_source: str
    stage: int
    command: str
    #: check the stage's input against this type (None = unconstrained)
    input_type: Optional[StreamType]
    #: check the stage's output against this type (None = unconstrained)
    output_type: Optional[StreamType]

    def render(self) -> str:
        checks = []
        if self.input_type is not None:
            checks.append(f"stdin :: {self.input_type.describe()}")
        if self.output_type is not None:
            checks.append(f"stdout :: {self.output_type.describe()}")
        return (
            f"monitor stage {self.stage} ({self.command!r}) of "
            f"[{self.pipeline_source}]: " + "; ".join(checks)
        )

    def wrapper_command(self) -> str:
        """The shell rewriting that installs this monitor: the stage is
        wrapped by the `repro-monitor` higher-order command."""
        if self.output_type is not None and self.output_type.line.pattern:
            return (
                f"repro-monitor --type '{self.output_type.line.pattern}' "
                f"{self.command}"
            )
        return self.command


def plan_monitors(source: str) -> List[MonitorPlan]:
    """Monitor insertions for every untyped stage in a script's
    pipelines, with types inferred from adjacent stages."""
    plans: List[MonitorPlan] = []
    for node in walk(parse(source)):
        if not isinstance(node, Pipeline) or len(node.commands) < 2:
            continue
        argvs = []
        static = True
        for stage in node.commands:
            argv = _static_argv(stage)
            if argv is None:
                static = False
                break
            argvs.append(argv)
        if not static:
            continue
        plans.extend(_plan_pipeline(argvs))
    return plans


def _plan_pipeline(argvs: Sequence[Sequence[str]]) -> List[MonitorPlan]:
    signatures = [signature_for(argv) for argv in argvs]
    if all(sig is not None for sig in signatures):
        return []

    source = " | ".join(" ".join(argv) for argv in argvs)
    # forward pass: the type arriving at each stage
    incoming: List[Optional[StreamType]] = []
    current: Optional[StreamType] = StreamType.any()
    for signature in signatures:
        incoming.append(current)
        if signature is None or current is None:
            current = None  # unknown beyond an untyped stage
            continue
        if current.is_dead():
            current = StreamType.dead()
            continue
        try:
            current = apply_signature(signature, current)
        except TypeError_:
            current = None

    # backward pass: the type each stage's consumer expects on its input
    expected: List[Optional[StreamType]] = [None] * len(argvs)
    for idx in range(len(argvs) - 1):
        downstream = signatures[idx + 1]
        if downstream is None:
            continue
        expected[idx] = _domain_of(downstream)

    plans = []
    for idx, signature in enumerate(signatures):
        if signature is not None:
            continue
        plans.append(
            MonitorPlan(
                pipeline_source=source,
                stage=idx,
                command=" ".join(argvs[idx]),
                input_type=incoming[idx],
                output_type=expected[idx],
            )
        )
    return plans


def _domain_of(signature: Signature) -> Optional[StreamType]:
    """The input language a signature demands (its monitorable domain)."""
    from ..rtypes.signatures import Concrete, Var

    if isinstance(signature.input, Concrete):
        return StreamType(signature.input.lang)
    if isinstance(signature.input, Var):
        for tv in signature.vars:
            if tv.name == signature.input.name and tv.bound is not None:
                return StreamType(tv.bound)
        return None  # ∀α with no bound: any input is fine
    return None


def _static_argv(stage) -> Optional[List[str]]:
    from ..shell.ast import LiteralPart

    if not isinstance(stage, SimpleCommand):
        return None
    argv = []
    for word in stage.words:
        chunks = []
        for part in word.parts:
            if isinstance(part, LiteralPart):
                chunks.append(part.text)
            else:
                return None
        argv.append("".join(chunks))
    return argv if argv else None
