"""The `verify` policy tool (paper §5 "Security").

The curl-to-sh scenario::

    curl sw.com/up.sh | verify --no-RW ~/mine | sh

`verify` checks a script against a user policy *ahead of time*: it runs
the static analysis, classifies every file-system effect against the
protected paths, and returns one of three verdicts:

- ``ALLOW`` — no effect can touch a protected path;
- ``REJECT`` — some effect definitely touches a protected path;
- ``NEEDS_GUARD`` — a symbolic effect *may* touch a protected path;
  `verify` emits runtime guards (monitor insertions) that close the gap.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional, Sequence

from ..checkers import default_checkers
from ..fs import FsOp
from ..symex import Engine


class Verdict(Enum):
    ALLOW = auto()
    REJECT = auto()
    NEEDS_GUARD = auto()


@dataclass(frozen=True)
class PolicyRule:
    """Protect ``path`` against reads and/or writes (writes include
    creation and deletion)."""

    path: str
    no_read: bool = False
    no_write: bool = True

    def __str__(self) -> str:
        mode = ("R" if self.no_read else "") + ("W" if self.no_write else "")
        return f"--no-{mode} {self.path}"


@dataclass
class Violation:
    rule: PolicyRule
    op: str
    path: str
    definite: bool  # True: concrete path under the protected tree

    def __str__(self) -> str:
        kind = "definite" if self.definite else "possible"
        return f"{kind} {self.op} of {self.path} (protected by {self.rule})"


@dataclass
class Guard:
    """A runtime guard generated for a possible violation."""

    description: str

    def __str__(self) -> str:
        return self.description


@dataclass
class VerifyResult:
    verdict: Verdict
    violations: List[Violation] = field(default_factory=list)
    guards: List[Guard] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"verdict: {self.verdict.name}"]
        for violation in self.violations:
            lines.append(f"  {violation}")
        for guard in self.guards:
            lines.append(f"  guard: {guard}")
        return "\n".join(lines)


_WRITE_OPS = {FsOp.WRITE, FsOp.CREATE, FsOp.DELETE}
_READ_OPS = {FsOp.READ, FsOp.LIST, FsOp.STAT}

_SYM_SEGMENT = re.compile(r"<v-?[0-9]+>")


def expand_policy_path(path: str, home: str = "/home/user") -> str:
    if path == "~" or path.startswith("~/"):
        return home + path[1:]
    return path


def verify_script(
    source: str,
    rules: Sequence[PolicyRule],
    n_args: Optional[int] = None,
    args: Optional[Sequence[str]] = None,
    home: str = "/home/user",
) -> VerifyResult:
    """Statically verify a script against a policy."""
    engine = Engine(checkers=default_checkers())
    result = engine.run_script(source, n_args=n_args, args=args)

    violations: List[Violation] = []
    seen = set()
    for state in result.states:
        for event in state.fs.log:
            for rule in rules:
                relevant = (rule.no_write and event.op in _WRITE_OPS) or (
                    rule.no_read and event.op in _READ_OPS
                )
                if not relevant:
                    continue
                classification = _classify(
                    event.path,
                    expand_policy_path(rule.path, home),
                    destructive=(event.op is FsOp.DELETE),
                )
                if classification is None:
                    continue
                key = (rule, event.op.name, event.path, classification)
                if key in seen:
                    continue
                seen.add(key)
                violations.append(
                    Violation(
                        rule=rule,
                        op=event.op.name.lower(),
                        path=event.path,
                        definite=(classification == "definite"),
                    )
                )

    if not violations:
        return VerifyResult(Verdict.ALLOW)
    if any(v.definite for v in violations):
        return VerifyResult(Verdict.REJECT, violations)

    guards = [
        Guard(
            f"interpose on {violation.op} targeting "
            f"{violation.path}: abort if the resolved path is under "
            f"{expand_policy_path(violation.rule.path, home)}"
        )
        for violation in violations
    ]
    return VerifyResult(Verdict.NEEDS_GUARD, violations, guards)


def _classify(
    event_path: str, protected: str, destructive: bool = False
) -> Optional[str]:
    """None (cannot touch) | "definite" | "possible"."""
    protected = protected.rstrip("/") or "/"
    if _SYM_SEGMENT.search(event_path):
        # a symbolic segment may resolve anywhere, including under the
        # protected tree — unless a concrete prefix already diverges
        concrete_prefix = event_path.split("<", 1)[0].rstrip("/")
        if concrete_prefix and concrete_prefix.startswith("/"):
            if not (
                protected.startswith(concrete_prefix)
                or concrete_prefix.startswith(protected)
            ):
                return None
        return "possible"
    if event_path == protected or event_path.startswith(protected + "/"):
        return "definite"
    if destructive and protected.startswith(event_path.rstrip("/") + "/"):
        # deleting an ancestor destroys the protected tree too
        return "definite"
    return None


def parse_policy(args: Sequence[str]) -> List[PolicyRule]:
    """Parse `verify`-style CLI arguments: --no-RW P, --no-W P, --no-R P."""
    rules: List[PolicyRule] = []
    idx = 0
    while idx < len(args):
        arg = args[idx]
        match = re.fullmatch(r"--no-([RW]{1,2})", arg)
        if not match:
            raise ValueError(f"unknown policy argument {arg!r}")
        if idx + 1 >= len(args):
            raise ValueError(f"{arg} requires a path")
        modes = match.group(1)
        rules.append(
            PolicyRule(
                path=args[idx + 1],
                no_read="R" in modes,
                no_write="W" in modes,
            )
        )
        idx += 2
    return rules
