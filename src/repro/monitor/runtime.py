"""Runtime stream monitoring (paper §4 "environment and runtime
monitoring").

When static inference cannot type a command, a *higher-order monitor
command* — "similar in spirit to strace and xargs (but more sanely
named)" — wraps the untyped stage and checks, line by line, that its
streams conform to the types its neighbours expect.  The cost is
monitoring overhead and delayed error detection (the gradual-typing
trade-off); the benefit is that a violation halts the pipeline *before*
the protected downstream stage consumes a malformed line.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..obs import get_recorder
from ..rtypes import StreamType


class MonitorViolation(Exception):
    """A line failed its stream type at runtime."""

    def __init__(self, line: str, lineno: int, expected: StreamType, where: str = ""):
        location = f" at {where}" if where else ""
        super().__init__(
            f"line {lineno}{location} violates type "
            f"{expected.describe()}: {line!r}"
        )
        self.line = line
        self.lineno = lineno
        self.expected = expected


@dataclass
class MonitorStats:
    lines_checked: int = 0
    violations: int = 0

    def as_metrics(self) -> dict:
        """The stats under their telemetry counter names (see repro.obs)."""
        return {
            "monitor.lines_checked": self.lines_checked,
            "monitor.violations": self.violations,
        }


class StreamMonitor:
    """Checks each line of a stream against a regular type."""

    def __init__(
        self,
        expected: StreamType,
        where: str = "",
        on_violation: str = "raise",  # "raise" | "drop" | "count"
    ):
        if on_violation not in ("raise", "drop", "count"):
            raise ValueError(f"bad on_violation mode {on_violation!r}")
        self.expected = expected
        self.where = where
        self.on_violation = on_violation
        self.stats = MonitorStats()

    def check(self, line: str) -> bool:
        self.stats.lines_checked += 1
        recorder = get_recorder()
        recorder.count("monitor.lines_checked")
        ok = self.expected.admits(line)
        if not ok:
            self.stats.violations += 1
            recorder.count("monitor.violations")
            if self.on_violation == "raise":
                raise MonitorViolation(
                    line, self.stats.lines_checked, self.expected, self.where
                )
        return ok

    def filter(self, lines: Iterable[str]) -> Iterator[str]:
        """Pass conforming lines through; handle violations per mode."""
        for line in lines:
            if self.check(line):
                yield line
            # "drop"/"count": the offending line is withheld from the
            # protected downstream stage


Stage = Callable[[Iterable[str]], Iterator[str]]


@dataclass
class MonitoredStage:
    """A pipeline stage with optional input/output monitors."""

    stage: Stage
    input_monitor: Optional[StreamMonitor] = None
    output_monitor: Optional[StreamMonitor] = None

    def __call__(self, lines: Iterable[str]) -> Iterator[str]:
        if self.input_monitor is not None:
            lines = self.input_monitor.filter(lines)
        out = self.stage(lines)
        if self.output_monitor is not None:
            out = self.output_monitor.filter(out)
        return out


def run_pipeline(stages: Sequence[Stage], lines: Iterable[str]) -> List[str]:
    """Drive a (possibly monitored) pipeline of line transformers."""
    stream: Iterable[str] = lines
    for stage in stages:
        stream = stage(stream)
    return list(stream)


def monitor_subprocess(
    argv: Sequence[str],
    stdin_lines: Iterable[str],
    output_type: StreamType,
    where: str = "",
) -> List[str]:
    """Run a real command under output monitoring.

    The monitor reads the command's stdout incrementally and kills the
    process on the first violating line — execution stops *before* the
    bad data propagates (the §4 "halt the execution of a script about to
    perform a dangerous action" behaviour, applied to streams).
    """
    with get_recorder().span("monitor.subprocess", argv=" ".join(argv)):
        proc = subprocess.Popen(
            list(argv),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        monitor = StreamMonitor(output_type, where=where or " ".join(argv))
        collected: List[str] = []
        try:
            stdin_data = "".join(line + "\n" for line in stdin_lines)
            proc.stdin.write(stdin_data)
            proc.stdin.close()
            for raw in proc.stdout:
                line = raw.rstrip("\n")
                monitor.check(line)
                collected.append(line)
        except MonitorViolation:
            proc.kill()
            raise
        finally:
            proc.stdout.close()
            proc.wait()
        return collected
