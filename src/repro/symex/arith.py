"""Concrete evaluation of POSIX arithmetic expansion ``$((expr))``.

When every operand is concrete the engine computes the exact value
(validated differentially against /bin/sh); otherwise the expansion
falls back to a symbolic integer.

Supported: decimal/hex/octal literals, variable names, ``+ - * / %``,
parentheses, unary ``- + !``, comparisons, ``&& ||``, and bitwise
``& | ^ << >>`` — the operators that appear in real scripts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


class ArithError(ValueError):
    """Unsupported or malformed arithmetic."""


Lookup = Callable[[str], Optional[str]]


def evaluate(expr: str, lookup: Lookup) -> Optional[int]:
    """The concrete value of ``expr``, or None when any operand is
    unknown/symbolic.  Raises :class:`ArithError` on malformed input."""
    tokens = _tokenize(expr)
    parser = _Parser(tokens, lookup)
    value = parser.parse_expr()
    if parser.pos != len(parser.tokens):
        raise ArithError(f"trailing tokens in $(({expr}))")
    return value


_PUNCT = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "(", ")", "<", ">", "!", "&", "|", "^", "~",
]


def _tokenize(expr: str) -> List[str]:
    tokens: List[str] = []
    idx = 0
    while idx < len(expr):
        char = expr[idx]
        if char.isspace():
            idx += 1
            continue
        if char.isdigit():
            start = idx
            while idx < len(expr) and (expr[idx].isalnum()):
                idx += 1
            tokens.append(expr[start:idx])
            continue
        if char.isalpha() or char == "_":
            start = idx
            while idx < len(expr) and (expr[idx].isalnum() or expr[idx] == "_"):
                idx += 1
            tokens.append(expr[start:idx])
            continue
        if char == "$":
            if idx + 1 < len(expr) and expr[idx + 1].isdigit():
                start = idx + 1
                idx += 1
                while idx < len(expr) and expr[idx].isdigit():
                    idx += 1
                tokens.append("$" + expr[start:idx])  # positional parameter
                continue
            idx += 1  # `$X` inside arith behaves like `X`
            continue
        for punct in _PUNCT:
            if expr.startswith(punct, idx):
                tokens.append(punct)
                idx += len(punct)
                break
        else:
            raise ArithError(f"unsupported character {char!r} in arithmetic")
    return tokens


class _Parser:
    """Precedence-climbing over (value-or-None) integers; None is
    contagious (symbolic operand ⇒ symbolic result)."""

    #: binary operators by increasing precedence level
    _LEVELS: List[List[str]] = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    _OPS: Dict[str, Callable[[int, int], int]] = {
        "||": lambda a, b: int(bool(a) or bool(b)),
        "&&": lambda a, b: int(bool(a) and bool(b)),
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
        "&": lambda a, b: a & b,
        "==": lambda a, b: int(a == b),
        "!=": lambda a, b: int(a != b),
        "<": lambda a, b: int(a < b),
        ">": lambda a, b: int(a > b),
        "<=": lambda a, b: int(a <= b),
        ">=": lambda a, b: int(a >= b),
        "<<": lambda a, b: a << b,
        ">>": lambda a, b: a >> b,
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: _int_div(a, b),
        "%": lambda a, b: _int_mod(a, b),
    }

    def __init__(self, tokens: List[str], lookup: Lookup):
        self.tokens = tokens
        self.pos = 0
        self.lookup = lookup

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ArithError("unexpected end of expression")
        self.pos += 1
        return token

    def parse_expr(self, level: int = 0) -> Optional[int]:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        while self.peek() in self._LEVELS[level]:
            op = self.take()
            right = self.parse_expr(level + 1)
            if left is None or right is None:
                left = None
            else:
                left = self._OPS[op](left, right)
        return left

    def parse_unary(self) -> Optional[int]:
        token = self.peek()
        if token == "-":
            self.take()
            value = self.parse_unary()
            return -value if value is not None else None
        if token == "+":
            self.take()
            return self.parse_unary()
        if token == "!":
            self.take()
            value = self.parse_unary()
            return int(not value) if value is not None else None
        if token == "~":
            self.take()
            value = self.parse_unary()
            return ~value if value is not None else None
        return self.parse_atom()

    def parse_atom(self) -> Optional[int]:
        token = self.take()
        if token == "(":
            value = self.parse_expr()
            if self.take() != ")":
                raise ArithError("unbalanced parenthesis")
            return value
        if token[0] == "$":
            raw = self.lookup(token[1:])
            if raw is None:
                return None
            raw = raw.strip()
            if raw == "":
                return 0
            try:
                return _parse_int(raw)
            except ArithError:
                return None
        if token[0].isdigit():
            return _parse_int(token)
        if token[0].isalpha() or token[0] == "_":
            raw = self.lookup(token)
            if raw is None:
                return None
            raw = raw.strip()
            if raw == "":
                return 0  # unset/empty variables count as 0
            try:
                return _parse_int(raw)
            except ArithError:
                return None  # non-numeric contents: symbolic
        raise ArithError(f"unexpected token {token!r}")


def _parse_int(text: str) -> int:
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        if text.startswith("0") and len(text) > 1 and text.isdigit():
            return int(text, 8)
        return int(text, 10)
    except ValueError as exc:
        raise ArithError(f"bad integer literal {text!r}") from exc


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise ArithError("division by zero")
    # C-style truncation toward zero, as the shell does
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _int_mod(a: int, b: int) -> int:
    if b == 0:
        raise ArithError("division by zero")
    return a - _int_div(a, b) * b
