"""Symbolic models of shell built-ins (paper §3: "models the behavior of
key built-in commands, such as cd and [, analogously to primitive
functions in other programming languages")."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..diag import Diagnostic, Severity
from ..fs import FsContradiction, NodeKind, parse_sympath
from ..rlang import Regex
from ..symstr import SymString
from .state import SymState

if TYPE_CHECKING:
    from .engine import Engine

#: Normalised absolute paths, as printed by realpath / $PWD.
ABS_PATH = r"/([^/\n]+(/[^/\n]+)*)?"

#: Over-approximate preimage of "/" under path normalisation: strings of
#: slashes and dot-runs ("", "/", "//", "/.", "/..", ...).  Subtracting it
#: is sound for proving guards like Fig. 2's; intersecting with it is the
#: Fig. 3 then-branch refinement.
ROOTY = r"[/.]*"

_abs_path_re: Optional[Regex] = None
_rooty_re: Optional[Regex] = None


def abs_path_re() -> Regex:
    global _abs_path_re
    if _abs_path_re is None:
        _abs_path_re = Regex.compile(ABS_PATH)
    return _abs_path_re


def rooty_re() -> Regex:
    global _rooty_re
    if _rooty_re is None:
        _rooty_re = Regex.compile(ROOTY)
    return _rooty_re


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------


def is_builtin(name: str) -> bool:
    return name in _BUILTINS


def run_builtin(
    name: str, argv: List[SymString], state: SymState, engine: "Engine"
) -> List[SymState]:
    return _BUILTINS[name](argv, state, engine)


# ---------------------------------------------------------------------------
# cd
# ---------------------------------------------------------------------------


def builtin_cd(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    if len(argv) > 1:
        target = argv[1]
    else:
        target = state.get_var("HOME") or SymString.lit("/")

    results: List[SymState] = []
    target_lang = target.to_regex(state.store)
    may_fail = True
    may_succeed = not (target_lang.matches("") and target_lang == Regex.literal(""))

    # success world: the target names an existing directory
    if may_succeed:
        success = state.fork(note=f"cd {target.describe(state.store)}: success")
        vid = target.single_var()
        if vid is not None:
            # cd "" always fails; on success the argument was non-empty
            if success.store.exclude(vid, Regex.literal("")).is_empty():
                success = None
        if success is not None:
            feasible = True
            path = parse_sympath(target)
            if path is not None:
                node = success.fs.resolve(path, cwd=success.cwd_node)
                try:
                    success.fs.assume_exists(node, NodeKind.DIR)
                except FsContradiction:
                    feasible = False
                else:
                    success.cwd_node = node
            else:
                success.cwd_node = None
            if feasible:
                success.cwd_str = _new_pwd(target, success)
                success.status = 0
                results.append(success)

    if may_fail:
        failure = state.fork(note=f"cd {target.describe(state.store)}: failure")
        failure.status = 1
        results.append(failure)

    return results or [state.with_status(1)]


def _new_pwd(target: SymString, state: SymState) -> SymString:
    concrete = target.concrete_value()
    if concrete is not None and concrete.startswith("/"):
        from ..fs import normalise_concrete

        return SymString.lit(normalise_concrete(concrete))
    lang = target.to_regex(state.store)
    if not lang.matches_empty() and lang <= abs_path_re():
        return target
    vid = state.store.fresh(abs_path_re(), label="$PWD")
    return SymString.var(vid)


# ---------------------------------------------------------------------------
# test / [
# ---------------------------------------------------------------------------


def builtin_test(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    args = argv[1:]
    # strip the closing "]" of the bracket form
    if argv and argv[0].concrete_value() == "[":
        if not args or args[-1].concrete_value() != "]":
            state.warn(
                Diagnostic(
                    code="test-syntax",
                    message="'[' invocation lacks a closing ']'",
                    severity=Severity.WARNING,
                )
            )
        else:
            args = args[:-1]
    return _eval_test(args, state, engine, negate=False)


def _eval_test(
    args: List[SymString], state: SymState, engine: "Engine", negate: bool
) -> List[SymState]:
    def outcome(truth: Optional[bool]) -> List[SymState]:
        if truth is None:
            yes = state.fork(note="test: true").with_status(0 if not negate else 1)
            no = state.fork(note="test: false").with_status(1 if not negate else 0)
            return [yes, no]
        value = truth != negate
        return [state.with_status(0 if value else 1)]

    if not args:
        return outcome(False)

    # compound expressions: -o (or, lowest precedence) then -a (and)
    for connective in ("-o", "-a"):
        for idx in range(1, len(args) - 1):
            if args[idx].concrete_value() == connective:
                return _eval_connective(
                    connective, args[:idx], args[idx + 1:], state, engine, negate
                )

    first = args[0].concrete_value()
    if first == "!" and len(args) > 1:
        return _eval_test(args[1:], state, engine, negate=not negate)

    if len(args) == 1:
        return _string_nonempty_fork(args[0], state, negate)

    if len(args) == 2 and first is not None:
        return _eval_unary(first, args[1], state, engine, negate)

    if len(args) == 3:
        op = args[1].concrete_value()
        if op in ("=", "==", "!="):
            return _eval_equality(args[0], args[2], op != "!=", state, negate)
        if op in ("-eq", "-ne", "-gt", "-lt", "-ge", "-le"):
            return _eval_numeric(args[0], args[2], op, state, negate)

    # unsupported compound expression: unknown outcome
    return outcome(None)


def _eval_connective(
    connective: str,
    left: List[SymString],
    right: List[SymString],
    state: SymState,
    engine: "Engine",
    negate: bool,
) -> List[SymState]:
    """``X -a Y`` / ``X -o Y`` with short-circuit state threading."""
    results: List[SymState] = []
    for left_state in _eval_test(left, state, engine, negate=False):
        left_true = left_state.status == 0
        short_circuit = left_true if connective == "-o" else not left_true
        if short_circuit:
            value = left_true != negate
            results.append(left_state.with_status(0 if value else 1))
        else:
            results.extend(_eval_test(right, left_state, engine, negate))
    return results


def _string_nonempty_fork(
    value: SymString, state: SymState, negate: bool
) -> List[SymState]:
    """[ s ] is true iff s is non-empty."""
    return _fork_on_language(
        value, Regex.literal(""), state,
        when_in_status=(1 if not negate else 0),
        when_out_status=(0 if not negate else 1),
        note="emptiness of " + value.describe(state.store),
    )


def _eval_unary(
    op: str, operand: SymString, state: SymState, engine: "Engine", negate: bool
) -> List[SymState]:
    if op == "-z":
        return _fork_on_language(
            operand, Regex.literal(""), state,
            when_in_status=(0 if not negate else 1),
            when_out_status=(1 if not negate else 0),
            note=f"-z {operand.describe(state.store)}",
        )
    if op == "-n":
        return _fork_on_language(
            operand, Regex.literal(""), state,
            when_in_status=(1 if not negate else 0),
            when_out_status=(0 if not negate else 1),
            note=f"-n {operand.describe(state.store)}",
        )
    if op in ("-e", "-f", "-d", "-r", "-w", "-x", "-s", "-h", "-L"):
        return _eval_file_test(op, operand, state, negate)
    # unknown unary: fork
    yes = state.fork().with_status(0 if not negate else 1)
    no = state.fork().with_status(1 if not negate else 0)
    return [yes, no]


def _eval_file_test(
    op: str, operand: SymString, state: SymState, negate: bool
) -> List[SymState]:
    kind = NodeKind.UNKNOWN
    if op == "-f":
        kind = NodeKind.FILE
    elif op == "-d":
        kind = NodeKind.DIR
    path = parse_sympath(operand)
    results: List[SymState] = []

    exists_state = state.fork(note=f"test {op} {operand.describe(state.store)}: holds")
    if path is not None:
        node = exists_state.fs.resolve(path, cwd=exists_state.cwd_node)
        try:
            exists_state.fs.assume_exists(node, kind)
        except FsContradiction:
            exists_state = None
    if exists_state is not None:
        results.append(exists_state.with_status(0 if not negate else 1))

    absent_state = state.fork(note=f"test {op} {operand.describe(state.store)}: fails")
    if path is not None and op in ("-e", "-f", "-d", "-h", "-L"):
        node = absent_state.fs.resolve(path, cwd=absent_state.cwd_node)
        try:
            # for -f/-d failure just means "not a FILE/DIR here"; only -e
            # failure pins absence — but the denied kind is still a fact
            # guard-aware checkers can use
            if op == "-e":
                absent_state.fs.assume_absent(node)
            elif op == "-f":
                absent_state.fs.deny_kind(node, NodeKind.FILE)
            elif op == "-d":
                absent_state.fs.deny_kind(node, NodeKind.DIR)
            else:  # -h / -L
                absent_state.fs.deny_kind(node, NodeKind.SYMLINK)
        except FsContradiction:
            absent_state = None
    if absent_state is not None:
        results.append(absent_state.with_status(1 if not negate else 0))
    return results or [state.with_status(1)]


def _eval_equality(
    left: SymString, right: SymString, positive: bool, state: SymState, negate: bool
) -> List[SymState]:
    if negate:
        positive = not positive
    lc, rc = left.concrete_value(), right.concrete_value()
    if lc is not None and rc is not None:
        return [state.with_status(0 if (lc == rc) == positive else 1)]

    # one side concrete: refine the other
    if rc is None and lc is not None:
        left, right, lc, rc = right, left, rc, lc
    if rc is not None:
        return _fork_on_language(
            left, Regex.literal(rc), state,
            when_in_status=(0 if positive else 1),
            when_out_status=(1 if positive else 0),
            note=f"{left.describe(state.store)} vs {rc!r}",
            realpath_constant=rc,
        )

    # both symbolic: unknown
    yes = state.fork().with_status(0)
    no = state.fork().with_status(1)
    return [yes, no]


def _eval_numeric(
    left: SymString, right: SymString, op: str, state: SymState, negate: bool
) -> List[SymState]:
    try:
        lv = int(left.concrete_value())
        rv = int(right.concrete_value())
    except (TypeError, ValueError):
        yes = state.fork().with_status(0 if not negate else 1)
        no = state.fork().with_status(1 if not negate else 0)
        return [yes, no]
    truth = {
        "-eq": lv == rv,
        "-ne": lv != rv,
        "-gt": lv > rv,
        "-lt": lv < rv,
        "-ge": lv >= rv,
        "-le": lv <= rv,
    }[op]
    if negate:
        truth = not truth
    return [state.with_status(0 if truth else 1)]


def _fork_on_language(
    value: SymString,
    language: Regex,
    state: SymState,
    when_in_status: int,
    when_out_status: int,
    note: str,
    realpath_constant: Optional[str] = None,
) -> List[SymState]:
    """Fork on value ∈ language, refining single-variable values, and —
    via provenance — the *inputs* of realpath-derived values (§4: "the
    check on the normalized-path result of realpath implies information
    about the potentially un-normalized path")."""
    lang = value.to_regex(state.store)
    can_in = not (lang & language).is_empty()
    can_out = not (lang - language).is_empty()
    vid = value.single_var()
    results: List[SymState] = []

    if can_in:
        in_state = state.fork(note=f"{note}: in")
        feasible = True
        if vid is not None:
            feasible = not in_state.store.refine(vid, language).is_empty()
            if feasible and realpath_constant == "/":
                feasible = _refine_realpath_arg(in_state, vid, inside=True)
        if feasible:
            results.append(in_state.with_status(when_in_status))
    if can_out:
        out_state = state.fork(note=f"{note}: out")
        feasible = True
        if vid is not None:
            feasible = not out_state.store.exclude(vid, language).is_empty()
            if feasible and realpath_constant == "/":
                feasible = _refine_realpath_arg(out_state, vid, inside=False)
        if feasible:
            results.append(out_state.with_status(when_out_status))
    return results or [state.with_status(when_out_status)]


def _refine_realpath_arg(state: SymState, vid: int, inside: bool) -> bool:
    """Given `realpath(arg) == "/"` (inside) or `!= "/"` (outside),
    refine the variable inside ``arg``."""
    prov = state.store.provenance(vid)
    if not prov or prov[0] != "realpath":
        return True
    arg = prov[1]
    if not isinstance(arg, SymString):
        return True
    target = _rooty_modulo_var(arg, state)
    if target is None:
        return True
    if inside:
        return not state.store.refine(target, rooty_re()).is_empty()
    return not state.store.exclude(target, rooty_re()).is_empty()


def _rooty_modulo_var(arg: SymString, state: SymState) -> Optional[int]:
    """If ``arg`` is a single variable surrounded only by rooty literal
    text (slashes/dots), the refinement transfers to that variable."""
    from ..symstr import LitAtom, VarAtom

    vid = None
    for atom in arg.atoms:
        if isinstance(atom, VarAtom):
            if vid is not None:
                return None
            vid = atom.vid
        elif isinstance(atom, LitAtom):
            if any(c not in "/." for c in atom.text):
                return None
        else:
            return None
    return vid


# ---------------------------------------------------------------------------
# realpath (modelled as a builtin for the provenance relation)
# ---------------------------------------------------------------------------


def builtin_realpath(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    operands = [a for a in argv[1:] if not (a.concrete_value() or "").startswith("-")]
    if not operands:
        return [state.with_status(1)]
    arg = operands[0]

    concrete = arg.concrete_value()
    if concrete is not None and concrete.startswith("/"):
        from ..fs import normalise_concrete

        success = state.fork(note=f"realpath {concrete}")
        success.emit_text(SymString.lit(normalise_concrete(concrete) + "\n"))
        success.status = 0
        failure = state.fork(note=f"realpath {concrete}: fails")
        failure.status = 1
        if normalise_concrete(concrete) == "/":
            return [success]  # "/" always resolves
        return [success, failure]

    results = []
    success = state.fork(note=f"realpath {arg.describe(state.store)}: success")
    vid = success.store.fresh(
        abs_path_re(),
        label=f"realpath({arg.describe(state.store)})",
        provenance=("realpath", arg),
    )
    success.emit_text(SymString.var(vid) + SymString.lit("\n"))
    success.status = 0
    results.append(success)

    failure = state.fork(note=f"realpath {arg.describe(state.store)}: failure")
    failure.status = 1
    # rooty arguments always resolve (to "/"), so failure implies non-rooty
    target = _rooty_modulo_var(arg, failure)
    feasible = True
    if target is not None:
        feasible = not failure.store.exclude(target, rooty_re()).is_empty()
    if feasible:
        results.append(failure)
    return results


# ---------------------------------------------------------------------------
# simple builtins
# ---------------------------------------------------------------------------


def builtin_echo(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    args = argv[1:]
    newline = True
    if args and args[0].concrete_value() == "-n":
        newline = False
        args = args[1:]
    out = SymString.empty()
    for idx, arg in enumerate(args):
        if idx:
            out = out + SymString.lit(" ")
        out = out + arg
    if newline:
        out = out + SymString.lit("\n")
    state.emit_text(out)
    return [state.with_status(0)]


def builtin_printf(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    if len(argv) >= 2 and argv[1].is_concrete():
        fmt = argv[1].concrete_value()
        if "%" not in fmt:
            state.emit_text(SymString.lit(fmt.replace("\\n", "\n").replace("\\t", "\t")))
            return [state.with_status(0)]
        if fmt.replace("\\n", "") == "%s" and len(argv) >= 3:
            out = argv[2]
            if fmt.endswith("\\n"):
                out = out + SymString.lit("\n")
            state.emit_text(out)
            return [state.with_status(0)]
    vid = state.store.fresh(label="printf-output")
    state.emit_text(SymString.var(vid))
    return [state.with_status(0)]


def builtin_pwd(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    state.emit_text(state.cwd_str + SymString.lit("\n"))
    return [state.with_status(0)]


def builtin_exit(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    code = 0 if state.status is None else state.status
    if len(argv) > 1:
        concrete = argv[1].concrete_value()
        if concrete is not None and concrete.isdigit():
            code = int(concrete) % 256
    state.halted = True
    return [state.with_status(code)]


def builtin_export(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    for arg in argv[1:]:
        concrete = arg.concrete_value()
        if concrete is not None and "=" in concrete:
            name, _, value = concrete.partition("=")
            state.set_var(name, SymString.lit(value))
        # `export NAME` with symbolic/plain name: no-op for the analysis
    return [state.with_status(0)]


def builtin_unset(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    for arg in argv[1:]:
        concrete = arg.concrete_value()
        if concrete:
            state.unset_var(concrete)
    return [state.with_status(0)]


def builtin_read(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    names = [a.concrete_value() for a in argv[1:] if a.concrete_value()]
    names = [n for n in names if n and not n.startswith("-")]
    ok = state.fork(note="read: a line arrived")
    for name in names or ["REPLY"]:
        vid = ok.store.fresh(Regex.compile(".*"), label=f"${name} (read)")
        ok.set_var(name, SymString.var(vid))
    ok.status = 0
    eof = state.fork(note="read: end of input")
    eof.status = 1
    return [ok, eof]


def builtin_shift(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    count = 1
    if len(argv) > 1 and (argv[1].concrete_value() or "").isdigit():
        count = int(argv[1].concrete_value())
    if len(state.params) > 1:
        state.params = [state.params[0]] + state.params[1 + count :]
    if state.argv_unknown:
        # the count changed: any memoised $# no longer describes it
        state.argc_sym = None
    return [state.with_status(0)]


def builtin_colon(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    return [state.with_status(0)]


def builtin_true(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    return [state.with_status(0)]


def builtin_false(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    return [state.with_status(1)]


def builtin_return(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    state.halted = True  # approximated as function exit
    code = 0
    if len(argv) > 1 and (argv[1].concrete_value() or "").isdigit():
        code = int(argv[1].concrete_value()) % 256
    return [state.with_status(code)]


def builtin_set(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    for idx, arg in enumerate(argv[1:], start=1):
        concrete = arg.concrete_value()
        if concrete == "--":
            # `set -- a b c`: the operands become the (now known) argv
            state.set_params(argv[idx + 1 :])
            return [state.with_status(0)]
        if concrete is None or not concrete.startswith(("-", "+")):
            # first non-option operand: it and the rest replace argv
            state.set_params(argv[idx:])
            return [state.with_status(0)]
        if concrete.startswith("-") and len(concrete) > 1:
            state.options.update(c for c in concrete[1:] if c in "eux")
        elif concrete.startswith("+") and len(concrete) > 1:
            state.options.difference_update(concrete[1:])
    return [state.with_status(0)]


def builtin_break(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    return _loop_control("break", argv, state, engine)


def builtin_continue(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    return _loop_control("continue", argv, state, engine)


def _loop_control(
    kind: str, argv: List[SymString], state: SymState, engine: "Engine"
) -> List[SymState]:
    """``break [N]`` / ``continue [N]``: exit or restart N enclosing loops.

    The builtin only *raises* the signal (on ``state.loop_control``); the
    engine's loop evaluators consume it one level per loop boundary, so
    ``break 2`` inside a nested loop unwinds both.
    """
    levels = 1
    if len(argv) > 1:
        concrete = argv[1].concrete_value()
        if concrete is not None and concrete.isdigit() and int(concrete) >= 1:
            levels = int(concrete)
    depth = engine.loop_depth
    if depth <= 0:
        state.warn(
            Diagnostic(
                code="loop-control-outside-loop",
                message=f"'{kind}' outside any enclosing loop has no effect",
                severity=Severity.INFO,
            )
        )
        return [state.with_status(0)]
    # bash clamps N to the number of enclosing loops
    state.loop_control = (kind, min(levels, depth))
    return [state.with_status(0)]


def builtin_getopts(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    """``getopts optstring var [args...]``: one option-parsing step.

    Pure environment effect — binds ``var`` to one of the option letters
    (or ``?`` for an invalid option), ``OPTARG`` to an unknown string,
    and ``OPTIND`` to an unknown index; touches no files.  Forks the
    "parsed an option" (status 0) and "options exhausted" (status 1)
    outcomes so ``while getopts ...`` loops explore both.
    """
    optstring = argv[1].concrete_value() if len(argv) > 1 else None
    varname = argv[2].concrete_value() if len(argv) > 2 else None

    ok = state.fork(note="getopts: option parsed")
    if varname:
        letters = ""
        if optstring:
            letters = "".join(
                c for c in optstring.lstrip(":") if c != ":"
            )
        if letters:
            # var holds one optstring letter, or "?" on an invalid option
            lang = Regex.literal("?")
            for c in letters:
                lang = lang | Regex.literal(c)
            vid = ok.store.fresh(lang, label=f"${varname} (getopts)")
        else:
            vid = ok.store.fresh(label=f"${varname} (getopts)")
        ok.set_var(varname, SymString.var(vid))
    arg_vid = ok.store.fresh(label="$OPTARG (getopts)")
    ok.set_var("OPTARG", SymString.var(arg_vid))
    ind_vid = ok.store.fresh(
        Regex.compile("[1-9][0-9]*"), label="$OPTIND (getopts)"
    )
    ok.set_var("OPTIND", SymString.var(ind_vid))
    ok.status = 0

    done = state.fork(note="getopts: options exhausted")
    done.status = 1
    return [ok, done]


def builtin_wait(argv: List[SymString], state: SymState, engine: "Engine") -> List[SymState]:
    """``wait`` joins background jobs: it closes their event-log regions
    (their effects can no longer interleave with anything later) and
    removes them from the live-job list.

    - no arguments: waits for *all* jobs; exit status 0
    - ``%N`` arguments: waits for those job numbers; status unknown
      (it is the job's exit status)
    - pid arguments: we cannot map pids to jobs, so conservatively
      waits for all jobs; status unknown
    """
    args = [a.concrete_value() for a in argv[1:]]
    to_close = list(state.bg_jobs)
    status: Optional[int] = 0
    if args and all(a is not None and a.startswith("%") for a in args):
        numbers = set()
        for a in args:
            tail = a[1:]
            if tail.isdigit():
                numbers.add(int(tail))
        to_close = [j for j in state.bg_jobs if j.number in numbers]
        status = None
    elif args:
        status = None
    closed = {job.region for job in to_close}
    log = state.fs.log
    for job in to_close:
        log.close_region(job.region, label=job.label)
    state.bg_jobs = tuple(j for j in state.bg_jobs if j.region not in closed)
    return [state.with_status(status)]


_BUILTINS: Dict[str, Callable] = {
    "cd": builtin_cd,
    "test": builtin_test,
    "[": builtin_test,
    "echo": builtin_echo,
    "printf": builtin_printf,
    "pwd": builtin_pwd,
    "exit": builtin_exit,
    "export": builtin_export,
    "readonly": builtin_export,
    "local": builtin_export,
    "unset": builtin_unset,
    "read": builtin_read,
    "shift": builtin_shift,
    ":": builtin_colon,
    "true": builtin_true,
    "false": builtin_false,
    "return": builtin_return,
    "set": builtin_set,
    "realpath": builtin_realpath,
    "getopts": builtin_getopts,
    "wait": builtin_wait,
    "break": builtin_break,
    "continue": builtin_continue,
}
