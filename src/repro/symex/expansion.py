"""Symbolic word expansion.

Expansion turns a structured :class:`~repro.shell.ast.Word` into symbolic
string values, forking the state wherever shell semantics branch: the
``${v%pat}`` family (match/no-match cases), ``${v:-def}`` (set/empty
cases), and command substitution (one continuation per execution path of
the substituted command).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..diag import Diagnostic, Severity
from ..rlang import Regex
from ..rtypes import StreamType
from ..shell.ast import (
    ArithPart,
    CmdSubPart,
    GlobPart,
    LiteralPart,
    ParamPart,
    TildePart,
    Word,
)
from ..shell.glob import word_pattern_to_regex
from ..symstr import GlobAtom, SymString, strip_prefix, strip_suffix
from .state import SymState

if TYPE_CHECKING:
    from .engine import Engine

Expanded = Tuple[SymState, SymString]

#: Special parameters that are always "set".
_ALWAYS_SET = set("?#@*$!-0")


def expand_word(word: Word, state: SymState, engine: "Engine") -> List[Expanded]:
    """Expand one word; returns (state, value) per resulting path."""
    results: List[Expanded] = [(state, SymString.empty())]
    for part in word.parts:
        next_results: List[Expanded] = []
        for current_state, prefix in results:
            for part_state, part_value in _expand_part(part, current_state, engine, word):
                next_results.append((part_state, prefix + part_value))
        results = next_results
        if len(results) > engine.max_fork:
            results = results[: engine.max_fork]
    return results


def expand_words(
    words: List[Word], state: SymState, engine: "Engine"
) -> List[Tuple[SymState, List[SymString]]]:
    """Expand an argv's worth of words with POSIX field splitting.

    Unquoted expansion results with *concrete* contents split on IFS
    whitespace (``FLAGS="-r -f"; rm $FLAGS x`` passes three arguments);
    an unquoted expansion that is entirely empty contributes no argument
    at all.  Symbolic expansion results are not split (each contributes
    one argument) — a documented over-approximation.
    """
    results: List[Tuple[SymState, List[SymString]]] = [(state, [])]
    for word in words:
        next_results = []
        for current_state, argv in results:
            for word_state, fields in expand_word_fields(word, current_state, engine):
                next_results.append((word_state, argv + fields))
        results = next_results
        if len(results) > engine.max_fork:
            results = results[: engine.max_fork]
    return results


def expand_word_fields(
    word: Word, state: SymState, engine: "Engine"
) -> List[Tuple[SymState, List[SymString]]]:
    """Expand one word into zero or more fields."""
    # "$@" (standalone) produces one field per positional parameter
    if (
        len(word.parts) == 1
        and isinstance(word.parts[0], ParamPart)
        and word.parts[0].name == "@"
        and word.parts[0].op is None
    ):
        fields = list(state.params[1:])
        if state.argv_unknown:
            # unknown argv: the known prefix plus one stand-in field for
            # the unknown tail (an over-approximation of its join)
            vid = state.store.fresh(label='"$@" (unknown tail)')
            fields.append(SymString.var(vid))
        return [(state, fields)]
    # per path: list of (value, splittable) chunks
    results: List[Tuple[SymState, List[Tuple[SymString, bool]]]] = [(state, [])]
    for part in word.parts:
        splittable = isinstance(
            part, (ParamPart, CmdSubPart, ArithPart)
        ) and not getattr(part, "quoted", True)
        next_results = []
        for current_state, chunks in results:
            for part_state, part_value in _expand_part(part, current_state, engine, word):
                next_results.append(
                    (part_state, chunks + [(part_value, splittable)])
                )
        results = next_results
        if len(results) > engine.max_fork:
            results = results[: engine.max_fork]

    final: List[Tuple[SymState, List[SymString]]] = []
    has_quoted_part = any(
        getattr(part, "quoted", False) or isinstance(part, LiteralPart)
        for part in word.parts
    )
    for final_state, chunks in results:
        fields = _split_fields(chunks)
        if not fields and (has_quoted_part or not word.parts):
            # quoted-empty words survive as one empty argument ("")
            fields = [SymString.empty()]
        final.append((final_state, fields))
    return final


def _split_fields(chunks: List[Tuple[SymString, bool]]) -> List[SymString]:
    """Assemble chunks into fields, splitting concrete splittable text
    on IFS whitespace."""
    fields: List[SymString] = []
    current = SymString.empty()
    current_started = False

    def flush():
        nonlocal current, current_started
        if current_started:
            fields.append(current)
        current = SymString.empty()
        current_started = False

    for value, splittable in chunks:
        concrete = value.concrete_value()
        if not splittable or concrete is None or not _has_ifs(concrete):
            if value.atoms or not splittable:
                # literal text (even empty-quoted) contributes to a field;
                # an empty unquoted expansion contributes nothing
                if value.atoms:
                    current = current + value
                    current_started = True
                elif not splittable:
                    current_started = current_started or True
            continue
        pieces = concrete.split()
        leading_ws = concrete[:1].isspace()
        trailing_ws = concrete[-1:].isspace()
        for idx, piece in enumerate(pieces):
            if idx == 0 and not leading_ws:
                current = current + SymString.lit(piece)
                current_started = True
                if len(pieces) > 1 or trailing_ws:
                    flush()
            else:
                flush()
                current = SymString.lit(piece)
                current_started = True
                if idx < len(pieces) - 1 or trailing_ws:
                    flush()
        if not pieces:  # all-whitespace expansion: field break only
            flush()
    flush()
    return fields


def _has_ifs(text: str) -> bool:
    return any(c in " \t\n" for c in text)


# ---------------------------------------------------------------------------
# per-part expansion
# ---------------------------------------------------------------------------


def _expand_part(
    part, state: SymState, engine: "Engine", word: Word
) -> List[Expanded]:
    if isinstance(part, LiteralPart):
        return [(state, SymString.lit(part.text))]
    if isinstance(part, GlobPart):
        return [(state, SymString([GlobAtom(part.char)]))]
    if isinstance(part, TildePart):
        return [(state, _expand_tilde(part, state, engine))]
    if isinstance(part, ParamPart):
        return _expand_param(part, state, engine, word)
    if isinstance(part, CmdSubPart):
        return expand_command_sub(part, state, engine)
    if isinstance(part, ArithPart):
        return [(state, _expand_arith(part, state, engine, word))]
    raise TypeError(f"unknown word part {part!r}")


def _expand_arith(
    part: ArithPart, state: SymState, engine: "Engine", word: Word
) -> SymString:
    from .arith import ArithError, evaluate

    def lookup(name: str):
        value = _lookup(name, state, engine, word)
        if value is None:
            return ""  # unset counts as 0 in arithmetic
        return value.concrete_value()  # None when symbolic

    try:
        value = evaluate(part.expr, lookup)
    except ArithError:
        value = None
    if value is not None:
        return SymString.lit(str(value))
    vid = state.store.fresh(Regex.compile("-?[0-9]+"), label=f"$(({part.expr}))")
    return SymString.var(vid)


def _lookup(
    name: str, state: SymState, engine: "Engine", word: Word
) -> Optional[SymString]:
    """A variable's value; names never assigned in the script are
    materialised as inherited environment variables — symbolic strings
    that may hold anything, including the empty string."""
    value = state.get_var(name)
    if value is not None:
        return value
    if not name or name.isdigit() or name in _ALWAYS_SET:
        return value
    if not (name[0].isalpha() or name[0] == "_"):
        return value
    if name in engine.script_assigned:
        return None  # assigned somewhere, unset on this path
    vid = state.store.fresh(label=f"${name} (env)")
    env_value = SymString.var(vid)
    state.set_var(name, env_value)
    state.warn(
        Diagnostic(
            code="env-variable",
            message=f"${name} is never assigned by the script; treating it "
            "as an inherited environment variable with unknown contents",
            severity=Severity.INFO,
            pos=word.pos,
        )
    )
    return env_value


def _expand_tilde(part: TildePart, state: SymState, engine: "Engine") -> SymString:
    if part.user:
        return SymString.lit(f"/home/{part.user}")
    home = state.get_var("HOME")
    if home is not None:
        return home
    vid = state.store.fresh(Regex.compile(r"/([^/\n]+(/[^/\n]+)*)?"), label="$HOME")
    value = SymString.var(vid)
    state.set_var("HOME", value)
    return value


def _expand_param(
    part: ParamPart, state: SymState, engine: "Engine", word: Word
) -> List[Expanded]:
    value = _lookup(part.name, state, engine, word)

    if part.op is None:
        if value is None:
            if part.name not in _ALWAYS_SET and not part.name.isdigit():
                if "u" in state.options:
                    state.warn(
                        Diagnostic(
                            code="nounset-abort",
                            message=f"set -u: expanding unset ${part.name} "
                            "aborts the script",
                            severity=Severity.ERROR,
                            pos=word.pos,
                        )
                    )
                    state.halted = True
                    state.status = 2
                    return [(state, SymString.empty())]
                state.warn(
                    Diagnostic(
                        code="undefined-variable",
                        message=f"${part.name} is used but may be unset; it "
                        "expands to the empty string",
                        severity=Severity.WARNING,
                        pos=word.pos,
                    )
                )
            return [(state, SymString.empty())]
        return [(state, value)]

    if part.op == "len":
        if value is not None and value.is_concrete():
            return [(state, SymString.lit(str(len(value.concrete_value()))))]
        vid = state.store.fresh(Regex.compile("[0-9]+"), label=f"${{#{part.name}}}")
        return [(state, SymString.var(vid))]

    if part.op in ("%", "%%", "#", "##"):
        return _expand_strip(part, value, state, engine, word)

    return _expand_default_family(part, value, state, engine, word)


def _expand_strip(
    part: ParamPart,
    value: Optional[SymString],
    state: SymState,
    engine: "Engine",
    word: Word,
) -> List[Expanded]:
    if value is None:
        return [(state, SymString.empty())]
    pattern = _pattern_language(part.arg, state, engine)
    longest = part.op in ("%%", "##")
    op = strip_suffix if part.op in ("%", "%%") else strip_prefix
    cases = op(value, pattern, longest, state.store)
    results: List[Expanded] = []
    for case in cases:
        forked = state.fork(note=f"${{{part.name}{part.op}...}}: {case.note}") if len(cases) > 1 else state
        feasible = True
        for vid, refined in case.refinements:
            if forked.store.refine(vid, refined).is_empty():
                feasible = False
        if feasible:
            results.append((forked, case.result))
    return results or [(state, value)]


def _expand_default_family(
    part: ParamPart,
    value: Optional[SymString],
    state: SymState,
    engine: "Engine",
    word: Word,
) -> List[Expanded]:
    op = part.op
    checks_empty = op.startswith(":")
    base_op = op.lstrip(":")

    def expand_arg(target_state: SymState) -> List[Expanded]:
        if part.arg is None:
            return [(target_state, SymString.empty())]
        return expand_word(part.arg, target_state, engine)

    # Is the parameter "unset or null" (for ':' variants) / "unset"?
    if value is None:
        triggered = True
    elif checks_empty:
        could_empty = value.could_be_empty(state.store)
        must_empty = value.must_equal("", state.store)
        if must_empty:
            triggered = True
        elif not could_empty:
            triggered = False
        else:
            # genuinely both: fork
            return _fork_on_empty(part, value, state, engine, word)
    else:
        triggered = False

    if base_op == "+":
        if triggered:
            return [(state, SymString.empty())]
        return expand_arg(state)

    if not triggered:
        return [(state, value)]

    if base_op == "-":
        return expand_arg(state)
    if base_op == "=":
        results = []
        for arg_state, arg_value in expand_arg(state):
            arg_state.set_var(part.name, arg_value)
            results.append((arg_state, arg_value))
        return results
    if base_op == "?":
        state.warn(
            Diagnostic(
                code="parameter-error",
                message=f"${{{part.name}{op}...}} aborts: the parameter is "
                "unset" + ("/empty" if checks_empty else ""),
                severity=Severity.INFO,
                pos=word.pos,
            )
        )
        state.halted = True
        state.status = 1
        return [(state, SymString.empty())]
    raise AssertionError(f"unhandled operator {op}")


def _fork_on_empty(
    part: ParamPart,
    value: SymString,
    state: SymState,
    engine: "Engine",
    word: Word,
) -> List[Expanded]:
    """${X:-d} when X may or may not be empty: two worlds."""
    results: List[Expanded] = []
    vid = value.single_var()

    empty_state = state.fork(note=f"${part.name} is empty")
    if vid is not None:
        empty_state.store.refine(vid, Regex.literal(""))
    nonempty_state = state.fork(note=f"${part.name} is non-empty")
    if vid is not None:
        nonempty_state.store.exclude(vid, Regex.literal(""))

    base_op = part.op.lstrip(":")
    if base_op == "+":
        results.append((empty_state, SymString.empty()))
        if part.arg is not None:
            results.extend(expand_word(part.arg, nonempty_state, engine))
        else:
            results.append((nonempty_state, SymString.empty()))
        return results

    # "-", "=", "?" families: empty world uses the default/error path
    if base_op in ("-", "="):
        if part.arg is not None:
            for arg_state, arg_value in expand_word(part.arg, empty_state, engine):
                if base_op == "=":
                    arg_state.set_var(part.name, arg_value)
                results.append((arg_state, arg_value))
        else:
            results.append((empty_state, SymString.empty()))
    elif base_op == "?":
        empty_state.halted = True
        empty_state.status = 1
        results.append((empty_state, SymString.empty()))
    results.append((nonempty_state, value))
    return results


def _pattern_language(arg: Optional[Word], state: SymState, engine: "Engine") -> Regex:
    """The glob language of a ``${v%pat}`` pattern operand."""
    if arg is None:
        return Regex.literal("")
    pattern = word_pattern_to_regex(arg)
    if pattern is not None:
        return pattern
    # dynamic pattern: over-approximate with Σ*
    return Regex.any_string()


# ---------------------------------------------------------------------------
# command substitution
# ---------------------------------------------------------------------------


def expand_command_sub(
    part: CmdSubPart, state: SymState, engine: "Engine"
) -> List[Expanded]:
    """$(...) — run the inner command on a forked state.

    Environment and cwd changes inside the substitution are discarded
    (subshell semantics); file-system facts and constraint refinements
    persist (they are facts about the world, not shell-local state).
    """
    child = state.fork(note=f"enter $({part.source.strip()})")
    child.stdout = []
    child.halted = False
    child.capturing = True
    child.loop_control = None
    saved_depth = engine.loop_depth
    engine.loop_depth = 0
    try:
        sub_states = engine.eval(part.command, child)
    finally:
        engine.loop_depth = saved_depth
    results: List[Expanded] = []
    for sub_state in sub_states:
        value, exact = sub_state.stdout_value()
        if exact:
            value = _strip_trailing_newlines(value)
        else:
            value = _stream_chunks_value(sub_state, part, engine)
        continuation = sub_state  # keep fs/store/diagnostics/notes
        continuation.env = dict(state.env)
        continuation.params = list(state.params)
        continuation.argv_unknown = state.argv_unknown
        continuation.argc_sym = state.argc_sym
        continuation.functions = dict(state.functions)
        continuation.cwd_node = state.cwd_node
        continuation.cwd_str = state.cwd_str
        continuation.stdout = list(state.stdout)
        continuation.halted = state.halted
        continuation.capturing = state.capturing
        continuation.loop_control = state.loop_control
        # $? becomes the substitution's exit status; the engine's caller
        # decides whether to keep it (assignments do).
        results.append((continuation, value))
    return results


def _strip_trailing_newlines(value: SymString) -> SymString:
    from ..symstr import LitAtom

    atoms = list(value.atoms)
    while atoms and isinstance(atoms[-1], LitAtom):
        stripped = atoms[-1].text.rstrip("\n")
        if stripped:
            atoms[-1] = LitAtom(stripped)
            break
        atoms.pop()
    return SymString(atoms)


def _stream_chunks_value(
    sub_state: SymState, part: CmdSubPart, engine: "Engine"
) -> SymString:
    """Fold stream-typed stdout chunks into a constrained fresh variable."""
    language: Optional[Regex] = None
    for chunk in sub_state.stdout:
        if chunk.text is not None:
            piece = chunk.text.to_regex(sub_state.store)
        else:
            piece = _stream_string_language(chunk.stream)
        language = piece if language is None else language + piece
    if language is None:
        return SymString.empty()
    # strip of trailing newlines is folded into _stream_string_language
    vid = sub_state.store.fresh(language, label=f"$({part.source.strip()[:24]})")
    return SymString.var(vid)


def _stream_string_language(stream: StreamType) -> Regex:
    """All strings a stream of `line` lines can denote once captured by
    command substitution (trailing newline stripped): empty, or lines
    joined by newlines."""
    if stream.is_dead():
        return Regex.literal("")
    line = stream.line
    newline = Regex.literal("\n")
    return Regex.literal("") | (line + (newline + line).star())
