"""Symbolic execution of shell programs (paper §3, ingredient 2)."""

from .engine import Engine, ExecResult, SCRIPT_PATH_RE
from .state import StdoutChunk, SymState

__all__ = ["Engine", "ExecResult", "SymState", "StdoutChunk", "SCRIPT_PATH_RE"]
