"""Symbolic program states.

A :class:`SymState` is one point in the explored execution tree: the
shell environment (variables, positional parameters, functions), the
working directory, the symbolic file system, the regular-language
constraint store, the last exit status, any captured stdout, the path
condition (as human-readable notes), and diagnostics collected so far.
Forking copies cheaply; the heavyweight members (fs nodes, constraints)
are copy-on-write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..diag import Diagnostic
from ..fs import FileSystem
from ..rlang import Regex
from ..rtypes import StreamType
from ..shell.ast import Command
from ..symstr import ConstraintStore, SymString

#: Exit status: a known small integer, or None when unknown/symbolic.
Status = Optional[int]

STATUS_UNKNOWN: Status = None


@dataclass(frozen=True)
class BgJob:
    """A live (unwaited) background job on one symbolic path.

    ``number`` is the shell job number (1-based, in launch order, the
    ``%1`` of ``wait %1``); ``region`` is the event-log region id whose
    open/close markers delimit where the job's effects may interleave.
    """

    number: int
    region: int
    label: str = ""
    #: source position (excluded from identity: Position is mutable, and
    #: two states differing only in a job's position should still merge)
    pos: Optional[object] = field(default=None, compare=False)


@dataclass
class StdoutChunk:
    """A piece of captured standard output.

    Either concrete-ish ``text`` (a SymString) or a stream of lines with
    a regular ``stream`` type (from a pipeline or an opaque command).
    """

    text: Optional[SymString] = None
    stream: Optional[StreamType] = None

    @classmethod
    def of_text(cls, text: SymString) -> "StdoutChunk":
        return cls(text=text)

    @classmethod
    def of_stream(cls, stream: StreamType) -> "StdoutChunk":
        return cls(stream=stream)


class SymState:
    __slots__ = (
        "env",
        "params",
        "argv_unknown",
        "argc_sym",
        "functions",
        "cwd_node",
        "cwd_str",
        "fs",
        "store",
        "status",
        "stdout",
        "notes",
        "diagnostics",
        "halted",
        "depth",
        "capturing",
        "options",
        "bg_jobs",
        "bg_launched",
        "loop_control",
    )

    def __init__(
        self,
        env: Optional[Dict[str, SymString]] = None,
        params: Optional[List[SymString]] = None,
        functions: Optional[Dict[str, Command]] = None,
        cwd_node: Optional[int] = None,
        cwd_str: Optional[SymString] = None,
        fs: Optional[FileSystem] = None,
        store: Optional[ConstraintStore] = None,
        status: Status = 0,
        stdout: Optional[List[StdoutChunk]] = None,
        notes: Optional[List[str]] = None,
        diagnostics: Optional[List[Diagnostic]] = None,
        halted: bool = False,
        depth: int = 0,
        capturing: bool = False,
        options: "Optional[set]" = None,
        bg_jobs: Tuple[BgJob, ...] = (),
        bg_launched: int = 0,
        loop_control: Optional[Tuple[str, int]] = None,
        argv_unknown: bool = False,
        argc_sym: Optional[SymString] = None,
    ):
        self.env = dict(env or {})
        self.params = list(params or [])
        #: True when the positional parameters beyond the known prefix in
        #: ``params`` are unknown at entry (POSIX start-up semantics: a
        #: script's argv is whatever the caller passes, not concretely
        #: empty).  ``$N`` past the prefix materialises lazily as a fresh
        #: unconstrained variable, and ``$#`` is a symbolic count.
        self.argv_unknown = argv_unknown
        #: the memoised symbolic value of ``$#`` on this path (only while
        #: ``argv_unknown``); reset whenever the count changes (shift)
        self.argc_sym = argc_sym
        self.functions = dict(functions or {})
        self.fs = fs if fs is not None else FileSystem()
        self.store = store if store is not None else ConstraintStore()
        self.cwd_node = cwd_node
        self.cwd_str = cwd_str if cwd_str is not None else SymString.lit("/")
        self.status = status
        self.stdout = list(stdout or [])
        self.notes = list(notes or [])
        self.diagnostics = list(diagnostics or [])
        self.halted = halted
        self.depth = depth
        #: True while stdout is being captured for a command substitution;
        #: outside capture, stdout content is irrelevant to state identity
        self.capturing = capturing
        #: shell options in effect: "e" (errexit), "u" (nounset), ...
        self.options = set(options or ())
        #: live (unwaited) background jobs, in launch order
        self.bg_jobs = tuple(bg_jobs)
        #: how many background jobs this path has launched (job numbering)
        self.bg_launched = bg_launched
        #: a pending ``break``/``continue``: ("break"|"continue", levels).
        #: While set, the engine skips evaluation until the enclosing
        #: loop(s) consume it, one level per loop boundary.
        self.loop_control = loop_control

    # -- forking -----------------------------------------------------------

    def fork(self, note: str = "") -> "SymState":
        child = SymState(
            env=self.env,
            params=self.params,
            functions=self.functions,
            cwd_node=self.cwd_node,
            cwd_str=self.cwd_str,
            fs=self.fs.fork(),
            store=self.store.fork(),
            status=self.status,
            stdout=self.stdout,
            notes=self.notes,
            diagnostics=self.diagnostics,
            halted=self.halted,
            depth=self.depth,
            capturing=self.capturing,
            options=self.options,
            bg_jobs=self.bg_jobs,
            bg_launched=self.bg_launched,
            loop_control=self.loop_control,
            argv_unknown=self.argv_unknown,
            argc_sym=self.argc_sym,
        )
        if note:
            child.notes.append(note)
        return child

    # -- environment --------------------------------------------------------

    def get_var(self, name: str) -> Optional[SymString]:
        """Value of a variable or special parameter; None when unset."""
        if name.isdigit():
            idx = int(name)
            if idx < len(self.params):
                return self.params[idx]
            if self.argv_unknown and idx > 0:
                # argv is unknown at entry: $N past the known prefix is a
                # fresh, unconstrained value, memoised per path so later
                # refinements (case arms, tests) stick
                while len(self.params) <= idx:
                    vid = self.store.fresh(label=f"${len(self.params)}")
                    self.params.append(SymString.var(vid))
                return self.params[idx]
            return None
        if name == "?":
            if self.status is None:
                vid = self.store.fresh(
                    Regex.compile("[0-9]{1,3}"), label="$? (unknown)"
                )
                return SymString.var(vid)
            return SymString.lit(str(self.status))
        if name == "#":
            if self.argv_unknown:
                if self.argc_sym is None:
                    vid = self.store.fresh(
                        Regex.compile("0|[1-9][0-9]*"), label="$#"
                    )
                    self.argc_sym = SymString.var(vid)
                return self.argc_sym
            return SymString.lit(str(max(0, len(self.params) - 1)))
        if name == "PWD":
            return self.cwd_str
        if name in ("@", "*"):
            # joined positionals (field splitting is out of scope)
            joined = SymString.empty()
            for idx, param in enumerate(self.params[1:]):
                if idx:
                    joined = joined + SymString.lit(" ")
                joined = joined + param
            if self.argv_unknown:
                # the unknown tail: any string, including the empty one
                vid = self.store.fresh(label=f'"${name}" (unknown tail)')
                joined = joined + SymString.var(vid)
            return joined
        if name == "$":
            return SymString.lit("12345")  # a fixed abstract pid
        return self.env.get(name)

    # -- positional parameters ----------------------------------------------

    def set_params(self, values: List[SymString]) -> None:
        """Replace the positional parameters ($1...) with known values
        (``set -- a b c``); the count becomes concrete again."""
        script = self.params[0] if self.params else SymString.lit("sh")
        self.params = [script] + list(values)
        self.argv_unknown = False
        self.argc_sym = None

    def set_var(self, name: str, value: SymString) -> None:
        if name == "PWD":
            self.cwd_str = value
        self.env[name] = value

    def unset_var(self, name: str) -> None:
        self.env.pop(name, None)

    # -- status ------------------------------------------------------------------

    def with_status(self, status: Status) -> "SymState":
        self.status = status
        return self

    def succeeded(self) -> Optional[bool]:
        """True/False when the status is known, None when symbolic."""
        if self.status is None:
            return None
        return self.status == 0

    # -- output -------------------------------------------------------------------

    def emit_text(self, text: SymString) -> None:
        self.stdout.append(StdoutChunk.of_text(text))

    def emit_stream(self, stream: StreamType) -> None:
        self.stdout.append(StdoutChunk.of_stream(stream))

    def stdout_value(self) -> Tuple[SymString, bool]:
        """Captured stdout as a value for command substitution.

        Returns ``(value, exact)``; when any chunk is a stream, the value
        degrades to a fresh unconstrained-ish variable created by the
        caller — here we signal with ``exact=False``.
        """
        if any(chunk.stream is not None for chunk in self.stdout):
            return SymString.empty(), False
        value = SymString.empty()
        for chunk in self.stdout:
            value = value + chunk.text
        return value, True

    # -- diagnostics -----------------------------------------------------------------

    def warn(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def __repr__(self) -> str:
        return (
            f"SymState(status={self.status}, vars={sorted(self.env)}, "
            f"notes={len(self.notes)})"
        )
