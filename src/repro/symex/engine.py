"""The symbolic execution engine (paper §3, ingredient 2).

Simulates the shell interpreter over sets of symbolic states: expands
parameters, tracks working directories, follows success *and* failure
paths of every command, collects and propagates constraints on symbolic
variables, and prunes via concrete state whenever possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..checkers.base import Checker
from ..diag import Diagnostic, Severity, dedupe
from ..fs import FsContradiction, FsOp, NodeKind, Origin, parse_sympath
from ..obs import Recorder, get_recorder
from ..rlang import Regex
from ..rtypes import StreamType, check_pipeline
from ..shell import parse as parse_shell
from ..shell.ast import (
    AndOr,
    Background,
    BraceGroup,
    Case,
    Command,
    For,
    FunctionDef,
    If,
    ParamPart,
    Pipeline,
    Redirect,
    Sequence as SeqNode,
    SimpleCommand,
    Subshell,
    While,
    Word,
)
from ..shell.ast import first_pos
from ..shell.glob import word_pattern_to_regex
from ..shell.printer import command_label
from ..specs import (
    Absent,
    Clause,
    CommandSpec,
    CopiesTo,
    Creates,
    Deletes,
    Exists,
    LinksTo,
    ListsDir,
    ParentExists,
    PathKind,
    ReadsFile,
    Sel,
    SpecRegistry,
    WritesFile,
    default_registry,
)
from ..symstr import SymString
from . import builtins as builtins_mod
from .expansion import expand_word, expand_words
from .state import BgJob, SymState

#: Script paths ($0): §3's example constraint.
SCRIPT_PATH_RE = r"/?([^/\n]*/)*[^/\n]+"


@dataclass
class ExecResult:
    """Outcome of exploring a script."""

    states: List[SymState]
    diagnostics: List[Diagnostic]
    paths_explored: int = 0
    paths_merged: int = 0
    truncations: int = 0

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)


class Engine:
    """Configurable symbolic executor."""

    def __init__(
        self,
        registry: Optional[SpecRegistry] = None,
        checkers: Optional[List[Checker]] = None,
        max_fork: int = 64,
        max_loop: int = 2,
        max_call_depth: int = 8,
        prune: bool = True,
        signature_overrides: Optional[Dict[str, "object"]] = None,
        initial_env: Optional[Dict[str, "object"]] = None,
        recorder: Optional[Recorder] = None,
        budget: Optional["object"] = None,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.checkers = checkers if checkers is not None else []
        self.max_fork = max_fork
        self.max_loop = max_loop
        self.max_call_depth = max_call_depth
        self.prune = prune
        #: annotation-supplied stream signatures, keyed by command name or
        #: by the full argv string (the more specific key wins)
        self.signature_overrides = dict(signature_overrides or {})
        #: annotation-supplied initial variable constraints (name -> Regex)
        self.initial_env = dict(initial_env or {})
        #: variable names assigned anywhere in the current script; names
        #: never assigned are treated as inherited environment variables
        #: (symbolic, possibly empty) rather than silently-empty unsets
        self.script_assigned: set = set()
        self.paths_explored = 0
        self.paths_merged = 0
        #: how many times `_prune` dropped states past the `max_fork` budget
        self.truncations = 0
        #: explicit recorder, or None to pick up the active one per run
        self.recorder = recorder
        self._rec: Recorder = recorder if recorder is not None else get_recorder()
        #: explicit ResourceBudget, or None to pick up the active one per
        #: run (see repro.analysis.resilience); exhaustion raises
        #: AnalysisBudgetExceeded out of run()
        self.budget = budget
        self._budget = budget
        #: per-command success feasibility, aggregated across every path
        #: reaching it: id(node) -> [node, feasible_count, visit_count]
        self._success_tracker: Dict[int, list] = {}
        #: >0 while evaluating a condition context (if/while/&&/||/!),
        #: where `set -e` does not fire
        self._cond_depth = 0
        #: background region ids handed out this run (0 = foreground)
        self._region_counter = 0
        #: how many loops lexically enclose the current evaluation point
        #: (break/continue clamp their level to this, per bash)
        self.loop_depth = 0
        #: provenance labels, cached per AST node (id(node) -> Origin)
        self._origin_cache: Dict[int, Origin] = {}
        #: optional fragment memoization hook (incremental analysis):
        #: when set, function-body evaluations may be served from
        #: per-fragment summaries instead of being re-explored.  See
        #: repro.analysis.incremental.FragmentMemo.
        self.fragment_memo = None

    # -- entry points -------------------------------------------------------

    def initial_state(
        self,
        n_args: Optional[int] = None,
        args: Optional[Sequence[str]] = None,
    ) -> SymState:
        """The entry state.

        - ``args``: concrete positional parameters (``--args a b c``).
        - ``n_args``: that many *symbolic* positional parameters with a
          known count (the legacy mode, kept for ``# @args N``).
        - neither: POSIX start-up semantics — argv is whatever the caller
          passes, so the positionals are unknown-at-entry (``$#`` is a
          symbolic count, ``$N`` materialises lazily).
        """
        state = SymState()
        vid0 = state.store.fresh(Regex.compile(SCRIPT_PATH_RE), label="$0")
        state.params = [SymString.var(vid0)]
        if args is not None:
            state.params.extend(SymString.lit(str(a)) for a in args)
        elif n_args is None:
            state.argv_unknown = True
        else:
            for idx in range(1, n_args + 1):
                vid = state.store.fresh(label=f"${idx}")
                state.params.append(SymString.var(vid))
        cwd_vid = state.store.fresh(
            Regex.compile(builtins_mod.ABS_PATH), label="$PWD"
        )
        state.cwd_str = SymString.var(cwd_vid)
        state.cwd_node = None
        for name, constraint in self.initial_env.items():
            vid = state.store.fresh(constraint, label=f"${name}")
            state.set_var(name, SymString.var(vid))
        return state

    def run_script(
        self,
        source: str,
        n_args: Optional[int] = None,
        state: Optional[SymState] = None,
        args: Optional[Sequence[str]] = None,
    ) -> ExecResult:
        ast = parse_shell(source)
        return self.run(ast, state=state, n_args=n_args, args=args)

    def run(
        self,
        ast: Command,
        state: Optional[SymState] = None,
        n_args: Optional[int] = None,
        args: Optional[Sequence[str]] = None,
    ) -> ExecResult:
        rec = self._rec = self.recorder if self.recorder is not None else get_recorder()
        if self.budget is not None:
            self._budget = self.budget
        else:
            from ..analysis.resilience import get_budget

            self._budget = get_budget()
        self.paths_explored = 0
        self.paths_merged = 0
        self.truncations = 0
        self.script_assigned = _assigned_names(ast)
        self._success_tracker = {}
        self._region_counter = 0
        self._origin_cache = {}
        self.loop_depth = 0
        if state is None:
            state = self.initial_state(n_args=n_args, args=args)
        with rec.span("symex.run"):
            finals = self.eval(ast, state)
            diagnostics: List[Diagnostic] = []
            for final in finals:
                diagnostics.extend(final.diagnostics)
            with rec.span("symex.checkers"):
                # a command "always fails" only when its success preconditions
                # contradicted established facts on EVERY path that reached it
                sink = _DiagSink()
                for node, feasible, visits in self._success_tracker.values():
                    if visits and not feasible:
                        reason = (
                            "its preconditions contradict established "
                            "file-system facts"
                        )
                        for checker in self.checkers:
                            checker.on_always_fails(sink, node, reason)
                diagnostics.extend(sink.diagnostics)
                for checker in self.checkers:
                    diagnostics.extend(checker.finish(finals))
        if self.truncations:
            diagnostics.append(
                Diagnostic(
                    code="analysis-truncated",
                    message=(
                        f"analysis truncated: path budget (max_fork="
                        f"{self.max_fork}) exhausted {self.truncations} "
                        "time(s); results may be incomplete"
                    ),
                    severity=Severity.INFO,
                )
            )
        rec.count("symex.runs")
        return ExecResult(
            states=finals,
            diagnostics=dedupe(diagnostics),
            paths_explored=self.paths_explored,
            paths_merged=self.paths_merged,
            truncations=self.truncations,
        )

    # -- core dispatch ----------------------------------------------------------

    def eval(self, node: Command, state: SymState) -> List[SymState]:
        if state.halted:
            return [state]
        if state.loop_control is not None:
            # a pending break/continue skips everything until the
            # enclosing loop consumes it
            return [state]
        self.paths_explored += 1
        if self._budget is not None:
            # the hot resilience point: one eval step = one budget charge
            # (trips on max_states, and on the deadline every few steps)
            self._budget.charge_state()
        rec = self._rec
        rec.count("symex.states_explored")
        if rec.enabled:
            with rec.span("eval." + type(node).__name__):
                return self._eval_node(node, state)
        return self._eval_node(node, state)

    def _eval_node(self, node: Command, state: SymState) -> List[SymState]:
        if isinstance(node, SimpleCommand):
            return self._prune(self.eval_simple(node, state))
        if isinstance(node, Pipeline):
            return self._prune(self.eval_pipeline(node, state))
        if isinstance(node, AndOr):
            return self._prune(self.eval_andor(node, state))
        if isinstance(node, SeqNode):
            return self._prune(self.eval_sequence(node, state))
        if isinstance(node, Background):
            return self.eval_background(node, state)
        if isinstance(node, Subshell):
            return self.eval_subshell(node, state)
        if isinstance(node, BraceGroup):
            states = self.eval(node.body, state)
            return self._apply_redirect_list(node.redirects, states, owner=node)
        if isinstance(node, If):
            return self._prune(self.eval_if(node, state))
        if isinstance(node, While):
            return self._prune(self.eval_while(node, state))
        if isinstance(node, For):
            return self._prune(self.eval_for(node, state))
        if isinstance(node, Case):
            return self._prune(self.eval_case(node, state))
        if isinstance(node, FunctionDef):
            state.functions[node.name] = node.body
            return [state.with_status(0)]
        raise TypeError(f"engine cannot evaluate {type(node).__name__}")

    def eval_many(self, node: Command, states: List[SymState]) -> List[SymState]:
        results: List[SymState] = []
        for state in states:
            results.extend(self.eval(node, state))
        return self._prune(results)

    def _fork(self, state: SymState, note: str) -> SymState:
        self._rec.count("symex.states_forked")
        return state.fork(note=note)

    # -- provenance ---------------------------------------------------------

    def _origin_for(self, node: Command) -> Origin:
        """The (cached) provenance record for a command node."""
        origin = self._origin_cache.get(id(node))
        if origin is None:
            pos = first_pos(node) or getattr(node, "pos", None)
            origin = Origin(label=command_label(node), pos=pos)
            self._origin_cache[id(node)] = origin
        return origin

    # -- simple commands -----------------------------------------------------------

    def eval_simple(self, node: SimpleCommand, state: SymState) -> List[SymState]:
        # 1. assignments
        assign_states = [state]
        for assignment in node.assignments:
            next_states = []
            for st in assign_states:
                for val_state, value in expand_word(assignment.value, st, self):
                    val_state.set_var(assignment.name, value)
                    next_states.append(val_state)
            assign_states = next_states

        if not node.words:
            # assignment-only commands exit with the last command
            # substitution's status (already left in place by expansion),
            # or 0 when no substitution ran
            from ..shell.ast import CmdSubPart

            has_cmdsub = any(
                isinstance(part, CmdSubPart)
                for assignment in node.assignments
                for part in assignment.value.parts
            )
            results = []
            origin = self._origin_for(node)
            for st in assign_states:
                if not has_cmdsub:
                    st.status = 0
                st.fs.log.set_origin(origin)
                results.extend(self._apply_redirects(node.redirects, st))
            return results

        # 2. argv expansion
        results: List[SymState] = []
        for st in assign_states:
            for argv_state, argv in expand_words(node.words, st, self):
                results.extend(self._dispatch_command(node, argv, argv_state))
        return results

    def _dispatch_command(
        self, node: SimpleCommand, argv: List[SymString], state: SymState
    ) -> List[SymState]:
        name = argv[0].concrete_value()
        # all fs events from this command (spec effects, builtin probes,
        # redirects) are attributed to it on the trace
        state.fs.log.set_origin(self._origin_for(node))

        # redirects apply regardless of how the command is resolved
        def with_redirects(states: List[SymState]) -> List[SymState]:
            return self._apply_redirect_list(node.redirects, states, owner=node)

        if name is None:
            state.warn(
                Diagnostic(
                    code="dynamic-command",
                    message="command name is computed at runtime; its effects "
                    "are unknown",
                    severity=Severity.INFO,
                    pos=node.pos,
                )
            )
            return with_redirects(self._unknown_command(state))

        if name in state.functions:
            return with_redirects(self._call_function(name, argv, state))

        spec = self.registry.get(name)
        for checker in self.checkers:
            checker.on_command(state, node, argv, spec)

        if builtins_mod.is_builtin(name):
            return with_redirects(builtins_mod.run_builtin(name, argv, state, self))

        if spec is not None:
            return with_redirects(self._apply_spec(spec, node, argv, state))

        state.warn(
            Diagnostic(
                code="unknown-command",
                message=f"no specification for {name!r}; treating its "
                "effects as unknown",
                severity=Severity.INFO,
                pos=node.pos,
            )
        )
        return with_redirects(self._unknown_command(state))

    def _unknown_command(self, state: SymState) -> List[SymState]:
        vid = state.store.fresh(label="unknown-output")
        state.emit_text(SymString.var(vid))
        state.status = None
        return [state]

    def _call_function(
        self, name: str, argv: List[SymString], state: SymState
    ) -> List[SymState]:
        if state.depth >= self.max_call_depth:
            state.status = None
            return [state]
        body = state.functions[name]
        saved_params = list(state.params)
        saved_unknown = state.argv_unknown
        saved_argc = state.argc_sym
        state.params = [saved_params[0] if saved_params else SymString.lit(name)] + argv[1:]
        # inside the function the positional parameters are exactly the
        # call's arguments: a known count, even when the script's own
        # argv is unknown
        state.argv_unknown = False
        state.argc_sym = None
        state.depth += 1
        if self.fragment_memo is not None:
            results = self.fragment_memo.eval_body(self, name, body, state)
        else:
            results = self.eval(body, state)
        for result in results:
            result.params = saved_params
            result.argv_unknown = saved_unknown
            result.argc_sym = saved_argc
            result.depth -= 1
            result.halted = False  # `return` only exits the function
        return results

    # -- specs ---------------------------------------------------------------------

    def _apply_spec(
        self,
        spec: CommandSpec,
        node: SimpleCommand,
        argv: List[SymString],
        state: SymState,
    ) -> List[SymState]:
        flags, operand_values = self._parse_argv(spec, argv, state, node)

        clauses = spec.applicable_clauses(frozenset(flags))
        if not clauses:
            state.status = None
            return [state]

        results: List[SymState] = []
        any_success_feasible = False
        has_success_clause = any(c.exit_code == 0 for c in clauses)
        failure_branches: List[SymState] = []

        for clause in clauses:
            branch = self._fork(
                state, f"{spec.name}: {clause.note or f'exit {clause.exit_code}'}"
            )
            feasible, reason = self._apply_clause(
                spec, clause, operand_values, branch, node
            )
            if not feasible:
                continue
            branch.status = clause.exit_code
            if clause.exit_code == 0:
                any_success_feasible = True
                if spec.stdout is not None:
                    branch.emit_stream(spec.stdout)
                results.append(branch)
            else:
                failure_branches.append(branch)

        if has_success_clause and operand_values:
            entry = self._success_tracker.setdefault(id(node), [node, 0, 0])
            entry[1] += 1 if any_success_feasible else 0
            entry[2] += 1

        results.extend(failure_branches)
        if not results:
            # everything contradicted: keep a pruned-but-alive failure state
            state.status = 1
            return [state]
        return results

    def _parse_argv(
        self,
        spec: CommandSpec,
        argv: List[SymString],
        state: SymState,
        node: SimpleCommand,
    ) -> Tuple[List[str], List[SymString]]:
        """Tolerant XBD-style parse of symbolic argv: concrete dash words
        become flags, everything else is an operand."""
        flags: List[str] = []
        operands: List[SymString] = []
        seen_ddash = False
        idx = 1
        while idx < len(argv):
            concrete = argv[idx].concrete_value()
            if not seen_ddash and concrete == "--":
                seen_ddash = True
            elif (
                not seen_ddash
                and concrete is not None
                and concrete.startswith("--")
            ):
                key = concrete.split("=", 1)[0]
                flags.append(key)
                if spec.long_options.get(key[2:]) and "=" not in concrete:
                    idx += 1  # consumes the next word as its value
            elif (
                not seen_ddash
                and concrete is not None
                and concrete.startswith("-")
                and concrete != "-"
            ):
                jdx = 1
                while jdx < len(concrete):
                    char = concrete[jdx]
                    flags.append("-" + char)
                    if spec.options.get(char):
                        if jdx + 1 >= len(concrete):
                            idx += 1  # value is the next word
                        break
                    jdx += 1
            else:
                operands.append(argv[idx])
            idx += 1
        return flags, operands

    def _select(self, sel: Sel, operands: List[SymString]) -> List[SymString]:
        if sel is Sel.EACH:
            return list(operands)
        if sel is Sel.FIRST:
            return operands[:1]
        if sel is Sel.LAST:
            return operands[-1:]
        if sel is Sel.ALL_BUT_LAST:
            return operands[:-1]
        raise AssertionError(sel)

    def _apply_clause(
        self,
        spec: CommandSpec,
        clause: Clause,
        operands: List[SymString],
        state: SymState,
        node: SimpleCommand,
    ) -> Tuple[bool, str]:
        if not spec.operands_are_paths:
            return True, ""
        if spec.path_operands_from:
            operands = operands[spec.path_operands_from:]
        try:
            for pre in clause.pre:
                self._assume_pre(pre, operands, state)
        except FsContradiction as exc:
            return False, str(exc)
        for effect in clause.effects:
            self._apply_effect(effect, operands, state, node)
        return True, ""

    def _assume_pre(self, pre, operands: List[SymString], state: SymState) -> None:
        if isinstance(pre, Exists):
            kind = {
                PathKind.FILE: NodeKind.FILE,
                PathKind.DIR: NodeKind.DIR,
                PathKind.ANY: NodeKind.UNKNOWN,
            }[pre.kind]
            for value in self._select(pre.sel, operands):
                node_id = self._resolve(value, state)
                if node_id is not None:
                    state.fs.assume_exists(node_id, kind)
        elif isinstance(pre, Absent):
            for value in self._select(pre.sel, operands):
                node_id = self._resolve(value, state)
                if node_id is not None:
                    state.fs.assume_absent(node_id)
        elif isinstance(pre, ParentExists):
            for value in self._select(pre.sel, operands):
                node_id = self._resolve(value, state)
                if node_id is not None:
                    parent = state.fs.nodes[node_id].parent
                    if parent is not None:
                        state.fs.assume_exists(parent, NodeKind.DIR)

    def _apply_effect(
        self, effect, operands: List[SymString], state: SymState, node: SimpleCommand
    ) -> None:
        if isinstance(effect, Deletes):
            for value in self._select(effect.sel, operands):
                for checker in self.checkers:
                    checker.on_delete(state, node, value, effect.recursive)
                target = value.without_globs() if value.has_glob() else value
                node_id = self._resolve(target, state)
                if node_id is not None:
                    if value.has_glob():
                        # deleting the *children* of the target directory
                        for child_id in list(state.fs.children_of(node_id).values()):
                            state.fs.delete(child_id, recursive=effect.recursive)
                    else:
                        state.fs.delete(node_id, recursive=effect.recursive)
        elif isinstance(effect, Creates):
            for value in self._select(effect.sel, operands):
                node_id = self._resolve(value, state)
                if node_id is not None:
                    kind = NodeKind.DIR if effect.kind is PathKind.DIR else NodeKind.FILE
                    state.fs.create(node_id, kind, ensure_parents=effect.ensure_parents)
        elif isinstance(effect, WritesFile):
            for value in self._select(effect.sel, operands):
                node_id = self._resolve(value, state)
                if node_id is not None:
                    state.fs.write_file(node_id)
        elif isinstance(effect, ReadsFile):
            for value in self._select(effect.sel, operands):
                node_id = self._resolve(value, state)
                if node_id is not None:
                    state.fs.read_file(node_id)
        elif isinstance(effect, ListsDir):
            from ..fs import FsOp

            for value in self._select(effect.sel, operands):
                node_id = self._resolve(value, state)
                if node_id is not None:
                    state.fs.log.record(FsOp.LIST, state.fs.path_of(node_id), node_id)
        elif isinstance(effect, CopiesTo):
            if len(operands) >= 2:
                for source in operands[:-1]:
                    src_id = self._resolve(source, state)
                    if src_id is not None and effect.move:
                        state.fs.delete(src_id, recursive=True)
                dst_id = self._resolve(operands[-1], state)
                if dst_id is not None:
                    state.fs.create(dst_id, NodeKind.UNKNOWN)
        elif isinstance(effect, LinksTo):
            if len(operands) >= 2:
                src_id = self._resolve(operands[0], state)
                dst_id = self._resolve(operands[-1], state)
                if dst_id is not None:
                    if src_id is not None:
                        state.fs.make_symlink(dst_id, src_id)
                    else:
                        state.fs.create(dst_id, NodeKind.SYMLINK)

    def _resolve(self, value: SymString, state: SymState) -> Optional[int]:
        if value.has_glob():
            # resolve the static prefix before the first wildcard
            from ..symstr import GlobAtom

            atoms = []
            for atom in value.atoms:
                if isinstance(atom, GlobAtom):
                    break
                atoms.append(atom)
            value = SymString(atoms)
        path = parse_sympath(value)
        if path is None:
            return None
        return state.fs.resolve(path, cwd=state.cwd_node)

    # -- redirects --------------------------------------------------------------------

    def _apply_redirect_list(
        self,
        redirects: List[Redirect],
        states: List[SymState],
        owner: Optional[Command] = None,
    ) -> List[SymState]:
        if not redirects:
            return states
        results = []
        origin = self._origin_for(owner) if owner is not None else None
        for state in states:
            if origin is not None:
                state.fs.log.set_origin(origin)
            results.extend(self._apply_redirects(redirects, state))
        return results

    def _apply_redirects(
        self, redirects: List[Redirect], state: SymState
    ) -> List[SymState]:
        states = [state]
        for redirect in redirects:
            if redirect.op in (">", ">>", ">|"):
                next_states = []
                for st in states:
                    for val_state, value in expand_word(redirect.target, st, self):
                        node_id = self._resolve(value, val_state)
                        if node_id is not None:
                            if redirect.op != ">>":
                                self._check_clobbers_input(
                                    redirect, node_id, val_state, FsOp.READ
                                )
                            try:
                                val_state.fs.write_file(node_id)
                            except FsContradiction as exc:
                                val_state.warn(
                                    Diagnostic(
                                        code="redirect-conflict",
                                        message=str(exc),
                                        severity=Severity.WARNING,
                                        pos=redirect.target.pos,
                                    )
                                )
                        next_states.append(val_state)
                states = next_states
            elif redirect.op == "<":
                next_states = []
                for st in states:
                    for val_state, value in expand_word(redirect.target, st, self):
                        node_id = self._resolve(value, val_state)
                        if node_id is not None:
                            self._check_clobbers_input(
                                redirect, node_id, val_state, FsOp.WRITE
                            )
                            try:
                                val_state.fs.read_file(node_id)
                            except FsContradiction as exc:
                                val_state.warn(
                                    Diagnostic(
                                        code="always-fails",
                                        message=f"input redirection can never "
                                        f"succeed: {exc}",
                                        severity=Severity.ERROR,
                                        pos=redirect.target.pos,
                                        always=True,
                                    )
                                )
                        next_states.append(val_state)
                states = next_states
            # <&, >&, <>, heredocs: no fs consequences we track
        return states

    def _check_clobbers_input(
        self,
        redirect: Redirect,
        node_id: int,
        state: SymState,
        prior_op: "FsOp",
    ) -> None:
        """Warn when a truncating output redirect targets a file the same
        command also uses as input (``grep foo file > file``): the shell
        opens and truncates the output file *before* the command runs, so
        the input is destroyed.

        ``prior_op`` is the conflicting event kind already on the trace:
        a READ when processing an output redirect, a WRITE when
        processing an input one (covering both orderings of
        ``< file > file``).
        """
        log = state.fs.log
        origin = log.origin
        if origin is None:
            return
        for event in reversed(log.events):
            if event.origin is not origin:
                # this command's events form the tail of the trace
                break
            if event.op is prior_op and event.node == node_id:
                path = redirect.target.literal_text() or event.path or "the file"
                state.warn(
                    Diagnostic(
                        code="redirect-clobbers-input",
                        message=(
                            f"output redirection truncates {path!r}, which "
                            "is also this command's input; the shell opens "
                            "the output file before the command reads it"
                        ),
                        severity=Severity.WARNING,
                        pos=redirect.target.pos,
                        always=True,
                        related=(f"input read by {origin.describe()}",),
                    )
                )
                return

    # -- composition ---------------------------------------------------------------------

    def eval_pipeline(self, node: Pipeline, state: SymState) -> List[SymState]:
        if len(node.commands) == 1:
            results = self.eval(node.commands[0], state)
            if node.negated:
                for result in results:
                    result.status = (
                        None
                        if result.status is None
                        else (1 if result.status == 0 else 0)
                    )
            return results

        # stream-type analysis over the stages with static argv
        argvs = []
        static = True
        for stage in node.commands:
            argv = _static_argv(stage)
            if argv is None:
                static = False
                break
            argvs.append(argv)
        output_type: Optional[StreamType] = None
        if static:
            overrides = None
            if self.signature_overrides:
                overrides = []
                for argv in argvs:
                    sig = self.signature_overrides.get(
                        " ".join(argv)
                    ) or self.signature_overrides.get(argv[0])
                    overrides.append(sig)
            self._rec.count("rtypes.pipeline_checks")
            types = check_pipeline(argvs, signatures=overrides)
            for checker in self.checkers:
                checker.on_pipeline(state, node, types.issues)
            output_type = types.output

        # effects: thread states through each stage, discarding stdout of
        # all but the last stage
        states = [state]
        for idx, stage in enumerate(node.commands):
            next_states: List[SymState] = []
            for st in states:
                saved_stdout = list(st.stdout)
                st.stdout = []
                for result in self.eval(stage, st):
                    result.stdout = saved_stdout
                    next_states.append(result)
            states = self._prune(next_states)

        for result in states:
            if output_type is not None:
                result.emit_stream(output_type)
            else:
                vid = result.store.fresh(label="pipeline-output")
                result.emit_text(SymString.var(vid))
            if node.negated and result.status is not None:
                result.status = 1 if result.status == 0 else 0
        return states

    def eval_andor(self, node: AndOr, state: SymState) -> List[SymState]:
        left_states = self._eval_condition(node.left, state)
        results: List[SymState] = []
        for left in left_states:
            if left.halted:
                results.append(left)
                continue
            success = left.succeeded()
            run_right = (success is True) if node.op == "&&" else (success is False)
            if success is None:
                ok = self._fork(left, f"{node.op}: left succeeded")
                ok.status = 0
                fail = self._fork(left, f"{node.op}: left failed")
                fail.status = 1
                branches = [ok, fail]
            else:
                branches = [left]
            for branch in branches:
                branch_success = branch.succeeded()
                take_right = (
                    (branch_success is True)
                    if node.op == "&&"
                    else (branch_success is False)
                )
                if take_right:
                    results.extend(self.eval(node.right, branch))
                else:
                    results.append(branch)
        return results

    def eval_sequence(self, node: SeqNode, state: SymState) -> List[SymState]:
        states = [state]
        for command in node.commands:
            if states and all(st.halted for st in states):
                # every world already exited: the rest is dead code
                pos = getattr(command, "pos", None)
                diag = Diagnostic(
                    code="unreachable-command",
                    message="this command is unreachable: every execution "
                    "path has already exited",
                    severity=Severity.WARNING,
                    pos=pos,
                    always=True,
                )
                if not any(
                    d.code == "unreachable-command" and str(d.pos) == str(pos)
                    for d in states[0].diagnostics
                ):
                    states[0].warn(diag)
                break
            states = self.eval_many(command, states)
            if self._cond_depth == 0:
                for st in states:
                    # set -e: a failing command (outside any condition
                    # context) aborts the script
                    if (
                        not st.halted
                        and "e" in st.options
                        and st.status is not None
                        and st.status != 0
                    ):
                        st.halted = True
                        st.note("set -e: aborted on failure")
        return states

    def eval_background(self, node: Background, state: SymState) -> List[SymState]:
        # the child runs in a subshell: its effects may happen (and are
        # recorded, tagged with a fresh region so the hazard analysis
        # knows where they may interleave), but none of its shell state —
        # variables, cwd, `exit` — reaches the parent, which continues
        # immediately with status 0
        self._rec.count("effects.background_jobs")
        self._region_counter += 1
        region = self._region_counter
        origin = self._origin_for(node.command)
        saved = (
            dict(state.env),
            list(state.params),
            state.argv_unknown,
            state.argc_sym,
            dict(state.functions),
            state.cwd_node,
            state.cwd_str,
            state.halted,
            set(state.options),
            state.bg_jobs,
            state.bg_launched,
            state.loop_control,
        )
        state.loop_control = None
        job = BgJob(
            number=state.bg_launched + 1,
            region=region,
            label=origin.label,
            pos=origin.pos,
        )
        log = state.fs.log
        log.open_region(region, label=origin.label, origin=origin)
        prev_task = log.task
        log.task = region
        saved_depth = self.loop_depth
        self.loop_depth = 0
        try:
            results = self.eval(node.command, state)
        finally:
            self.loop_depth = saved_depth
        for result in results:
            result.fs.log.task = prev_task
            (
                env,
                params,
                argv_unknown,
                argc_sym,
                functions,
                cwd_node,
                cwd_str,
                halted,
                options,
                jobs,
                launched,
                loop_control,
            ) = saved
            result.env = dict(env)
            result.params = list(params)
            result.argv_unknown = argv_unknown
            result.argc_sym = argc_sym
            result.functions = dict(functions)
            result.cwd_node = cwd_node
            result.cwd_str = cwd_str
            result.halted = halted
            result.options = set(options)
            result.bg_jobs = jobs + (job,)
            result.bg_launched = launched + 1
            result.loop_control = loop_control
            result.status = 0
        return results

    def eval_subshell(self, node: Subshell, state: SymState) -> List[SymState]:
        child = self._fork(state, "subshell")
        # break/continue cannot cross the process boundary
        child.loop_control = None
        saved_depth = self.loop_depth
        self.loop_depth = 0
        try:
            subs = self.eval(node.body, child)
        finally:
            self.loop_depth = saved_depth
        results = []
        for sub in subs:
            sub.env = dict(state.env)
            sub.params = list(state.params)
            sub.argv_unknown = state.argv_unknown
            sub.argc_sym = state.argc_sym
            sub.functions = dict(state.functions)
            sub.cwd_node = state.cwd_node
            sub.cwd_str = state.cwd_str
            sub.halted = state.halted
            sub.bg_jobs = state.bg_jobs
            sub.bg_launched = state.bg_launched
            sub.loop_control = state.loop_control
            results.append(sub)
        return self._apply_redirect_list(node.redirects, results, owner=node)

    # -- control flow ---------------------------------------------------------------------

    def _fork_on_status(
        self, states: List[SymState], note: str
    ) -> Tuple[List[SymState], List[SymState]]:
        """Split states into (success, failure), forking unknowns."""
        success, failure = [], []
        for st in states:
            if st.halted:
                failure.append(st)  # halted states flow to the join
                continue
            outcome = st.succeeded()
            if outcome is True:
                success.append(st)
            elif outcome is False:
                failure.append(st)
            else:
                ok = self._fork(st, f"{note}: success")
                ok.status = 0
                bad = self._fork(st, f"{note}: failure")
                bad.status = 1
                success.append(ok)
                failure.append(bad)
        return success, failure

    def _eval_condition(self, node: Command, state: SymState) -> List[SymState]:
        self._cond_depth += 1
        try:
            return self.eval(node, state)
        finally:
            self._cond_depth -= 1

    def eval_if(self, node: If, state: SymState) -> List[SymState]:
        cond_states = self._eval_condition(node.cond, state)
        success, failure = self._fork_on_status(cond_states, "if-condition")
        results: List[SymState] = []
        for st in success:
            results.extend(self.eval(node.then, st) if not st.halted else [st])

        pending = [st for st in failure if not st.halted]
        results.extend(st for st in failure if st.halted)
        for clause in node.elifs:
            next_pending: List[SymState] = []
            for st in pending:
                cond_states = self._eval_condition(clause.cond, st)
                ok, bad = self._fork_on_status(cond_states, "elif-condition")
                for s in ok:
                    results.extend(self.eval(clause.then, s) if not s.halted else [s])
                next_pending.extend(bad)
            pending = next_pending
        if node.else_ is not None:
            for st in pending:
                results.extend(self.eval(node.else_, st) if not st.halted else [st])
        else:
            for st in pending:
                st.status = 0
                results.append(st)
        return self._apply_redirect_list(node.redirects, results, owner=node)

    def _route_loop_results(
        self,
        states: List[SymState],
        next_iteration: List[SymState],
        exits: List[SymState],
    ) -> List[SymState]:
        """Consume one level of pending break/continue at a loop boundary.

        States carrying no signal are returned (plain fall-through);
        ``continue`` states go to ``next_iteration``; ``break`` states go
        to ``exits``; multi-level signals decrement and keep propagating
        outward via ``exits``.
        """
        plain: List[SymState] = []
        for st in states:
            control = st.loop_control
            if control is None:
                plain.append(st)
                continue
            kind, level = control
            if level > 1:
                st.loop_control = (kind, level - 1)
                exits.append(st)
            elif kind == "break":
                st.loop_control = None
                exits.append(st)
            else:  # continue: back to the condition / next value
                st.loop_control = None
                next_iteration.append(st)
        return plain

    def eval_while(self, node: While, state: SymState) -> List[SymState]:
        exits: List[SymState] = []
        current = [state]
        self.loop_depth += 1
        try:
            for iteration in range(self.max_loop + 1):
                next_current: List[SymState] = []
                for st in current:
                    cond_states = self._route_loop_results(
                        self._eval_condition(node.cond, st), next_current, exits
                    )
                    success, failure = self._fork_on_status(
                        cond_states, "loop-condition"
                    )
                    if node.until:
                        success, failure = failure, success
                    exits.extend(failure)
                    if iteration < self.max_loop:
                        for s in success:
                            if s.halted:
                                exits.append(s)
                            else:
                                next_current.extend(
                                    self._route_loop_results(
                                        self.eval(node.body, s),
                                        next_current,
                                        exits,
                                    )
                                )
                    else:
                        # iteration budget exhausted: assume the loop ends
                        for s in success:
                            s.note("loop truncated at iteration bound")
                            exits.append(s)
                current = self._prune(next_current)
                if not current:
                    break
            for st in current:
                # a `continue` raised on the final budgeted iteration
                st.note("loop truncated at iteration bound")
                exits.append(st)
        finally:
            self.loop_depth -= 1
        for st in exits:
            if st.status is None:
                st.status = 0
        return self._apply_redirect_list(node.redirects, exits, owner=node)

    def eval_for(self, node: For, state: SymState) -> List[SymState]:
        # `for x` / `for x in "$@"` over an unknown argv: the known prefix
        # iterates concretely, then the unknown tail is explored as an
        # open-ended loop (zero or more further unknown values)
        open_tail = state.argv_unknown and (
            node.words is None or _is_bare_at(node.words)
        )
        if node.words is None or (open_tail and _is_bare_at(node.words)):
            values_per_state = [(state, list(state.params[1:]))]
        else:
            values_per_state = expand_words(node.words, state, self)
        results: List[SymState] = []
        self.loop_depth += 1
        try:
            for st, values in values_per_state:
                states = [st]
                exited: List[SymState] = []
                if not values and not open_tail:
                    for s in states:
                        s.status = 0
                    results.extend(states)
                    continue
                for value in values[: self.max_loop + 1]:
                    next_states: List[SymState] = []
                    for s in states:
                        if s.halted:
                            next_states.append(s)
                            continue
                        s.set_var(node.var, value)
                        next_states.extend(
                            self._route_loop_results(
                                self.eval(node.body, s), next_states, exited
                            )
                        )
                    states = self._prune(next_states)
                    if not states:
                        break
                if open_tail:
                    states = self._eval_open_tail(
                        node, states, exited, had_known=bool(values)
                    )
                results.extend(states)
                results.extend(exited)
        finally:
            self.loop_depth -= 1
        return self._apply_redirect_list(node.redirects, results, owner=node)

    def _eval_open_tail(
        self,
        node: For,
        states: List[SymState],
        exited: List[SymState],
        had_known: bool,
    ) -> List[SymState]:
        """Iterate a ``for`` body over the *unknown* tail of ``"$@"``:
        each round forks "the tail ends here" from "one more unknown
        value", bounded by ``max_loop`` like every other loop."""
        finished: List[SymState] = []
        pending = states
        for round_idx in range(self.max_loop + 1):
            next_pending: List[SymState] = []
            for s in pending:
                if s.halted:
                    finished.append(s)
                    continue
                stop = self._fork(s, "for: $@ tail ends here")
                if not had_known and round_idx == 0:
                    # zero iterations total: `for` exits with status 0
                    stop.status = 0
                finished.append(stop)
                if round_idx == self.max_loop:
                    s.note("loop truncated at iteration bound")
                    finished.append(s)
                    continue
                vid = s.store.fresh(label=f"${node.var} (from $@)")
                s.set_var(node.var, SymString.var(vid))
                next_pending.extend(
                    self._route_loop_results(
                        self.eval(node.body, s), next_pending, exited
                    )
                )
            pending = self._prune(next_pending)
            if not pending:
                break
        return finished

    def eval_case(self, node: Case, state: SymState) -> List[SymState]:
        results: List[SymState] = []
        for subj_state, subject in expand_word(node.subject, state, self):
            subject_lang = subject.to_regex(subj_state.store)
            remaining = subject_lang
            vid = subject.single_var()
            for item in node.items:
                pattern_lang: Optional[Regex] = None
                static = True
                for pattern in item.patterns:
                    lang = word_pattern_to_regex(pattern)
                    if lang is None:
                        static = False
                        break
                    pattern_lang = lang if pattern_lang is None else pattern_lang | lang
                if not static:
                    # dynamic pattern: may or may not match; explore the body
                    taken = self._fork(subj_state, "case: dynamic pattern taken")
                    if item.body is not None:
                        results.extend(self.eval(item.body, taken))
                    else:
                        results.append(taken.with_status(0))
                    continue

                feasible_lang = remaining & pattern_lang
                feasible = not feasible_lang.is_empty()
                for checker in self.checkers:
                    # report against the *original* subject language so a
                    # pattern shadowed by earlier arms is not misreported
                    original_feasible = not (subject_lang & pattern_lang).is_empty()
                    checker.on_case_arm(subj_state, node, item, original_feasible, True)
                if not feasible:
                    continue
                taken = self._fork(
                    subj_state,
                    f"case: matched {'|'.join(w.raw for w in item.patterns)}",
                )
                if vid is not None:
                    # the subject matched this arm AND fell through all
                    # earlier arms: refine with the remaining language
                    taken.store.refine(vid, feasible_lang)
                if item.body is not None:
                    results.extend(self.eval(item.body, taken))
                else:
                    results.append(taken.with_status(0))
                remaining = remaining - pattern_lang
                if remaining.is_empty():
                    break
            if not remaining.is_empty():
                fallthrough = self._fork(subj_state, "case: no pattern matched")
                if vid is not None:
                    fallthrough.store.refine(vid, remaining)
                fallthrough.status = 0
                results.append(fallthrough)
        return self._apply_redirect_list(node.redirects, results, owner=node)

    # -- state management -----------------------------------------------------------------

    def _prune(self, states: List[SymState]) -> List[SymState]:
        if len(states) <= 1:
            return states
        if self._budget is not None:
            # merge points are where wide fan-outs concentrate: re-check
            # the wall clock even between eval charges
            self._budget.check_deadline("symex")
        if self.prune:
            merged: Dict[tuple, SymState] = {}
            order: List[SymState] = []
            for st in states:
                key = (
                    st.status,
                    st.halted,
                    tuple(sorted((k, v) for k, v in st.env.items())),
                    tuple(st.params),
                    st.cwd_str,
                    len(st.stdout) if st.capturing else 0,
                    st.store.identity_key(),
                    st.bg_jobs,
                    st.loop_control,
                    st.argv_unknown,
                    # function bindings are state too: a path that redefined
                    # a function must not merge with one that kept the old
                    # body, or the redefinition silently vanishes at the
                    # next call site
                    tuple(
                        sorted((n, id(b)) for n, b in st.functions.items())
                    ),
                )
                if key in merged:
                    self.paths_merged += 1
                    self._rec.count("symex.states_merged")
                    # keep the first; append its diagnostics so none are lost
                    merged[key].diagnostics.extend(
                        d for d in st.diagnostics
                        if d not in merged[key].diagnostics
                    )
                else:
                    merged[key] = st
                    order.append(st)
            states = order
        if len(states) > self.max_fork:
            dropped = len(states) - self.max_fork
            self.truncations += 1
            rec = self._rec
            rec.count("symex.truncations")
            rec.count("symex.states_truncated", dropped)
            if rec.enabled:
                rec.observe("symex.truncation_drop", dropped)
            states = states[: self.max_fork]
        return states


class _DiagSink:
    """A state-like receiver for run-level (cross-path) diagnostics."""

    def __init__(self):
        self.diagnostics: List[Diagnostic] = []

    def warn(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)


def _assigned_names(ast: Command) -> set:
    """Names assigned anywhere in a script (incl. for vars, read/export)."""
    from ..shell.ast import For, walk

    names = set()
    for node in walk(ast):
        if isinstance(node, SimpleCommand):
            for assignment in node.assignments:
                names.add(assignment.name)
            if node.name in ("read", "export", "local", "readonly", "unset") and node.words:
                for word in node.words[1:]:
                    text = word.literal_text() or ""
                    if text and not text.startswith("-"):
                        names.add(text.split("=", 1)[0])
            if node.name == "getopts" and len(node.words) >= 3:
                var = node.words[2].literal_text()
                if var:
                    names.add(var)
                names.update(("OPTARG", "OPTIND"))
        elif isinstance(node, For):
            names.add(node.var)
    return names


def _is_bare_at(words: Sequence[Word]) -> bool:
    """True for a word list that is exactly ``"$@"`` / ``$@`` / ``"$*"``
    — i.e. iterating the positional parameters themselves."""
    if len(words) != 1 or len(words[0].parts) != 1:
        return False
    part = words[0].parts[0]
    return (
        isinstance(part, ParamPart)
        and part.name in ("@", "*")
        and part.op is None
    )


def _static_argv(stage: Command) -> Optional[List[str]]:
    """The concrete argv of a pipeline stage, when fully static."""
    if not isinstance(stage, SimpleCommand):
        return None
    argv = []
    for word in stage.words:
        # a purely literal word (quotes removed) is static
        text_parts = []
        for part in word.parts:
            from ..shell.ast import LiteralPart

            if isinstance(part, LiteralPart):
                text_parts.append(part.text)
            else:
                return None
        argv.append("".join(text_parts))
    return argv if argv else None
