"""Dangerous-deletion criterion: the Steam-bug class (paper §2).

A deletion is *dangerous* when the set of paths the operand may denote
includes the root, a direct child of the root, or a dot-normalised
equivalent — i.e. ``rm -fr`` may run against ``/*``.  The check is
performed on the operand's regular language, so it is robust to
semantically-equivalent syntactic variants like ``c="/*"; rm -fr
$STEAMROOT$c`` (§3).
"""

from __future__ import annotations

from typing import List, Optional

from ..diag import Diagnostic, Severity
from ..rlang import Regex
from ..shell.ast import SimpleCommand
from ..symstr import SymString
from .base import Checker

#: Paths that touch the root when deleted: "/", "//", "/x", "/./x",
#: "/../x", ... (a leading run of slashes and dot segments followed by at
#: most one real segment, optionally followed by trailing slashes and dot
#: segments — ``rm -rf /opt/`` and ``rm -rf /opt/..`` are just as fatal
#: as ``rm -rf /opt``).
DANGER_PATTERN = r"/+((\.{1,2})/+)*(\.{1,2}|[^/\n]*)(/+(\.{1,2})?)*"

#: Home-directory deletions: ~ or $HOME directly.
HOME_PATTERN = r"/home/[^/\n]+/?|/root/?"

_danger: Optional[Regex] = None
_home: Optional[Regex] = None


def danger_language() -> Regex:
    global _danger
    if _danger is None:
        _danger = Regex.compile(DANGER_PATTERN)
    return _danger


def home_language() -> Regex:
    global _home
    if _home is None:
        _home = Regex.compile(HOME_PATTERN)
    return _home


class DangerousDeletionChecker(Checker):
    name = "dangerous-deletion"

    def __init__(self, include_home: bool = True):
        self.include_home = include_home

    def on_delete(
        self,
        state,
        node: SimpleCommand,
        operand: SymString,
        recursive: bool,
    ) -> None:
        lang = operand.to_regex(state.store)
        if lang.is_empty():
            return

        danger = danger_language()
        overlap = lang & danger
        if not overlap.is_empty():
            witness = overlap.example() or ""
            always = lang <= danger
            state.warn(
                Diagnostic(
                    code="dangerous-deletion",
                    message=(
                        f"deletion target {operand.describe(state.store)!r} can "
                        f"resolve inside the file-system root"
                        + (" (recursively)" if recursive else "")
                    ),
                    severity=Severity.ERROR,
                    pos=node.pos,
                    always=always,
                    witness=witness,
                )
            )
            return

        if self.include_home and not operand.has_glob():
            # `dir/*` deletes dir's children, never dir itself; only a
            # glob-free operand can denote a home directory as a whole
            overlap = lang & home_language()
            if not overlap.is_empty() and not lang.is_finite():
                # a *symbolic* operand that may be exactly a home directory
                state.warn(
                    Diagnostic(
                        code="home-deletion",
                        message=(
                            f"deletion target {operand.describe(state.store)!r} "
                            "may be an entire home directory"
                        ),
                        severity=Severity.INFO,
                        pos=node.pos,
                        witness=overlap.example() or "",
                    )
                )
