"""Platform-compatibility criterion (paper §5 "Correctness").

A script written on one platform may use flags absent on another (GNU
``sed -i`` vs BSD, ``readlink -f`` on macOS, ...).  Given a set of
*deployment targets*, warn about every invocation using a flag the spec
marks unavailable there.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..diag import Diagnostic, Severity
from ..shell.ast import SimpleCommand
from .base import Checker, concrete_flags


class PlatformChecker(Checker):
    name = "platform"

    def __init__(self, targets: Sequence[str] = ("linux", "macos")):
        self.targets = list(targets)

    def on_command(self, state, node: SimpleCommand, argv, spec) -> None:
        if spec is None or not spec.platform_flags:
            return
        used_flags = set(concrete_flags(argv, spec))
        for flag in sorted(used_flags):
            platforms = spec.platform_flags.get(flag)
            if platforms is None:
                continue
            missing = [t for t in self.targets if t not in platforms]
            for target in missing:
                state.warn(
                    Diagnostic(
                        code="platform-flag",
                        message=(
                            f"{spec.name} {flag} is not available on "
                            f"{target}; this script is not portable there"
                        ),
                        severity=Severity.WARNING,
                        pos=node.pos,
                        source="platform",
                    )
                )
