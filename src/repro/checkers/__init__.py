"""The incorrectness-criteria catalog (paper §4)."""

from .base import Checker
from .deletion import DangerousDeletionChecker, danger_language, home_language
from .idempotence import IdempotenceChecker
from .platform import PlatformChecker
from .streams import AlwaysFailsChecker, DeadCaseChecker, StreamTypeChecker


def default_checkers(platform_targets=None, races=True, isolate=True):
    """The standard catalog used by the analyzer.

    With ``isolate`` (the default) every checker is wrapped in a
    fault-isolation proxy: a crashing criterion yields an
    ``internal-error`` diagnostic and is disabled for the rest of the
    run instead of aborting the file (see
    :mod:`repro.analysis.resilience`).
    """
    checkers = [
        DangerousDeletionChecker(),
        StreamTypeChecker(),
        DeadCaseChecker(),
        AlwaysFailsChecker(),
        IdempotenceChecker(),
    ]
    if races:
        # imported lazily: the race checker lives in the analysis layer,
        # which itself imports this package
        from ..analysis.effects import RaceChecker

        checkers.append(RaceChecker())
    if platform_targets:
        checkers.append(PlatformChecker(platform_targets))
    if isolate:
        from ..analysis.resilience import guard_checkers

        checkers = guard_checkers(checkers)
    return checkers


__all__ = [
    "Checker",
    "default_checkers",
    "DangerousDeletionChecker",
    "StreamTypeChecker",
    "DeadCaseChecker",
    "AlwaysFailsChecker",
    "IdempotenceChecker",
    "PlatformChecker",
    "danger_language",
    "home_language",
]
