"""The incorrectness-criteria catalog (paper §4)."""

from .base import Checker
from .deletion import DangerousDeletionChecker, danger_language, home_language
from .idempotence import IdempotenceChecker
from .platform import PlatformChecker
from .streams import AlwaysFailsChecker, DeadCaseChecker, StreamTypeChecker


def default_checkers(platform_targets=None, races=True):
    """The standard catalog used by the analyzer."""
    checkers = [
        DangerousDeletionChecker(),
        StreamTypeChecker(),
        DeadCaseChecker(),
        AlwaysFailsChecker(),
        IdempotenceChecker(),
    ]
    if races:
        # imported lazily: the race checker lives in the analysis layer,
        # which itself imports this package
        from ..analysis.effects import RaceChecker

        checkers.append(RaceChecker())
    if platform_targets:
        checkers.append(PlatformChecker(platform_targets))
    return checkers


__all__ = [
    "Checker",
    "default_checkers",
    "DangerousDeletionChecker",
    "StreamTypeChecker",
    "DeadCaseChecker",
    "AlwaysFailsChecker",
    "IdempotenceChecker",
    "PlatformChecker",
    "danger_language",
    "home_language",
]
