"""Checker interface: incorrectness criteria observing symbolic execution.

Paper §4 "incorrectness criteria": there is no single definition of a
buggy shell script, so the analyzer hosts a *catalog* of criteria, each
implemented as a checker that observes engine events (command
applications, deletions, case dispatch, pipeline typing, contradictions)
and emits diagnostics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..diag import Diagnostic
from ..shell.ast import Case, CaseItem, Command, Pipeline, SimpleCommand, Word
from ..symstr import SymString

if TYPE_CHECKING:
    from ..specs.ir import CommandSpec, Invocation
    from ..symex.state import SymState


def concrete_flags(argv: List[SymString], spec: Optional["CommandSpec"]) -> List[str]:
    """The flags of a symbolic argv, respecting value-taking options
    (``date -v -1d`` uses one flag, not three)."""
    flags: List[str] = []
    idx = 1
    while idx < len(argv):
        concrete = argv[idx].concrete_value()
        if concrete == "--":
            break
        if concrete is None or not concrete.startswith("-") or concrete == "-":
            idx += 1
            continue
        if concrete.startswith("--"):
            key = concrete.split("=", 1)[0]
            flags.append(key)
            if spec is not None and spec.long_options.get(key[2:]) and "=" not in concrete:
                idx += 1
        else:
            jdx = 1
            while jdx < len(concrete):
                char = concrete[jdx]
                flags.append("-" + char)
                if spec is not None and spec.options.get(char):
                    if jdx + 1 >= len(concrete):
                        idx += 1  # the value is the next word
                    break
                jdx += 1
        idx += 1
    return flags


class Checker:
    """Base class; override the hooks you care about."""

    name = "checker"

    def on_command(
        self,
        state: "SymState",
        node: SimpleCommand,
        argv: List[SymString],
        spec: Optional["CommandSpec"],
    ) -> None:
        """Called for every simple command before effects are applied."""

    def on_delete(
        self,
        state: "SymState",
        node: SimpleCommand,
        operand: SymString,
        recursive: bool,
    ) -> None:
        """Called when a command is about to delete ``operand``."""

    def on_case_arm(
        self,
        state: "SymState",
        node: Case,
        item: CaseItem,
        feasible: bool,
        static_pattern: bool,
    ) -> None:
        """Called per case arm with its feasibility."""

    def on_always_fails(
        self, state: "SymState", node: SimpleCommand, reason: str
    ) -> None:
        """Called when a command's success clauses all contradict facts."""

    def on_pipeline(self, state: "SymState", node: Pipeline, issues) -> None:
        """Called with the stream-typing issues of a pipeline."""

    def finish(self, states: Sequence["SymState"]) -> List[Diagnostic]:
        """Called once after exploration; may emit whole-program findings."""
        return []
