"""Idempotence criterion (paper §4, citing the CoLiS project [15]).

Installation scripts should be safely re-runnable.  Commands that
succeed on the first run and fail on the second — `mkdir` without `-p`,
`ln -s` without `-f` — are idempotence hazards.  The engine's fs model
additionally catches the stronger form (a second run *within* the same
script, e.g. two `mkdir X`) as an always-fails contradiction.
"""

from __future__ import annotations

from typing import List, Optional

from ..diag import Diagnostic, Severity
from ..shell.ast import SimpleCommand
from .base import Checker

#: (command, flag that makes it idempotent, flags that exempt)
_HAZARDS = {
    "mkdir": ("-p", "re-running fails because the directory already exists"),
    "ln": ("-f", "re-running fails because the link target already exists"),
}


class IdempotenceChecker(Checker):
    name = "idempotence"

    def on_command(self, state, node: SimpleCommand, argv, spec) -> None:
        name = node.name
        if name not in _HAZARDS:
            return
        needed_flag, reason = _HAZARDS[name]
        flags = {
            value
            for value in (a.concrete_value() for a in argv[1:])
            if value and value.startswith("-")
        }
        flagchars = set("".join(f[1:] for f in flags if not f.startswith("--")))
        if needed_flag.lstrip("-") in flagchars:
            return
        state.warn(
            Diagnostic(
                code="idempotence",
                message=(
                    f"{name} without {needed_flag} is not idempotent: {reason}"
                ),
                severity=Severity.INFO,
                pos=node.pos,
            )
        )
