"""Idempotence criterion (paper §4, citing the CoLiS project [15]).

Installation scripts should be safely re-runnable.  Commands that
succeed on the first run and fail on the second — `mkdir` without `-p`,
`ln -s` without `-f` — are idempotence hazards.  The engine's fs model
additionally catches the stronger form (a second run *within* the same
script, e.g. two `mkdir X`) as an always-fails contradiction.
"""

from __future__ import annotations

from typing import List, Optional

from ..diag import Diagnostic, Severity
from ..fs import Existence, NodeKind, parse_sympath
from ..shell.ast import SimpleCommand
from .base import Checker

#: (command, flag that makes it idempotent, flags that exempt)
_HAZARDS = {
    "mkdir": ("-p", "re-running fails because the directory already exists"),
    "ln": ("-f", "re-running fails because the link target already exists"),
}


class IdempotenceChecker(Checker):
    name = "idempotence"

    def on_command(self, state, node: SimpleCommand, argv, spec) -> None:
        name = node.name
        if name not in _HAZARDS:
            return
        needed_flag, reason = _HAZARDS[name]
        flags = {
            value
            for value in (a.concrete_value() for a in argv[1:])
            if value and value.startswith("-")
        }
        flagchars = set("".join(f[1:] for f in flags if not f.startswith("--")))
        if needed_flag.lstrip("-") in flagchars:
            return
        if self._guarded(state, name, argv):
            return
        state.warn(
            Diagnostic(
                code="idempotence",
                message=(
                    f"{name} without {needed_flag} is not idempotent: {reason}"
                ),
                severity=Severity.INFO,
                pos=node.pos,
            )
        )

    def _guarded(self, state, name: str, argv) -> bool:
        """Is the creation guarded by an established-absence check?

        ``[ -d X ] || mkdir X`` is re-run-safe: on this path the fs model
        has recorded X as ABSENT (an ``[ -e X ]`` guard failed, or a
        prior ``rm`` removed it) or as not-a-DIR (a failed ``[ -d X ]``),
        and a *second* run of the whole script takes the guard's other
        branch instead of re-creating.  The denied-kind case is sound
        for the idempotence question: in the world where X exists as
        some *other* kind, the creation already fails on the first run —
        there is no succeed-then-fail hazard.  Only fires when every
        creation target carries such a fact; UNKNOWN targets keep the
        warning.
        """
        created_kind = NodeKind.DIR if name == "mkdir" else NodeKind.SYMLINK
        targets = [
            a for a in argv[1:]
            if not ((a.concrete_value() or "").startswith("-"))
        ]
        if name == "ln" and len(targets) >= 2:
            targets = targets[-1:]  # only the link name is created
        if not targets:
            return False
        for operand in targets:
            path = parse_sympath(operand)
            if path is None:
                return False
            node_id = state.fs.resolve(path, cwd=state.cwd_node)
            if node_id is None:
                return False
            if state.fs.existence(node_id) is Existence.ABSENT:
                continue
            if state.fs.kind_denied(node_id, created_kind):
                continue
            return False
        return True
