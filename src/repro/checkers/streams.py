"""Stream-content criteria: dead filters, type mismatches, untyped gaps.

Covers the Fig. 5 class of bug (a filter whose intersection with its
input's type is the empty language) and the §4 polymorphic-type checks.
"""

from __future__ import annotations

from ..diag import Diagnostic, Severity
from ..rtypes import StageIssueKind
from ..shell.ast import Case, CaseItem, Pipeline
from .base import Checker


class StreamTypeChecker(Checker):
    name = "stream-types"

    def on_pipeline(self, state, node: Pipeline, issues) -> None:
        for issue in issues:
            if issue.kind is StageIssueKind.DEAD_STREAM:
                state.warn(
                    Diagnostic(
                        code="dead-stream",
                        message=issue.message,
                        severity=Severity.ERROR,
                        pos=node.pos,
                        always=True,
                        source="types",
                    )
                )
            elif issue.kind is StageIssueKind.TYPE_ERROR:
                state.warn(
                    Diagnostic(
                        code="stream-type-error",
                        message=issue.message,
                        severity=Severity.WARNING,
                        pos=node.pos,
                        source="types",
                    )
                )
            elif issue.kind is StageIssueKind.UNTYPED:
                state.warn(
                    Diagnostic(
                        code="untyped-command",
                        message=issue.message,
                        severity=Severity.INFO,
                        pos=node.pos,
                        source="types",
                    )
                )


class DeadCaseChecker(Checker):
    """A `case` arm whose pattern cannot match any possible subject."""

    name = "dead-case"

    def on_case_arm(
        self, state, node: Case, item: CaseItem, feasible: bool, static_pattern: bool
    ) -> None:
        if feasible or not static_pattern:
            return
        patterns = " | ".join(w.raw for w in item.patterns)
        state.warn(
            Diagnostic(
                code="dead-case-branch",
                message=(
                    f"case pattern {patterns!r} can never match the subject; "
                    "this arm is dead"
                ),
                severity=Severity.WARNING,
                pos=node.pos,
                always=True,
                source="types",
            )
        )


class AlwaysFailsChecker(Checker):
    """§4: a command whose success preconditions contradict established
    file-system facts (e.g. `cat $1/config` after `rm -fr $1`)."""

    name = "always-fails"

    def on_always_fails(self, state, node, reason: str) -> None:
        name = node.name or "<command>"
        state.warn(
            Diagnostic(
                code="always-fails",
                message=f"{name} can never succeed here: {reason}",
                severity=Severity.ERROR,
                pos=node.pos,
                always=True,
            )
        )
