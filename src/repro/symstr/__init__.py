"""Symbolic string values and their regular-language constraints."""

from .ops import ExpansionCase, strip_prefix, strip_suffix
from .store import ConstraintStore
from .value import Atom, GlobAtom, LitAtom, SymString, VarAtom

__all__ = [
    "SymString",
    "LitAtom",
    "VarAtom",
    "GlobAtom",
    "Atom",
    "ConstraintStore",
    "ExpansionCase",
    "strip_suffix",
    "strip_prefix",
]
