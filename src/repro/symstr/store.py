"""Constraint store: symbolic string variables and their refinements.

Each symbolic variable is an integer id with a regular-language
constraint describing its possible values (paper §3: "generate and track
relevant constraints on state").  Stores are forked cheaply when symbolic
execution branches; refinement narrows a variable's constraint along one
path without affecting sibling paths.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..rlang import Regex

_ids = itertools.count(1)

#: Provenance tags record how a derived variable was computed, enabling
#: relational refinement (e.g. a branch on ``$(realpath X)`` refines X).
Provenance = Tuple[str, object]


class ConstraintStore:
    """Mapping var-id -> (constraint, label, provenance), fork-friendly."""

    __slots__ = ("_constraints", "_labels", "_provenance")

    def __init__(
        self,
        constraints: Optional[Dict[int, Regex]] = None,
        labels: Optional[Dict[int, str]] = None,
        provenance: Optional[Dict[int, Provenance]] = None,
    ):
        self._constraints: Dict[int, Regex] = dict(constraints or {})
        self._labels: Dict[int, str] = dict(labels or {})
        self._provenance: Dict[int, Provenance] = dict(provenance or {})

    def fork(self) -> "ConstraintStore":
        return ConstraintStore(self._constraints, self._labels, self._provenance)

    def fresh(
        self,
        constraint: Optional[Regex] = None,
        label: str = "",
        provenance: Optional[Provenance] = None,
    ) -> int:
        vid = next(_ids)
        self._constraints[vid] = (
            constraint if constraint is not None else Regex.any_string()
        )
        if label:
            self._labels[vid] = label
        if provenance is not None:
            self._provenance[vid] = provenance
        return vid

    def constraint(self, vid: int) -> Regex:
        return self._constraints[vid]

    def label(self, vid: int) -> str:
        return self._labels.get(vid, f"v{vid}")

    def provenance(self, vid: int) -> Optional[Provenance]:
        return self._provenance.get(vid)

    def refine(self, vid: int, constraint: Regex) -> Regex:
        """Intersect a variable's constraint; returns the new constraint.

        An empty result means the current path is infeasible — callers
        check :meth:`is_feasible` after refining.
        """
        refined = self._constraints[vid] & constraint
        self._constraints[vid] = refined
        return refined

    def exclude(self, vid: int, constraint: Regex) -> Regex:
        """Subtract a language from a variable's constraint."""
        refined = self._constraints[vid] - constraint
        self._constraints[vid] = refined
        return refined

    def is_feasible(self, vid: int) -> bool:
        return not self._constraints[vid].is_empty()

    def __contains__(self, vid: int) -> bool:
        return vid in self._constraints

    def __len__(self) -> int:
        return len(self._constraints)

    def identity_key(self) -> tuple:
        """A cheap digest for state merging: constraint *object identity*
        per variable.  Forked stores share Regex objects until a
        refinement replaces one, so two states merge only when every
        variable carries literally the same constraint object — sound
        (never conflates differently-refined worlds), and precise enough
        because refinements are the only mutations."""
        return tuple(
            (vid, id(constraint))
            for vid, constraint in sorted(self._constraints.items())
        )
