"""Symbolic semantics of the ``${var%pat}`` expansion-operator family.

Concrete values get exact POSIX semantics; symbolic values produce *case
splits*: e.g. ``${0%/*}`` on a path-constrained ``$0`` yields one case
where the suffix matched (result = a quotient-constrained fresh
variable, and ``$0`` is refined to contain a ``/``) and one where it did
not (result unchanged, ``$0`` refined to be slash-free).  This is exactly
the two-outcome analysis the paper walks through for the Steam bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..rlang import Regex
from .store import ConstraintStore
from .value import SymString


@dataclass
class ExpansionCase:
    """One outcome of a symbolic expansion.

    ``refinements`` narrow existing variables in the forked path where
    this case holds; ``note`` documents the case for diagnostics.
    """

    result: SymString
    refinements: List[Tuple[int, Regex]] = field(default_factory=list)
    note: str = ""


_ANY = None  # lazily built Σ*


def _any() -> Regex:
    global _ANY
    if _ANY is None:
        _ANY = Regex.any_string()
    return _ANY


def strip_suffix(
    value: SymString,
    pattern: Regex,
    longest: bool,
    store: ConstraintStore,
) -> List[ExpansionCase]:
    """``${v%pat}`` / ``${v%%pat}``."""
    concrete = value.concrete_value()
    if concrete is not None:
        return [ExpansionCase(SymString.lit(_concrete_suffix(concrete, pattern, longest)))]

    suffixed = _any() + pattern  # Σ*·pat : strings ending in a match
    vid = value.single_var()
    if vid is not None:
        constraint = store.constraint(vid)
        cases = []
        no_match = constraint - suffixed
        if not no_match.is_empty():
            cases.append(
                ExpansionCase(
                    value,
                    refinements=[(vid, no_match)],
                    note="suffix pattern did not match",
                )
            )
        matched = constraint & suffixed
        if not matched.is_empty():
            quotient = matched.strip_suffix(pattern)
            result_vid = store.fresh(
                quotient,
                label=f"{store.label(vid)}%",
                provenance=("strip_suffix", vid),
            )
            cases.append(
                ExpansionCase(
                    SymString.var(result_vid),
                    refinements=[(vid, matched)],
                    note="suffix pattern matched",
                )
            )
        return cases

    # Mixed literal/variable value: a single over-approximating case.
    lang = value.to_regex(store)
    approx = lang.strip_suffix(pattern) | (lang - suffixed)
    result_vid = store.fresh(approx, label="strip%")
    return [ExpansionCase(SymString.var(result_vid), note="over-approximated strip")]


def strip_prefix(
    value: SymString,
    pattern: Regex,
    longest: bool,
    store: ConstraintStore,
) -> List[ExpansionCase]:
    """``${v#pat}`` / ``${v##pat}``."""
    concrete = value.concrete_value()
    if concrete is not None:
        return [ExpansionCase(SymString.lit(_concrete_prefix(concrete, pattern, longest)))]

    prefixed = pattern + _any()
    vid = value.single_var()
    if vid is not None:
        constraint = store.constraint(vid)
        cases = []
        no_match = constraint - prefixed
        if not no_match.is_empty():
            cases.append(
                ExpansionCase(
                    value,
                    refinements=[(vid, no_match)],
                    note="prefix pattern did not match",
                )
            )
        matched = constraint & prefixed
        if not matched.is_empty():
            quotient = matched.strip_prefix(pattern)
            result_vid = store.fresh(
                quotient,
                label=f"{store.label(vid)}#",
                provenance=("strip_prefix", vid),
            )
            cases.append(
                ExpansionCase(
                    SymString.var(result_vid),
                    refinements=[(vid, matched)],
                    note="prefix pattern matched",
                )
            )
        return cases

    lang = value.to_regex(store)
    approx = lang.strip_prefix(pattern) | (lang - prefixed)
    result_vid = store.fresh(approx, label="strip#")
    return [ExpansionCase(SymString.var(result_vid), note="over-approximated strip")]


def _concrete_suffix(text: str, pattern: Regex, longest: bool) -> str:
    """Exact POSIX suffix-strip on a concrete string."""
    if longest:
        indices = range(0, len(text) + 1)  # earliest start = longest suffix
    else:
        indices = range(len(text), -1, -1)  # latest start = smallest suffix
    for idx in indices:
        if pattern.matches(text[idx:]):
            return text[:idx]
    return text


def _concrete_prefix(text: str, pattern: Regex, longest: bool) -> str:
    """Exact POSIX prefix-strip on a concrete string."""
    if longest:
        indices = range(len(text), -1, -1)  # longest prefix first
    else:
        indices = range(0, len(text) + 1)
    for idx in indices:
        if pattern.matches(text[:idx]):
            return text[idx:]
    return text
