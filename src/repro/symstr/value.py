"""Symbolic string values: concatenations of literals and variables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

from ..rlang import Regex
from .store import ConstraintStore


@dataclass(frozen=True)
class LitAtom:
    text: str


@dataclass(frozen=True)
class VarAtom:
    vid: int


@dataclass(frozen=True)
class GlobAtom:
    """An unexpanded pathname-expansion wildcard (``*`` or ``?``).

    In argument position a glob stands for *the matching pathnames*; its
    language contribution is ``[^/]*`` (``*``) or ``[^/]`` (``?``) since
    pathname expansion does not cross ``/`` boundaries.
    """

    char: str


Atom = Union[LitAtom, VarAtom, GlobAtom]


class SymString:
    """An immutable symbolic string: a sequence of atoms.

    The set of possible concrete values is the concatenation of each
    atom's language under a given :class:`ConstraintStore`.
    """

    __slots__ = ("atoms",)

    def __init__(self, atoms: Iterable[Atom] = ()):
        object.__setattr__(self, "atoms", _normalise(atoms))

    def __setattr__(self, name, value):
        raise AttributeError("SymString is immutable")

    # -- constructors --------------------------------------------------------

    @classmethod
    def lit(cls, text: str) -> "SymString":
        return cls([LitAtom(text)] if text else [])

    @classmethod
    def var(cls, vid: int) -> "SymString":
        return cls([VarAtom(vid)])

    @classmethod
    def empty(cls) -> "SymString":
        return cls([])

    # -- structure -------------------------------------------------------------

    def __add__(self, other: "SymString") -> "SymString":
        return SymString(self.atoms + other.atoms)

    def is_concrete(self) -> bool:
        return all(isinstance(a, LitAtom) for a in self.atoms)

    def concrete_value(self) -> Optional[str]:
        if not self.is_concrete():
            return None
        return "".join(a.text for a in self.atoms)

    def variables(self) -> List[int]:
        return [a.vid for a in self.atoms if isinstance(a, VarAtom)]

    def has_glob(self) -> bool:
        return any(isinstance(a, GlobAtom) for a in self.atoms)

    def without_globs(self) -> "SymString":
        """The value with trailing glob atoms removed (e.g. the directory
        part of ``"$X"/*``)."""
        atoms = list(self.atoms)
        while atoms and isinstance(atoms[-1], GlobAtom):
            atoms.pop()
        return SymString(atoms)

    def single_var(self) -> Optional[int]:
        """The variable id when this value is exactly one variable."""
        if len(self.atoms) == 1 and isinstance(self.atoms[0], VarAtom):
            return self.atoms[0].vid
        return None

    # -- semantics ----------------------------------------------------------------

    def to_regex(self, store: ConstraintStore) -> Regex:
        """The language of possible concrete values (a glob contributes
        the language of the names it may expand to).

        Pathname expansion only ever produces *actual directory
        entries*: a ``*``/``?`` at the start of a path component cannot
        match the empty name and does not match a leading dot, so
        ``$X/*`` denotes ``$X/<entry>`` — never bare ``$X/`` and never
        ``$X/.hidden`` or ``$X/..``.  Mid-component globs (``foo*``)
        keep the permissive language (``foo*`` matches ``foo``, and dots
        are only special at the component start).
        """
        result: Optional[Regex] = None
        for index, atom in enumerate(self.atoms):
            if isinstance(atom, LitAtom):
                piece = Regex.literal(atom.text)
            elif isinstance(atom, GlobAtom):
                prev = self.atoms[index - 1] if index else None
                component_start = prev is None or (
                    isinstance(prev, LitAtom) and prev.text.endswith("/")
                )
                if atom.char == "*":
                    pattern = "[^/.\\n][^/\\n]*" if component_start else "[^/\\n]*"
                else:
                    pattern = "[^/.\\n]" if component_start else "[^/\\n]"
                piece = Regex.compile(pattern)
            else:
                piece = store.constraint(atom.vid)
            result = piece if result is None else result + piece
        if result is None:
            return Regex.literal("")
        return result

    def could_equal(self, text: str, store: ConstraintStore) -> bool:
        """May this value equal ``text`` on some feasible assignment?"""
        return self.to_regex(store).matches(text)

    def must_equal(self, text: str, store: ConstraintStore) -> bool:
        value = self.concrete_value()
        if value is not None:
            return value == text
        # A symbolic value must equal `text` when its language is {text}.
        lang = self.to_regex(store)
        return lang == Regex.literal(text)

    def could_be_empty(self, store: ConstraintStore) -> bool:
        return self.could_equal("", store)

    def could_match(self, language: Regex, store: ConstraintStore) -> bool:
        return not self.to_regex(store).disjoint(language)

    def must_match(self, language: Regex, store: ConstraintStore) -> bool:
        return self.to_regex(store) <= language

    def describe(self, store: ConstraintStore) -> str:
        """Human-readable rendering for diagnostics."""
        chunks = []
        for atom in self.atoms:
            if isinstance(atom, LitAtom):
                chunks.append(atom.text)
            elif isinstance(atom, GlobAtom):
                chunks.append(atom.char)
            else:
                chunks.append(f"⟨{store.label(atom.vid)}⟩")
        return "".join(chunks) or "''"

    # -- dunder ---------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, SymString) and self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash(self.atoms)

    def __repr__(self) -> str:
        return f"SymString({list(self.atoms)!r})"


def _normalise(atoms: Iterable[Atom]) -> Tuple[Atom, ...]:
    """Drop empty literals, merge adjacent literals."""
    result: List[Atom] = []
    for atom in atoms:
        if isinstance(atom, LitAtom):
            if not atom.text:
                continue
            if result and isinstance(result[-1], LitAtom):
                result[-1] = LitAtom(result[-1].text + atom.text)
                continue
        result.append(atom)
    return tuple(result)
