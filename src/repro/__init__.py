"""repro — ahead-of-time, semantics-driven static analysis for shell programs.

A reproduction of the system sketched in *"From Ahead-of- to Just-in-Time
and Back Again: Static Analysis for Unix Shell Programs"* (HotOS '25):

- :mod:`repro.shell` — POSIX shell lexer, parser, and AST
- :mod:`repro.rlang` — regular-language engine (the constraint formalism)
- :mod:`repro.rtypes` — regular types for stream contents, incl. polymorphism
- :mod:`repro.symstr` — symbolic string values for parameter expansion
- :mod:`repro.fs` — symbolic file-system model with node identity
- :mod:`repro.specs` — Hoare-triple command specifications + corpus
- :mod:`repro.miner` — documentation mining with instrumented probing
- :mod:`repro.symex` — symbolic execution of the shell semantics
- :mod:`repro.checkers` — incorrectness criteria catalog
- :mod:`repro.monitor` — runtime stream monitoring and `verify` policies
- :mod:`repro.lint` — syntactic baseline linter (ShellCheck-class)
- :mod:`repro.analysis` — the end-to-end analyzer
"""

__version__ = "0.1.0"

__all__ = ["analyze", "Report", "__version__"]


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # submodules are still being assembled.
    if name in ("analyze", "Report"):
        from . import analysis

        return getattr(analysis, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
