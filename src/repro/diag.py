"""Diagnostics shared by the engine, checkers, linter, and analyzer."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from .shell.tokens import Position


@functools.total_ordering
class Severity(Enum):
    ERROR = "error"      # definite incorrectness on some/all paths
    WARNING = "warning"  # likely incorrectness
    INFO = "info"        # noteworthy (untyped command, platform hint)

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank


@dataclass(frozen=True)
class Diagnostic:
    code: str            # e.g. "dangerous-deletion", "dead-stream"
    message: str
    severity: Severity = Severity.WARNING
    pos: Optional[Position] = None
    #: does the issue hold on every execution path ("always") or only on
    #: some feasible path ("may")?
    always: bool = False
    #: evidence: e.g. a concrete variable assignment triggering the bug
    witness: str = ""
    source: str = "semantic"  # "semantic" | "lint" | "types" | "platform"
    #: other program points involved (e.g. both commands of a race)
    related: Tuple[str, ...] = ()

    def render(self) -> str:
        location = f"{self.pos}: " if self.pos else ""
        modality = "always" if self.always else "may"
        tail = f" [witness: {self.witness}]" if self.witness else ""
        if self.related:
            tail += "".join(f"\n    with: {entry}" for entry in self.related)
        return (
            f"{location}{self.severity.value}[{self.code}] ({modality}) "
            f"{self.message}{tail}"
        )

    def key(self) -> Tuple:
        return (self.code, self.message, str(self.pos), self.always)

    # -- serialization (stable across processes and cache generations) ------

    def to_dict(self) -> dict:
        data = {
            "code": self.code,
            "message": self.message,
            "severity": self.severity.value,
            "always": self.always,
            "witness": self.witness,
            "source": self.source,
            "related": list(self.related),
        }
        if self.pos is not None:
            data["pos"] = {
                "line": self.pos.line,
                "col": self.pos.col,
                "offset": self.pos.offset,
            }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        pos = None
        if data.get("pos") is not None:
            raw = data["pos"]
            pos = Position(
                line=raw.get("line", 1),
                col=raw.get("col", 1),
                offset=raw.get("offset", 0),
            )
        return cls(
            code=data["code"],
            message=data["message"],
            severity=Severity(data.get("severity", "warning")),
            pos=pos,
            always=data.get("always", False),
            witness=data.get("witness", ""),
            source=data.get("source", "semantic"),
            related=tuple(data.get("related", ())),
        )


def dedupe(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Drop duplicates, preferring 'always' over 'may' for the same issue."""
    chosen = {}
    order = []
    for diag in diagnostics:
        key = (diag.code, diag.message, str(diag.pos))
        if key not in chosen:
            chosen[key] = diag
            order.append(key)
        elif diag.always and not chosen[key].always:
            chosen[key] = diag
    return [chosen[k] for k in order]
