"""Command-line entry points.

- ``repro-analyze``  — semantics-driven static analysis of a script
- ``repro-optimize`` — parallelizability & reordering advisor (plan.json)
- ``repro-lint``     — the syntactic baseline (ShellCheck-class)
- ``repro-typeof``   — type introspection (§4's ``typeOf`` utility)
- ``repro-monitor``  — run a command under runtime stream monitoring
- ``repro-verify``   — policy verification for curl-to-sh pipelines (§5)
- ``repro-mine``     — mine a command's specification from documentation
- ``repro-served``   — the resident analysis daemon
- ``repro-top``      — live ops console for a running daemon

Without a build step the same entry points are available as
``python -m repro.cli <tool> ...``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import contextmanager
from typing import List, Optional

from . import __version__


def _read_script(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _add_common_flags(parser: argparse.ArgumentParser) -> None:
    """Flags every entry point shares: --version, --stats, --trace."""
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print telemetry (counters, histograms, per-phase wall time) "
        "to stderr after the run",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON file (load it in "
        "chrome://tracing or ui.perfetto.dev)",
    )


@contextmanager
def _observed(prog: str, options: argparse.Namespace):
    """Install a TraceRecorder for the run when --stats/--trace ask for one.

    With neither flag the no-op recorder stays active and the instrumented
    code paths cost ~nothing.
    """
    stats = getattr(options, "stats", False)
    trace = getattr(options, "trace", None)
    if not stats and not trace:
        yield None
        return
    from .obs import TraceRecorder, use_recorder
    from .obs.export import render_stats, write_chrome_trace

    recorder = TraceRecorder()
    with use_recorder(recorder):
        with recorder.span(prog):
            yield recorder
    if trace:
        try:
            write_chrome_trace(recorder, trace)
        except OSError as exc:
            print(f"{prog}: cannot write trace file: {exc}", file=sys.stderr)
    if stats:
        print(render_stats(recorder), file=sys.stderr)


# ---------------------------------------------------------------------------
# repro-analyze
# ---------------------------------------------------------------------------


def main_analyze(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Ahead-of-time semantics-driven analysis of a shell script.",
        epilog="exit status: 0 clean; 1 definite incorrectness found; "
        "2 no scripts found; 3 completed, but some analysis was degraded "
        "(budget exhausted, component crash, or quarantined file)",
    )
    parser.add_argument(
        "script",
        nargs="+",
        help="script path(s), director(ies), glob pattern(s), or - for stdin; "
        "more than one input (or a directory/glob) switches to batch mode",
    )
    parser.add_argument(
        "--args",
        nargs="+",
        default=None,
        metavar="ARG",
        help="concrete positional arguments to analyze the script under; "
        "without this flag argv is modelled as unknown at entry",
    )
    parser.add_argument(
        "--n-args",
        type=int,
        default=None,
        metavar="N",
        help="model exactly N symbolic positional arguments instead of an "
        "unknown argv",
    )
    parser.add_argument(
        "--platforms", nargs="*", default=None, help="deployment platforms to check"
    )
    parser.add_argument(
        "--server",
        action="store_true",
        help="use a running repro-served daemon when available (falls back "
        "to inline analysis when none is listening)",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="analysis-server socket (default: $REPRO_SERVER_SOCKET or a "
        "per-user runtime path)",
    )
    _add_server_resilience_flags(parser)
    parser.add_argument("--lint", action="store_true", help="also run the syntactic baseline")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="batch mode: analyze up to N files in parallel "
        "(default: the machine's CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="batch mode: persistent result cache location "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/analysis)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="batch mode: re-analyze every file, ignoring the cache",
    )
    parser.add_argument(
        "--races",
        action="store_true",
        dest="races",
        default=True,
        help="run the effect-graph hazard analysis (default)",
    )
    parser.add_argument(
        "--no-races",
        action="store_false",
        dest="races",
        help="skip the effect-graph hazard analysis",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="per-file wall-clock budget; on expiry the file gets a partial "
        "report with an analysis-degraded note instead of hanging",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=None,
        metavar="N",
        help="per-file symbolic evaluation-step budget (degrades like --timeout)",
    )
    parser.add_argument(
        "--errors-only", action="store_true", help="show only definite errors"
    )
    _add_common_flags(parser)
    options = parser.parse_args(argv)

    from .diag import Severity

    min_severity = Severity.ERROR if options.errors_only else Severity.INFO
    inputs = options.script
    batch_mode = len(inputs) > 1 or (
        inputs[0] != "-" and not os.path.isfile(inputs[0])
    )
    if batch_mode:
        return _analyze_batch(options, inputs, min_severity)

    from .analysis import analyze
    from .analysis.resilience import ResourceBudget

    source = _read_script(inputs[0])
    with _observed("repro-analyze", options):
        report = None
        if options.server:
            report = _analyze_via_server(options, source)
        if report is None:
            budget = None
            if options.timeout is not None or options.max_states is not None:
                budget = ResourceBudget(
                    deadline=options.timeout, max_states=options.max_states
                )
            report = analyze(
                source,
                n_args=options.n_args,
                args=options.args,
                platform_targets=options.platforms,
                include_lint=options.lint,
                races=options.races,
                budget=budget,
            )
    print(report.render(min_severity=min_severity))
    if report.unsafe:
        return 1
    return 3 if report.degraded else 0


def _add_server_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """--server failure-handling knobs shared by analyze/optimize."""
    parser.add_argument(
        "--server-timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="server read timeout: give up on a server answer after this "
        "long and fall back to inline analysis (default: 60s; pings always "
        "use a short probe deadline)",
    )
    parser.add_argument(
        "--server-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry a daemon lost mid-request up to N times with jittered "
        "exponential backoff before falling back inline (default: 2)",
    )


def _server_client(options: argparse.Namespace):
    """A ServerClient shaped by the --server-* flags."""
    from .server import ServerClient
    from .server.client import RetryPolicy

    kwargs = {}
    timeout = getattr(options, "server_timeout", None)
    if timeout is not None:
        kwargs["read_timeout"] = timeout
    retries = getattr(options, "server_retries", None)
    if retries is not None:
        kwargs["retry"] = RetryPolicy(retries=max(0, retries))
    return ServerClient(options.socket, **kwargs)


def _note_inline_fallback() -> None:
    from .obs import get_recorder

    get_recorder().count("server.client.inline_fallback")


def _batch_config(options: argparse.Namespace):
    from .analysis import BatchConfig

    return BatchConfig(
        n_args=options.n_args,
        args=tuple(options.args) if options.args else None,
        platform_targets=tuple(options.platforms) if options.platforms else None,
        include_lint=options.lint,
        races=options.races,
        timeout=options.timeout,
        max_states=options.max_states,
    )


def _analyze_via_server(options: argparse.Namespace, source: str):
    """One script via the daemon; None means fall back to inline."""
    from .server import ServerError, ServerUnavailable

    try:
        with _server_client(options) as client:
            report = client.analyze_source(source, _batch_config(options))
            if options.stats:
                _print_server_stats(client)
            return report
    except (ServerUnavailable, ServerError) as exc:
        _note_inline_fallback()
        print(f"repro-analyze: {exc}; analyzing inline", file=sys.stderr)
        return None


def _batch_via_server(options: argparse.Namespace, inputs: List[str]):
    """A corpus via the daemon; None means fall back to inline."""
    from .server import ServerError, ServerUnavailable

    try:
        with _server_client(options) as client:
            batch = client.batch(inputs, _batch_config(options))
            if options.stats:
                _print_server_stats(client)
            return batch
    except (ServerUnavailable, ServerError) as exc:
        _note_inline_fallback()
        print(f"repro-analyze: {exc}; analyzing inline", file=sys.stderr)
        return None


def _print_server_stats(client) -> None:
    """The daemon's view of the run: cumulative `server.*`/`batch.*`
    counters on stderr, next to the client-side --stats table."""
    from .server import ServerError, ServerUnavailable

    try:
        stats = client.stats()
    except (ServerUnavailable, ServerError):
        return  # the analysis already succeeded; stats are best-effort
    print(
        f"repro-served[{stats.get('pid', '?')}]: "
        f"{stats.get('requests', 0)} request(s), "
        f"uptime {stats.get('uptime_s', 0.0):.0f}s",
        file=sys.stderr,
    )
    counters = stats.get("metrics", {}).get("counters", {})
    for name in sorted(counters):
        if name.startswith(("server.", "batch.")):
            print(f"  {name} {'.' * max(2, 42 - len(name))} {counters[name]}", file=sys.stderr)


def _analyze_batch(options: argparse.Namespace, inputs: List[str], min_severity) -> int:
    from .analysis import ResultCache, run_batch

    with _observed("repro-analyze", options):
        batch = None
        if options.server:
            batch = _batch_via_server(options, inputs)
        if batch is None:
            cache = None if options.no_cache else ResultCache(options.cache_dir)
            batch = run_batch(
                inputs, config=_batch_config(options), jobs=options.jobs, cache=cache
            )
    if not batch.results:
        print("repro-analyze: no scripts found", file=sys.stderr)
        return 2
    print(batch.render(min_severity=min_severity))
    if batch.unsafe:
        return 1
    return 3 if batch.degraded else 0


# ---------------------------------------------------------------------------
# repro-optimize
# ---------------------------------------------------------------------------


def main_optimize(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-optimize",
        description="Optimization advisor: classify pipeline stages by "
        "parallelizability (with merge operators) and derive race-checked "
        "'&'-reorder groups from the command dependence graph.",
        epilog="exit status: 0 plan emitted; 2 no scripts found; "
        "3 plan degraded (budget exhausted or analysis incomplete)",
    )
    parser.add_argument(
        "script",
        nargs="+",
        help="script path(s), director(ies), glob pattern(s), or - for stdin; "
        "more than one input (or a directory/glob) switches to batch mode",
    )
    parser.add_argument(
        "--args",
        nargs="+",
        default=None,
        metavar="ARG",
        help="concrete positional arguments to plan the script under",
    )
    parser.add_argument("--n-args", type=int, default=None, metavar="N")
    parser.add_argument(
        "--plan",
        default=None,
        metavar="FILE",
        help="write the machine-readable plan JSON here (a single plan "
        "object, or an array of {path, plan} entries in batch mode)",
    )
    parser.add_argument(
        "--dot",
        default=None,
        metavar="FILE",
        help="write a Graphviz rendering of the dependence graph with "
        "verified '&'-groups highlighted (single-file mode)",
    )
    parser.add_argument(
        "--server",
        action="store_true",
        help="use a running repro-served daemon when available (falls back "
        "to inline planning when none is listening)",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="analysis-server socket (default: $REPRO_SERVER_SOCKET or a "
        "per-user runtime path)",
    )
    _add_server_resilience_flags(parser)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="batch mode: plan up to N files in parallel",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent plan cache location (shared with the analysis "
        "result cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="re-plan every file, ignoring the cache",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="per-file wall-clock budget; on expiry the plan degrades to a "
        "partial one instead of hanging",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=None,
        metavar="N",
        help="per-file symbolic evaluation-step budget (degrades like "
        "--timeout)",
    )
    _add_common_flags(parser)
    # fields _batch_config expects but repro-optimize does not expose
    parser.set_defaults(platforms=None, lint=False, races=True)
    options = parser.parse_args(argv)

    inputs = options.script
    batch_mode = len(inputs) > 1 or (
        inputs[0] != "-" and not os.path.isfile(inputs[0])
    )
    if batch_mode:
        return _optimize_batch(options, inputs)

    import json

    from .analysis.optimize import OptimizePlan, optimize_source

    source = _read_script(inputs[0])
    config = _batch_config(options)
    with _observed("repro-optimize", options):
        data = None
        if options.server:
            data = _optimize_via_server(options, source, config)
        if data is None and not options.no_cache and options.cache_dir:
            data = _cached_plan(options.cache_dir, source, config)
        if data is None:
            data = optimize_source(source, config)
    plan = OptimizePlan.from_dict(data)
    print(plan.render())
    if options.plan:
        with open(options.plan, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if options.dot:
        with open(options.dot, "w", encoding="utf-8") as handle:
            handle.write(plan.to_dot())
    return 3 if plan.degraded else 0


def _cached_plan(cache_dir: str, source: str, config):
    """Single-file plan caching: serve a hit, else compute and store."""
    from .analysis import ResultCache
    from .analysis.optimize import (
        PLAN_SCHEMA_VERSION,
        optimize_source,
        plan_cache_key,
    )

    cache = ResultCache(cache_dir)
    key = plan_cache_key(source, config)
    data = cache.get(key, schema=PLAN_SCHEMA_VERSION)
    if data is not None:
        return data
    data = optimize_source(source, config)
    if not data.get("degraded"):
        cache.put(key, data)
    return data


def _optimize_via_server(options: argparse.Namespace, source: str, config):
    """One script's plan via the daemon; None means fall back to inline."""
    from .server import ServerError, ServerUnavailable

    try:
        with _server_client(options) as client:
            data = client.optimize_source(source, config)
            if options.stats:
                _print_server_stats(client)
            return data
    except (ServerUnavailable, ServerError) as exc:
        _note_inline_fallback()
        print(f"repro-optimize: {exc}; planning inline", file=sys.stderr)
        return None


def _optimize_batch(options: argparse.Namespace, inputs: List[str]) -> int:
    import json

    from .analysis import ResultCache
    from .analysis.optimize import run_optimize_batch

    with _observed("repro-optimize", options):
        batch = None
        if options.server:
            batch = _optimize_batch_via_server(options, inputs)
        if batch is None:
            cache = None if options.no_cache else ResultCache(options.cache_dir)
            batch = run_optimize_batch(
                inputs,
                config=_batch_config(options),
                jobs=options.jobs,
                cache=cache,
            )
    if not batch.results:
        print("repro-optimize: no scripts found", file=sys.stderr)
        return 2
    print(batch.render())
    if options.plan:
        payload = [
            {"path": result.path, "plan": result.plan.to_dict()}
            for result in batch.results
        ]
        with open(options.plan, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 3 if batch.degraded else 0


def _optimize_batch_via_server(options: argparse.Namespace, inputs: List[str]):
    """A corpus planned file-by-file through the daemon's optimize op;
    None means fall back to inline planning."""
    from .analysis.batch import discover
    from .analysis.optimize import (
        OptimizeBatchResult,
        OptimizeFileResult,
        OptimizePlan,
    )
    from .server import ServerError, ServerUnavailable

    config = _batch_config(options)
    try:
        with _server_client(options) as client:
            batch = OptimizeBatchResult()
            for path in discover(inputs):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        source = handle.read()
                except OSError as exc:
                    plan = OptimizePlan(
                        degraded=True, degraded_reason=f"read error: {exc}"
                    )
                    batch.results.append(
                        OptimizeFileResult(path=path, plan=plan)
                    )
                    continue
                data = client.optimize_source(source, config)
                batch.results.append(
                    OptimizeFileResult(
                        path=path, plan=OptimizePlan.from_dict(data)
                    )
                )
            if options.stats:
                _print_server_stats(client)
            return batch
    except (ServerUnavailable, ServerError) as exc:
        _note_inline_fallback()
        print(f"repro-optimize: {exc}; planning inline", file=sys.stderr)
        return None


# ---------------------------------------------------------------------------
# repro-lint
# ---------------------------------------------------------------------------


def main_lint(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description="Syntactic (ShellCheck-class) linting."
    )
    parser.add_argument("script")
    _add_common_flags(parser)
    options = parser.parse_args(argv)

    from .lint import lint

    with _observed("repro-lint", options):
        diagnostics = lint(_read_script(options.script))
    for diagnostic in diagnostics:
        print(diagnostic.render())
    return 1 if diagnostics else 0


# ---------------------------------------------------------------------------
# repro-typeof
# ---------------------------------------------------------------------------


def main_typeof(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-typeof",
        description="Type introspection: a named type, or a command invocation's "
        "stream signature.",
    )
    parser.add_argument(
        "what", nargs=argparse.REMAINDER, help="a type name, or a command + args"
    )
    _add_common_flags(parser)
    options = parser.parse_args(argv)
    if not options.what:
        parser.error("expected a type name or a command invocation")

    from .rtypes import named_type, named_type_names, signature_for

    with _observed("repro-typeof", options):
        if len(options.what) == 1:
            stream = named_type(options.what[0])
            if stream is not None:
                print(f"{options.what[0]} :: {stream.line.pattern}")
                return 0
        signature = signature_for(options.what)
    if signature is not None:
        print(signature)
        return 0
    print(
        f"no type for {' '.join(options.what)!r}; known named types: "
        + ", ".join(named_type_names()),
        file=sys.stderr,
    )
    return 1


# ---------------------------------------------------------------------------
# repro-monitor
# ---------------------------------------------------------------------------


def main_monitor(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-monitor",
        description="Run a command with stdout monitored against a regular type; "
        "the command is killed on the first violating line.",
    )
    parser.add_argument("--type", required=True, help="expected output line type")
    parser.add_argument("command", nargs="+")
    _add_common_flags(parser)
    options = parser.parse_args(argv)

    from .monitor import MonitorViolation, monitor_subprocess
    from .rtypes import type_of

    stdin_lines = [line.rstrip("\n") for line in sys.stdin] if not sys.stdin.isatty() else []
    with _observed("repro-monitor", options):
        try:
            for line in monitor_subprocess(
                options.command, stdin_lines, type_of(options.type)
            ):
                print(line)
        except MonitorViolation as violation:
            print(f"monitor: halted: {violation}", file=sys.stderr)
            return 2
    return 0


# ---------------------------------------------------------------------------
# repro-verify
# ---------------------------------------------------------------------------


def main_verify(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Verify a script against a policy before executing it "
        "(e.g. curl url | repro-verify --no-RW ~/mine - && curl url | sh).",
    )
    parser.add_argument("script", help="script path, or - for stdin")
    parser.add_argument(
        "--args",
        nargs="+",
        default=None,
        metavar="ARG",
        help="concrete positional arguments (default: argv unknown at entry)",
    )
    parser.add_argument("--n-args", type=int, default=None, metavar="N")
    parser.add_argument(
        "policy",
        nargs=argparse.REMAINDER,
        help="policy rules: --no-RW PATH, --no-W PATH, --no-R PATH",
    )
    _add_common_flags(parser)
    options, unknown = parser.parse_known_args(argv)

    from .monitor import Verdict, parse_policy, verify_script

    rules = parse_policy(list(unknown) + list(options.policy))
    with _observed("repro-verify", options):
        result = verify_script(
            _read_script(options.script),
            rules,
            n_args=options.n_args,
            args=options.args,
        )
    print(result.render())
    return 0 if result.verdict is Verdict.ALLOW else 1


# ---------------------------------------------------------------------------
# repro-served
# ---------------------------------------------------------------------------


def main_served(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-served",
        description="Resident analysis daemon: keeps the spec registry, "
        "DFA caches, and result cache warm and serves repro-analyze "
        "--server requests over a Unix socket (line-delimited JSON).",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="socket to listen on (default: $REPRO_SERVER_SOCKET or a "
        "per-user runtime path)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="size of the persistent analysis process pool "
        "(default: the machine's CPU count; 1 disables the pool)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent result cache location "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/analysis)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="serve without a result cache"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="per-request wall-clock ceiling; client-requested budgets are "
        "clamped to it (default: 30s)",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=None,
        metavar="N",
        help="per-request symbolic evaluation-step ceiling (default: 2000000)",
    )
    parser.add_argument(
        "--watch",
        nargs="+",
        default=None,
        metavar="PATH",
        help="watch mode: poll these files/directories and re-analyze "
        "scripts as they change, keeping the cache warm",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECS",
        help="watch-mode poll interval (default: 1s)",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="watch mode: disable fragment-level incremental re-analysis "
        "(re-run changed files cold through the batch driver instead)",
    )
    parser.add_argument(
        "--log-file",
        default=None,
        metavar="PATH",
        help="append structured JSONL ops events (request lifecycle, "
        "slow requests, watch scans, errors) to this file",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=["debug", "info", "warning", "error"],
        help="minimum ops-log level (default: info)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log a request.slow event for requests over this wall time "
        "(default: 1000ms)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="shed requests beyond N concurrently in flight instead of "
        "queueing them (default: 64)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="on SIGTERM (or a drain): wait this long for in-flight "
        "requests before the hard stop abandons them (default: 5s)",
    )
    parser.add_argument(
        "--frame-deadline",
        type=float,
        default=None,
        metavar="SECS",
        help="a started request frame must finish within this long or the "
        "connection is answered with an error and closed (default: 30s)",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="restart the serving loop after a crash (bounded by "
        "--max-restarts), reusing the warm result cache",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        metavar="N",
        help="give up after N supervised restarts (default: 5)",
    )
    _add_common_flags(parser)
    options = parser.parse_args(argv)

    from .server import default_socket_path, serve
    from .server.daemon import (
        DEFAULT_CAP_DEADLINE,
        DEFAULT_CAP_STATES,
        DEFAULT_DRAIN_DEADLINE,
        DEFAULT_MAX_INFLIGHT,
        DEFAULT_SLOW_MS,
    )
    from .server.protocol import DEFAULT_FRAME_DEADLINE

    socket_path = options.socket or default_socket_path()
    print(f"repro-served: listening on {socket_path}", file=sys.stderr)
    recorder = None
    if options.stats or options.trace:
        from .obs import TraceRecorder

        recorder = TraceRecorder()
    log = None
    if options.log_file:
        from .obs import OpsLogger

        log = OpsLogger(options.log_file, level=options.log_level)
    try:
        server = serve(
            socket_path=socket_path,
            jobs=options.jobs,
            cache_dir=options.cache_dir,
            no_cache=options.no_cache,
            cap_deadline=(
                options.timeout if options.timeout is not None else DEFAULT_CAP_DEADLINE
            ),
            cap_states=(
                options.max_states
                if options.max_states is not None
                else DEFAULT_CAP_STATES
            ),
            watch=options.watch,
            interval=options.interval,
            incremental=not options.no_incremental,
            recorder=recorder,
            log=log,
            slow_ms=options.slow_ms if options.slow_ms is not None else DEFAULT_SLOW_MS,
            max_inflight=(
                options.max_inflight
                if options.max_inflight is not None
                else DEFAULT_MAX_INFLIGHT
            ),
            frame_deadline=(
                options.frame_deadline
                if options.frame_deadline is not None
                else DEFAULT_FRAME_DEADLINE
            ),
            drain_deadline=(
                options.drain_timeout
                if options.drain_timeout is not None
                else DEFAULT_DRAIN_DEADLINE
            ),
            supervised=options.supervise,
            max_restarts=options.max_restarts,
            install_signals=True,
        )
    except KeyboardInterrupt:
        print("repro-served: interrupted", file=sys.stderr)
        return 0
    except OSError as exc:
        print(f"repro-served: cannot serve: {exc}", file=sys.stderr)
        return 2
    if recorder is not None:
        from .obs.export import render_stats, write_chrome_trace

        if options.trace:
            try:
                write_chrome_trace(recorder, options.trace)
            except OSError as exc:
                print(
                    f"repro-served: cannot write trace file: {exc}",
                    file=sys.stderr,
                )
        if options.stats:
            print(render_stats(recorder), file=sys.stderr)
    print(
        f"repro-served: stopped after {server.requests_served} request(s)",
        file=sys.stderr,
    )
    return 0


# ---------------------------------------------------------------------------
# repro-top
# ---------------------------------------------------------------------------


def _format_ms(value) -> str:
    if value is None:
        return "-"
    return f"{value:.1f}ms"


def _render_top_frame(stats: dict, previous=None) -> str:
    """One dashboard frame from a ``stats`` response.

    ``previous`` is ``(counters, monotonic_time)`` from the prior poll;
    when present, instantaneous rates are the counter deltas over the
    elapsed interval (otherwise only lifetime averages are shown).
    """
    counters = stats.get("metrics", {}).get("counters", {})

    def rate(name: str):
        if previous is None:
            return None
        prev_counters, prev_time, now = previous
        elapsed = now - prev_time
        if elapsed <= 0:
            return None
        return (counters.get(name, 0) - prev_counters.get(name, 0)) / elapsed

    def with_rate(count, name: str) -> str:
        instant = rate(name)
        return f"{count}" if instant is None else f"{count} ({instant:.1f}/s)"

    uptime = stats.get("uptime_s", 0.0)
    lines = [
        f"repro-top — repro-served pid {stats.get('pid', '?')} "
        f"v{stats.get('version', '?')} · uptime {uptime:.0f}s · "
        f"protocol {stats.get('protocol', '?')}",
        "",
        "  requests "
        + with_rate(stats.get("requests", 0), "server.requests")
        + f" · avg {stats.get('request_rate_rps', 0.0):.2f}/s"
        + f" · inflight {stats.get('inflight', 0)}/{stats.get('max_inflight', '?')}",
        f"  errors {stats.get('errors', 0)} · shed {stats.get('shed', 0)} · "
        f"slow(>{stats.get('slow_ms', 0):.0f}ms) {stats.get('slow_requests', 0)} · "
        f"budget clamps {stats.get('budget_clamps', 0)}",
    ]
    hit_rate = stats.get("cache_hit_rate")
    cache_pct = "-" if hit_rate is None else f"{100 * hit_rate:.1f}%"
    pool_state = "alive" if stats.get("pool_alive") else "idle/none"
    lines.append(
        f"  cache {cache_pct} hit "
        f"(hits {with_rate(stats.get('cache_hits', 0), 'batch.cache.hit')}, "
        f"misses {with_rate(stats.get('cache_misses', 0), 'batch.cache.miss')}) · "
        f"pool {stats.get('jobs', '?')} worker(s) [{pool_state}]"
    )
    lines.append(
        f"  watch rounds {stats.get('watch_rounds', 0)} · "
        f"watch stat errors {stats.get('watch_stat_errors', 0)} · "
        f"truncations {counters.get('symex.truncations', 0)} · "
        f"quarantined {counters.get('batch.quarantined', 0)}"
    )
    latency = stats.get("latency_ms", {})
    if latency:
        lines.append("")
        lines.append(
            f"  {'op':<12} {'n':>6} {'mean':>9} {'p50':>9} {'p95':>9} "
            f"{'p99':>9} {'max':>9}"
        )
        for op in sorted(latency):
            row = latency[op]
            lines.append(
                f"  {op:<12} {row.get('count', 0):>6} "
                f"{_format_ms(row.get('mean_ms')):>9} "
                f"{_format_ms(row.get('p50_ms')):>9} "
                f"{_format_ms(row.get('p95_ms')):>9} "
                f"{_format_ms(row.get('p99_ms')):>9} "
                f"{_format_ms(row.get('max_ms')):>9}"
            )
    hot = [
        name
        for name in ("batch.files", "symex.states_explored", "server.pool_rebuilds")
        if counters.get(name)
    ]
    if hot:
        lines.append("")
        for name in hot:
            lines.append(f"  {name} {'.' * max(2, 34 - len(name))} "
                         + with_rate(counters[name], name))
    return "\n".join(lines)


def main_top(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live ops console for a running repro-served daemon: "
        "polls the stats op and renders request rates, per-op latency "
        "quantiles, cache hit rate, and shed/error counts.",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="analysis-server socket (default: $REPRO_SERVER_SOCKET or a "
        "per-user runtime path)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECS",
        help="poll interval (default: 2s)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (no screen clearing; "
        "scriptable)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the daemon's Prometheus text exposition and exit",
    )
    _add_common_flags(parser)
    options = parser.parse_args(argv)

    import time as time_mod

    from .server import ServerClient, ServerError, ServerUnavailable

    previous = None
    while True:
        try:
            with ServerClient(options.socket, timeout=30.0) as client:
                if options.metrics:
                    print(client.metrics_text(), end="")
                    return 0
                while True:
                    stats = client.stats()
                    now = time_mod.monotonic()
                    frame_history = (
                        (previous[0], previous[1], now) if previous else None
                    )
                    frame = _render_top_frame(stats, frame_history)
                    previous = (
                        dict(stats.get("metrics", {}).get("counters", {})),
                        now,
                    )
                    if not options.once:
                        sys.stdout.write("\x1b[2J\x1b[H")
                    print(frame)
                    sys.stdout.flush()
                    if options.once:
                        return 0
                    time_mod.sleep(options.interval)
        except (ServerUnavailable, ServerError) as exc:
            print(f"repro-top: {exc}", file=sys.stderr)
            if options.once or options.metrics:
                return 1
            time_mod.sleep(options.interval)
        except KeyboardInterrupt:
            return 0


# ---------------------------------------------------------------------------
# repro-mine
# ---------------------------------------------------------------------------


def main_mine(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Mine a command's Hoare-triple specification from its "
        "documentation via instrumented probing (Fig. 4).",
    )
    parser.add_argument("command", help="command name (must have a bundled man page)")
    parser.add_argument(
        "--real", action="store_true", help="probe the real binary in a sandbox"
    )
    parser.add_argument("--max-flags", type=int, default=2)
    _add_common_flags(parser)
    options = parser.parse_args(argv)

    from .miner import ModelProber, SubprocessProber, mine_command

    prober = SubprocessProber() if options.real else ModelProber()
    with _observed("repro-mine", options):
        spec = mine_command(
            options.command, prober=prober, max_flags=options.max_flags
        )
    print(f"# mined specification for {spec.name}: {spec.summary}")
    for triple in spec.triples():
        print(triple)
    return 0


# ---------------------------------------------------------------------------
# repro-difftest
# ---------------------------------------------------------------------------


def main_difftest(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-difftest",
        description="Differential-correctness campaign: execute generated "
        "and corpus scripts in a confined sandbox and cross-check the "
        "static verdicts (dynamic oracle), and re-analyze "
        "semantics-preserving rewrites (metamorphic oracle); aggregate "
        "per-checker FP/FN counts into a deterministic precision benchmark.",
        epilog="exit status: 0 clean (or within baseline); 1 disagreements "
        "above baseline; 2 bad invocation",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=50,
        metavar="N",
        help="generate scripts for seeds 0..N-1 (safe mode; default 50)",
    )
    parser.add_argument(
        "--corpus",
        nargs="*",
        default=[],
        metavar="PATH",
        help="additional script files/directories/globs to campaign over",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run up to N scripts in parallel (default: cpu count)",
    )
    parser.add_argument(
        "--bench",
        default=None,
        metavar="FILE",
        help="write the precision benchmark JSON here (BENCH_precision.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="compare against this benchmark; exit 1 only on counts above it",
    )
    parser.add_argument(
        "--no-exec",
        action="store_true",
        help="skip the dynamic (execution) oracle",
    )
    parser.add_argument(
        "--no-meta",
        action="store_true",
        help="skip the metamorphic (rewrite) oracle",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="keep full reproducers instead of minimizing disagreements",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECS",
        help="per-execution wall-clock limit inside the sandbox",
    )
    parser.add_argument(
        "--max-fork",
        type=int,
        default=16,
        metavar="N",
        help="analyzer fork bound for the campaign (default 16)",
    )
    options = parser.parse_args(argv)
    if options.no_exec and options.no_meta:
        print("repro-difftest: both oracles disabled", file=sys.stderr)
        return 2

    from .analysis.batch import discover
    from .analysis.difftest import (
        CampaignConfig,
        compare_to_baseline,
        run_campaign,
    )

    corpus = tuple(discover(options.corpus)) if options.corpus else ()
    config = CampaignConfig(
        seeds=tuple(range(max(0, options.seeds))),
        corpus=corpus,
        exec_enabled=not options.no_exec,
        meta_enabled=not options.no_meta,
        timeout=options.timeout,
        minimize=not options.no_minimize,
        max_fork=options.max_fork,
    )
    result = run_campaign(config, jobs=options.jobs)
    bench = result.to_bench_dict()
    if options.bench:
        with open(options.bench, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())

    scripts = bench["scripts"]
    print(
        f"{scripts['total']} script(s): {scripts['executed']} executed, "
        f"{scripts['skipped']} skipped"
    )
    for name, counts in sorted(bench["checkers"].items()):
        print(
            f"  {name}: checked={counts['checked']} fp={counts['fp']} "
            f"fn={counts['fn']}"
        )
    meta = bench["metamorphic"]
    print(f"  metamorphic: {meta['total_diffs']} diff(s)")
    for label, disagreement in result.disagreements:
        print(
            f"disagreement [{label}] {disagreement.checker}/"
            f"{disagreement.kind}: {disagreement.detail}"
        )

    if options.baseline:
        try:
            with open(options.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"repro-difftest: bad baseline: {exc}", file=sys.stderr)
            return 2
        problems = compare_to_baseline(bench, baseline)
        for problem in problems:
            print(f"regression: {problem}", file=sys.stderr)
        return 1 if problems else 0
    clean = not result.disagreements and meta["total_diffs"] == 0
    return 0 if clean else 1


_TOOLS = {
    "analyze": main_analyze,
    "optimize": main_optimize,
    "lint": main_lint,
    "typeof": main_typeof,
    "monitor": main_monitor,
    "verify": main_verify,
    "mine": main_mine,
    "served": main_served,
    "top": main_top,
    "difftest": main_difftest,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in _TOOLS:
        print(f"usage: python -m repro.cli {{{','.join(_TOOLS)}}} ...", file=sys.stderr)
        return 2
    return _TOOLS[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
