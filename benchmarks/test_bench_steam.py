"""E1/E2/E3/E5: the Steam-bug figure suite, semantic vs baseline.

Shape to reproduce (paper §2-§3): both tools flag Fig. 1; only the
semantic analyzer clears Fig. 2 and flags Fig. 3 and the semantic
variants; the baseline emits identical findings on Figs. 2 and 3.
"""

from conftest import emit

from repro.analysis import analyze
from repro.lint import lint_codes

VARIANTS = [
    'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nc="/*"; rm -fr $STEAMROOT$c\n',
    'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nrm -fr $STEAMROOT/*\n',
    'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\na=$STEAMROOT\nrm -fr "$a"/*\n',
    'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nt="$STEAMROOT/"\nrm -fr $t*\n',
    'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nrm -rf "$STEAMROOT"/*\n',
]


def _semantic_unsafe(report):
    return bool(
        report.errors()
        or [d for d in report.warnings() if d.source in ("semantic", "types")]
    )


def test_fig1_detection(figures, benchmark):
    """E1: the original bug is flagged (by both tools)."""
    report = benchmark(analyze, figures["fig1"])
    assert report.has("dangerous-deletion")
    assert any(d.always for d in report.by_code("dangerous-deletion"))
    assert "SC2115" in lint_codes(figures["fig1"])
    emit(
        "E1 (Fig. 1)",
        [
            "semantic : dangerous-deletion (always, witness '/')",
            f"baseline : {','.join(lint_codes(figures['fig1']))}",
        ],
    )


def test_fig2_proven_safe(figures, benchmark):
    """E2: the guarded fix is safe for the analyzer; the baseline still
    warns — a false positive."""
    report = benchmark(analyze, figures["fig2"])
    assert not report.has("dangerous-deletion")
    assert not _semantic_unsafe(report)
    assert "SC2115" in lint_codes(figures["fig2"])  # the baseline's FP
    emit(
        "E2 (Fig. 2)",
        [
            "semantic : SAFE on every path (guard refines STEAMROOT)",
            f"baseline : {','.join(lint_codes(figures['fig2']))} (false positive)",
        ],
    )


def test_fig3_detection(figures, benchmark):
    """E3: the one-character-away unsafe fix is flagged; the baseline
    reports exactly what it reported for the safe Fig. 2."""
    report = benchmark(analyze, figures["fig3"])
    assert report.has("dangerous-deletion")
    assert lint_codes(figures["fig2"]) == lint_codes(figures["fig3"])
    emit(
        "E3 (Fig. 3)",
        [
            "semantic : dangerous-deletion (the then-branch deletes from /)",
            "baseline : identical codes to Fig. 2 — cannot distinguish",
        ],
    )


def test_variants(benchmark):
    """E5: robustness to semantically-equivalent rewrites."""
    def run_all():
        return [analyze(source) for source in VARIANTS]

    reports = benchmark(run_all)
    rows = []
    for source, report in zip(VARIANTS, reports):
        assert report.has("dangerous-deletion"), source
        baseline = "SC2115" in lint_codes(source)
        rows.append(
            f"semantic flags / baseline {'flags' if baseline else 'MISSES'} : "
            + source.splitlines()[-1]
        )
    assert sum("MISSES" in r for r in rows) >= 2, "variants must defeat the baseline"
    emit("E5 (semantic variants)", rows)
