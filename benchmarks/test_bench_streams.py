"""E4: stream-content reasoning on Fig. 5 (the dead grep filter)."""

from conftest import emit

from repro.analysis import analyze
from repro.lint import lint_codes
from repro.rlang import Regex
from repro.rtypes import check_pipeline


def test_fig5(figures, benchmark):
    report = benchmark(analyze, figures["fig5"])
    assert report.has("dead-stream")
    assert len(report.by_code("dead-case-branch")) == 2
    assert report.has("undefined-variable")
    assert report.has("dangerous-deletion")
    assert "SC2115" not in lint_codes(figures["fig5"])  # baseline is silent
    emit(
        "E4 (Fig. 5)",
        [
            "semantic : dead-stream at grep '^desc' (always)",
            "semantic : 2 dead case arms; SUFFIX never set; deletion bug survives",
            "baseline : silent about the filter bug",
        ],
    )


def test_fig5_core_intersection(benchmark):
    """The underlying language fact: lsb_release-type ∩ desc.* = ∅."""
    lsb = Regex.compile(r"(Distributor ID|Description|Release|Codename):\t.*")
    grep_out = Regex.compile("desc.*")

    def intersect_and_check():
        return (lsb & grep_out).is_empty()

    assert benchmark(intersect_and_check)


def test_fig5_pipeline_typing(benchmark):
    result = benchmark(
        check_pipeline,
        [["lsb_release", "-a"], ["grep", "^desc"], ["cut", "-f", "2"]],
    )
    assert result.output_dead
    fixed = check_pipeline(
        [["lsb_release", "-a"], ["grep", "^Desc"], ["cut", "-f", "2"]]
    )
    assert not fixed.output_dead
