"""E-batch: corpus-scale batch analysis guards.

Two properties anchor the batch driver:

1. **Warm-cache O(1) re-analysis** — a second run over an unchanged
   corpus must do zero symbolic execution (100% ``batch.cache.hit``)
   and cost a small fraction of the cold run, independent of how
   expensive the per-file analyses were.
2. **Parallel speedup** — with several workers, wall-clock on a
   40-script corpus must beat the serial run (skipped on single-core
   machines, where there is nothing to win).
"""

import os
import time

import pytest
from conftest import emit

from repro.analysis import BatchConfig, ResultCache, run_batch
from repro.obs import TraceRecorder, use_recorder

CORPUS_SIZE = 40


def _script(index):
    # per-index paths defeat any content dedup; loops + conditionals
    # give every file a non-trivial symbolic execution
    return (
        f"base=/srv/app{index}\n"
        f"for part in a b c d e; do\n"
        f'  if [ -f "$base/$part" ]; then\n'
        f'    rm "$base/$part"\n'
        f"  else\n"
        f'    mkdir -p "$base"\n'
        f"  fi\n"
        f"done\n"
        f"grep pattern{index} /etc/config{index} > /tmp/out{index}\n"
    )


@pytest.fixture
def corpus(tmp_path):
    scripts = tmp_path / "corpus"
    scripts.mkdir()
    for index in range(CORPUS_SIZE):
        (scripts / f"s{index:02d}.sh").write_text(_script(index))
    return scripts


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_warm_cache_rerun_is_o1(corpus, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    config = BatchConfig()

    cold, cold_seconds = _timed(
        lambda: run_batch([str(corpus)], config=config, jobs=1, cache=cache)
    )
    assert len(cold.results) == CORPUS_SIZE

    recorder = TraceRecorder()
    with use_recorder(recorder):
        warm, warm_seconds = _timed(
            lambda: run_batch([str(corpus)], config=config, jobs=1, cache=cache)
        )

    emit(
        "E-batch (cold vs warm cache)",
        [
            f"corpus: {CORPUS_SIZE} scripts",
            f"cold: {cold_seconds * 1e3:.1f}ms",
            f"warm: {warm_seconds * 1e3:.1f}ms "
            f"({cold_seconds / max(warm_seconds, 1e-9):.1f}x faster)",
            f"hits: {recorder.counter('batch.cache.hit')}/{CORPUS_SIZE}",
        ],
    )

    # the acceptance bar: zero symbolic execution on the warm run
    assert recorder.counter("symex.runs") == 0
    assert recorder.counter("batch.cache.hit") == CORPUS_SIZE
    assert recorder.counter("batch.cache.miss") == 0
    assert warm.render() == cold.render()
    # O(1) per file: hashing + one small JSON read, far from re-analysis
    assert warm_seconds < cold_seconds / 5, (
        f"warm rerun took {warm_seconds * 1e3:.1f}ms, "
        f"expected well under cold {cold_seconds * 1e3:.1f}ms / 5"
    )


def test_warm_cost_is_flat_in_analysis_depth(corpus, tmp_path):
    """Warm-run cost tracks corpus *size*, not analysis *cost*: raising
    the engine budgets (a much more expensive cold analysis) must leave
    the warm rerun essentially unchanged."""
    cheap_cache = ResultCache(str(tmp_path / "cache-cheap"))
    deep_cache = ResultCache(str(tmp_path / "cache-deep"))
    cheap = BatchConfig(max_loop=1)
    deep = BatchConfig(max_loop=3, max_fork=128)

    run_batch([str(corpus)], config=cheap, jobs=1, cache=cheap_cache)
    run_batch([str(corpus)], config=deep, jobs=1, cache=deep_cache)

    _, warm_cheap = _timed(
        lambda: run_batch([str(corpus)], config=cheap, jobs=1, cache=cheap_cache)
    )
    _, warm_deep = _timed(
        lambda: run_batch([str(corpus)], config=deep, jobs=1, cache=deep_cache)
    )
    emit(
        "E-batch (warm cost vs analysis depth)",
        [
            f"warm shallow config: {warm_cheap * 1e3:.1f}ms",
            f"warm deep config:    {warm_deep * 1e3:.1f}ms",
        ],
    )
    # both are cache reads; allow generous jitter but forbid scaling
    # with the (much larger) deep analysis cost
    assert warm_deep < max(warm_cheap * 3, 0.25)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="parallel speedup needs >1 CPU"
)
def test_four_workers_beat_serial(corpus, tmp_path):
    config = BatchConfig()

    _, serial_seconds = _timed(
        lambda: run_batch([str(corpus)], config=config, jobs=1, cache=None)
    )
    parallel, parallel_seconds = _timed(
        lambda: run_batch([str(corpus)], config=config, jobs=4, cache=None)
    )
    emit(
        "E-batch (serial vs 4 workers)",
        [
            f"serial:   {serial_seconds * 1e3:.1f}ms",
            f"4 workers: {parallel_seconds * 1e3:.1f}ms "
            f"({serial_seconds / max(parallel_seconds, 1e-9):.2f}x)",
        ],
    )
    assert len(parallel.results) == CORPUS_SIZE
    assert parallel_seconds < serial_seconds * 0.85, (
        f"4-worker run ({parallel_seconds * 1e3:.1f}ms) failed to beat "
        f"serial ({serial_seconds * 1e3:.1f}ms) by >= 15%"
    )
