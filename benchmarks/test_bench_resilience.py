"""E-resilience: the budget machinery is near-free when unused, cheap
when armed, and hard-bounds wall clock on pathological input.

Three guards anchor the resilience layer:

1. **Happy-path overhead** — analyzing a normal corpus under a generous
   budget must cost about the same as analyzing it unbudgeted (the
   budget hot path is one int increment + a strided clock sample).
2. **Deadline enforcement** — a script whose symbolic execution is
   pathologically expensive (glob-heavy loops forcing automaton work on
   every step) must return within a small multiple of its deadline,
   degraded but renderable.
3. **Depth-bomb immunity** — kilodeep nesting returns a degraded report
   quickly instead of a ``RecursionError``.
"""

import time

from conftest import emit

from repro.analysis import analyze
from repro.analysis.resilience import ResourceBudget

REPS = 5

NORMAL = "\n".join(
    f'if [ -f "/srv/part{i}" ]; then rm "/srv/part{i}"; else mkdir -p /srv; fi'
    for i in range(12)
)

# glob-heavy loop nest: per-step automaton work makes raw step budgets a
# poor clock proxy, which is exactly what the deadline is for
PATHOLOGICAL = (
    "while [ -e log-*.txt ]; do\n"
    "case $x in\n"
    "  a|b) sed file.txt file.txt 2>&1 ;;\n"
    "  *.txt) cp $(basename $0) file.txt data < file.txt ;;\n"
    "esac\n"
    "done\n"
) * 10


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_budget_overhead_on_happy_path():
    analyze(NORMAL)  # warm up imports and spec registry

    _, plain = _timed(lambda: [analyze(NORMAL) for _ in range(REPS)])
    budget = ResourceBudget(deadline=60.0, max_states=10**6)
    budgeted_reports, budgeted = _timed(
        lambda: [analyze(NORMAL, budget=budget) for _ in range(REPS)]
    )

    assert not any(r.degraded for r in budgeted_reports)
    emit(
        "E-resilience (budget overhead, happy path)",
        [
            f"unbudgeted: {plain / REPS * 1e3:.1f}ms/run",
            f"budgeted:   {budgeted / REPS * 1e3:.1f}ms/run "
            f"({budgeted / max(plain, 1e-9):.2f}x)",
        ],
    )
    # generous bound: the point is catching an accidentally quadratic
    # check, not winning a microbenchmark
    assert budgeted < plain * 2 + 0.05, (
        f"budget checks cost {budgeted * 1e3:.0f}ms vs {plain * 1e3:.0f}ms "
        "unbudgeted — the hot path got expensive"
    )


def test_deadline_bounds_pathological_wall_clock():
    deadline = 0.25
    report, elapsed = _timed(
        lambda: analyze(PATHOLOGICAL, budget=ResourceBudget(deadline=deadline))
    )
    emit(
        "E-resilience (deadline enforcement)",
        [
            f"deadline: {deadline * 1e3:.0f}ms",
            f"returned after: {elapsed * 1e3:.0f}ms "
            f"({'degraded' if report.degraded else 'completed'})",
        ],
    )
    report.render()
    # an order of magnitude of slack over the deadline for slow CI boxes;
    # unbudgeted, this script runs for minutes
    assert elapsed < deadline * 10 + 1.0, (
        f"deadline {deadline}s but analysis held the CPU for {elapsed:.1f}s"
    )


def test_depth_bomb_returns_quickly():
    bomb = "$(" * 400 + "echo hi" + ")" * 400
    report, elapsed = _timed(lambda: analyze(bomb))
    emit(
        "E-resilience (depth bomb)",
        [f"2x400 nesting: {elapsed * 1e3:.1f}ms, degraded={report.degraded}"],
    )
    assert report.degraded
    assert elapsed < 2.0
