"""E6: file-system composition contradictions (§4's rm-then-cat)."""

from conftest import emit

from repro.analysis import analyze

SNIPPETS = {
    "rm-then-cat": ('rm -fr "$1"\ncat "$1/config"\n', True),
    "rm-then-redirect": ("rm -f /etc/app.conf\nsort </etc/app.conf\n", True),
    "double-mkdir": ("mkdir /srv/app\nmkdir /srv/app\n", True),
    "mkdir-under-removed": ('rm -rf "$1"\nmkdir "$1/sub"\n', True),
    "file-as-dir": ("touch /tmp/t\ncat /tmp/t/config\n", True),
    "cat-then-rm": ('cat "$1/config"\nrm -f "$1/config"\n', False),
    "recreate-between": (
        'rm -fr "$1"\nmkdir -p "$1"\ntouch "$1/config"\ncat "$1/config"\n',
        False,
    ),
    "mkdir-p-twice": ("mkdir -p /srv/app\nmkdir -p /srv/app\n", False),
}


def test_rm_then_cat(benchmark):
    report = benchmark(analyze, SNIPPETS["rm-then-cat"][0], n_args=1)
    fails = report.by_code("always-fails")
    assert fails and fails[0].always


def test_composition_suite():
    rows = []
    for name, (source, expect_fail) in SNIPPETS.items():
        report = analyze(source, n_args=1)
        flagged = report.has("always-fails")
        assert flagged == expect_fail, (name, [d.render() for d in report.diagnostics])
        rows.append(f"{name:22} always-fails={'yes' if flagged else 'no ':3} "
                    f"(expected {'yes' if expect_fail else 'no'})")
    emit("E6 (fs composition contradictions)", rows)
