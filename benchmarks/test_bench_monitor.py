"""E10: runtime monitoring overhead and early-halt (§4).

Shape: monitoring costs a measurable constant factor over the bare
pipeline (the gradual-typing trade-off) but halts a violation before the
protected stage consumes it.
"""

import pytest
from conftest import emit

from repro.monitor import MonitorViolation, StreamMonitor, run_pipeline
from repro.rtypes import StreamType

ID_TYPE = StreamType.of("[0-9]+", "numeric-id")


def _extractor(lines):
    for line in lines:
        yield line.split(",", 1)[0]


def _consumer(lines):
    for line in lines:
        yield f"seen {line}"


def _records(count):
    return [f"{i},payload" for i in range(count)]


@pytest.mark.parametrize("count", [10_000, 100_000])
def test_unmonitored_throughput(benchmark, count):
    records = _records(count)
    result = benchmark(run_pipeline, [_extractor, _consumer], records)
    assert len(result) == count


@pytest.mark.parametrize("count", [10_000, 100_000])
def test_monitored_throughput(benchmark, count):
    records = _records(count)

    def run():
        monitor = StreamMonitor(ID_TYPE)
        return run_pipeline([_extractor, monitor.filter, _consumer], records)

    result = benchmark(run)
    assert len(result) == count


def test_overhead_factor_report():
    import time

    records = _records(50_000)
    t0 = time.perf_counter()
    run_pipeline([_extractor, _consumer], records)
    bare = time.perf_counter() - t0

    monitor = StreamMonitor(ID_TYPE)
    t0 = time.perf_counter()
    run_pipeline([_extractor, monitor.filter, _consumer], records)
    monitored = time.perf_counter() - t0

    factor = monitored / bare if bare else float("inf")
    emit(
        "E10 (monitoring overhead, 50k lines)",
        [
            f"bare      : {bare*1e3:8.1f} ms",
            f"monitored : {monitored*1e3:8.1f} ms  ({factor:.1f}x)",
        ],
    )
    # constant-factor: monitoring must not be asymptotically worse
    assert factor < 60


def test_violation_halts_before_consumption():
    records = _records(1000)
    records[500] = "BAD,payload"
    seen = []

    def counting_consumer(lines):
        for line in lines:
            seen.append(line)
            yield line

    monitor = StreamMonitor(ID_TYPE)
    with pytest.raises(MonitorViolation) as exc_info:
        run_pipeline([_extractor, monitor.filter, counting_consumer], records)
    assert exc_info.value.lineno == 501
    assert len(seen) == 500  # the protected stage never saw the bad line
    emit(
        "E10b (early halt)",
        [f"violation at line 501; protected stage consumed {len(seen)} lines"],
    )
