"""E-server: resident analysis server guards.

The just-in-time use case (shell startup hooks, editor integration)
cannot afford a cold CLI run per invocation: interpreter start-up,
spec-registry construction, and a full symbolic execution of every
file.  The resident server amortises all three.  Two properties anchor
it:

1. **Warm server beats cold CLI** — a batch request against a daemon
   whose result cache is already warm must cost less wall-clock than a
   fresh ``repro-analyze`` process analysing the same unchanged corpus
   from scratch.
2. **Zero symbolic execution warm** — the warm request is pure cache
   reads: the daemon's ``batch.cache.miss`` counter must not grow.
"""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from conftest import emit, emit_json

from repro.analysis import ResultCache
from repro.obs import TraceRecorder
from repro.server import AnalysisServer, ServerClient

REPO_ROOT = Path(__file__).resolve().parents[1]
CORPUS_SIZE = 24


def _script(index):
    # per-index paths defeat content dedup; loops + conditionals give
    # every file a non-trivial symbolic execution
    return (
        f'if [ "$#" -lt 1 ]; then echo "usage: $0 target" >&2; exit 1; fi\n'
        f"base=/srv/app{index}\n"
        f'for part in a b c "$@"; do\n'
        f'  if [ -f "$base/$part" ]; then\n'
        f'    rm "$base/$part"\n'
        f"  else\n"
        f'    mkdir -p "$base"\n'
        f"  fi\n"
        f"done\n"
        f"grep pattern{index} /etc/config{index} > /tmp/out{index}\n"
    )


@pytest.fixture
def corpus(tmp_path):
    scripts = tmp_path / "corpus"
    scripts.mkdir()
    for index in range(CORPUS_SIZE):
        (scripts / f"s{index:02d}.sh").write_text(_script(index))
    return scripts


@pytest.fixture
def daemon(tmp_path):
    server = AnalysisServer(
        socket_path=str(tmp_path / "served.sock"),
        jobs=1,
        cache=ResultCache(str(tmp_path / "server-cache")),
        recorder=TraceRecorder(),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not os.path.exists(server.socket_path):
        if time.monotonic() > deadline:
            pytest.fail("daemon socket never appeared")
        time.sleep(0.01)
    yield server
    server._initiate_shutdown()
    thread.join(timeout=5.0)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _cold_cli(corpus):
    """One full ``repro-analyze`` process: start-up + analysis, no cache."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "analyze", str(corpus), "--no-cache"],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )


def test_warm_server_beats_cold_cli(corpus, daemon):
    client = ServerClient(daemon.socket_path)
    cold_batch = client.batch([str(corpus)])  # warm the daemon's cache
    assert cold_batch.misses == CORPUS_SIZE

    completed, cli_seconds = _timed(lambda: _cold_cli(corpus))
    assert completed.returncode in (0, 1), completed.stderr

    misses_before = daemon.recorder.counter("batch.cache.miss")
    warm_batch, server_seconds = _timed(lambda: client.batch([str(corpus)]))

    emit(
        "E-server (cold CLI vs warm server)",
        [
            f"corpus: {CORPUS_SIZE} scripts",
            f"cold CLI:    {cli_seconds * 1e3:.1f}ms (process + analysis)",
            f"warm server: {server_seconds * 1e3:.1f}ms "
            f"({cli_seconds / max(server_seconds, 1e-9):.1f}x faster)",
            f"warm hits: {warm_batch.hits}/{CORPUS_SIZE}",
        ],
    )
    emit_json(
        "server",
        {
            "corpus_files": CORPUS_SIZE,
            "cold_cli_ms": round(cli_seconds * 1e3, 3),
            "warm_server_ms": round(server_seconds * 1e3, 3),
            "speedup_x": round(cli_seconds / max(server_seconds, 1e-9), 1),
            "warm_hits": warm_batch.hits,
            "warm_misses": warm_batch.misses,
        },
        section="warm_server_vs_cold_cli",
    )

    # the acceptance bar: zero symbolic execution on the warm request
    assert warm_batch.hits == CORPUS_SIZE and warm_batch.misses == 0
    assert daemon.recorder.counter("batch.cache.miss") == misses_before
    assert warm_batch.render() == cold_batch.render()
    assert server_seconds < cli_seconds, (
        f"warm server ({server_seconds * 1e3:.1f}ms) failed to beat "
        f"cold CLI ({cli_seconds * 1e3:.1f}ms)"
    )


def test_warm_server_latency_is_flat_in_corpus_cost(corpus, daemon):
    """A warm request is cache reads + one socket round-trip: its cost
    must stay far below the daemon's own cold analysis of the corpus."""
    client = ServerClient(daemon.socket_path)
    _, cold_seconds = _timed(lambda: client.batch([str(corpus)]))
    _, warm_seconds = _timed(lambda: client.batch([str(corpus)]))
    emit(
        "E-server (cold vs warm request, same daemon)",
        [
            f"cold request: {cold_seconds * 1e3:.1f}ms",
            f"warm request: {warm_seconds * 1e3:.1f}ms",
        ],
    )
    emit_json(
        "server",
        {
            "cold_request_ms": round(cold_seconds * 1e3, 3),
            "warm_request_ms": round(warm_seconds * 1e3, 3),
            "warm_vs_cold_ratio": round(warm_seconds / max(cold_seconds, 1e-9), 4),
        },
        section="warm_vs_cold_request_same_daemon",
    )
    assert warm_seconds < cold_seconds / 2


def test_request_telemetry_overhead(daemon):
    """The per-request envelope (request id + metrics snapshot) must not
    dominate a minimal round trip: pings with telemetry suppressed vs
    included bound the cost of request-scoped tracing itself."""
    client = ServerClient(daemon.socket_path)
    client.ping()  # connection + first-request warmup
    rounds = 50

    def ping_plain():
        for _ in range(rounds):
            client.request({"op": "ping", "telemetry": False})

    def ping_telemetry():
        for _ in range(rounds):
            client.request({"op": "ping"})

    _, plain = _timed(ping_plain)
    _, with_telemetry = _timed(ping_telemetry)
    per_request_us = (with_telemetry - plain) / rounds * 1e6
    emit(
        "E-ops (request-telemetry envelope overhead)",
        [
            f"{rounds} pings, telemetry off: {plain * 1e3:.1f}ms",
            f"{rounds} pings, telemetry on:  {with_telemetry * 1e3:.1f}ms",
            f"envelope cost: {per_request_us:.1f}us/request",
        ],
    )
    emit_json(
        "server",
        {
            "rounds": rounds,
            "ping_plain_ms": round(plain * 1e3, 3),
            "ping_telemetry_ms": round(with_telemetry * 1e3, 3),
            "envelope_us_per_request": round(per_request_us, 2),
        },
        section="request_telemetry_overhead",
    )
    # generous bound: the envelope must stay far below one analysis
    assert with_telemetry < plain * 10 + 0.5
