"""E11: curl-to-sh policy verification (§5 "Security").

Shape: clean installers ALLOW, greedy installers REJECT, and
argument-driven installers NEEDS_GUARD with generated runtime guards —
verified ahead of time, before a single line of the installer runs.
"""

from conftest import emit

from repro.monitor import Verdict, parse_policy, verify_script

INSTALLERS = [
    ("clean-opt", "mkdir -p /opt/sw\ntouch /opt/sw/done\n", 0, Verdict.ALLOW),
    ("clean-usrlocal", "mkdir -p /usr/local/sw\ntouch /usr/local/sw/bin\n", 0, Verdict.ALLOW),
    ("clean-tmp", "mkdir -p /tmp/build\nrm -rf /tmp/build\n", 0, Verdict.ALLOW),
    ("greedy-delete", "rm -rf /home/user/mine/old\n", 0, Verdict.REJECT),
    ("greedy-write", "touch /home/user/mine/marker\n", 0, Verdict.REJECT),
    ("greedy-read", "cat /home/user/mine/secrets\n", 0, Verdict.REJECT),
    ("greedy-ancestor", "rm -rf /home/user\n", 0, Verdict.REJECT),
    ("arg-driven", 'rm -rf "$1"/previous\nmkdir -p "$1"\n', 1, Verdict.NEEDS_GUARD),
    ("env-driven", 'rm -rf "$PREFIX"/cache\n', 0, Verdict.NEEDS_GUARD),
    ("sibling-ok", "touch /home/user/other/x\n", 0, Verdict.ALLOW),
    ("conditional-greedy", 'if [ -d /home/user/mine ]; then rm -rf /home/user/mine/t; fi\n', 0, Verdict.REJECT),
    ("deep-clean", "rm -rf /var/cache/sw\n", 0, Verdict.ALLOW),
]

POLICY = parse_policy(["--no-RW", "~/mine"])


def test_verdict_table():
    rows = []
    for name, script, n_args, expected in INSTALLERS:
        result = verify_script(script, POLICY, n_args=n_args)
        assert result.verdict is expected, (name, result.render())
        guard_note = f" (+{len(result.guards)} guards)" if result.guards else ""
        rows.append(f"{name:20} {result.verdict.name}{guard_note}")
    emit("E11 (verify --no-RW ~/mine over 12 installers)", rows)


def test_guards_generated_for_symbolic():
    result = verify_script('rm -rf "$1"/previous\n', POLICY, n_args=1)
    assert result.verdict is Verdict.NEEDS_GUARD
    assert result.guards
    assert "abort" in str(result.guards[0])


def test_verify_cost(benchmark):
    script = 'rm -rf "$1"/previous\nmkdir -p "$1"\ntouch "$1/done"\n'
    result = benchmark(verify_script, script, POLICY, 1)
    assert result.verdict is Verdict.NEEDS_GUARD
