"""E-obs: the disabled (no-op) recorder must be ~free on hot paths.

The guard works without an uninstrumented build to compare against: we
measure (a) the wall time of the E9 fixpoint workload under the default
NullRecorder, (b) the per-call cost of a NullRecorder operation, and
(c) how many recorder operations the workload performs (counted with a
TraceRecorder, an over-estimate of the disabled path, which guards
span/histogram work behind ``recorder.enabled``).  The telemetry tax is
then bounded by calls x per-call cost, and must stay under 5% of the
workload — the ISSUE 1 acceptance criterion.
"""

import time

from conftest import emit, emit_json

from repro.obs import TraceRecorder, get_recorder, use_recorder
from repro.rtypes import StreamType, filter_sig, identity, ring_invariant


def _ring(length):
    stages = [("cat0", identity("cat"))]
    stages += [
        (f"s{i}", filter_sig("[a-z]*", f"grep{i}")) for i in range(1, length)
    ]
    return stages


def _workload():
    result = ring_invariant(_ring(8), seed=StreamType.of("[a-z]+"))
    assert result.converged
    return result


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_null_recorder_overhead_under_5_percent():
    assert not get_recorder().enabled, "benchmark needs the no-op default"
    baseline = _best_of(_workload)

    # per-call cost of a disabled-recorder operation
    recorder = get_recorder()
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        recorder.count("bench.noop")
    per_call = (time.perf_counter() - start) / calls

    # recorder operations the workload performs when fully enabled
    # (counter increments + histogram observations + 2 clock reads/span)
    with use_recorder(TraceRecorder()) as tracer:
        _workload()
    operations = (
        sum(tracer.counters.values())
        + sum(h.count for h in tracer.histograms.values())
        + 2 * tracer.span_count
    )

    tax = operations * per_call
    emit(
        "E-obs (disabled-telemetry overhead)",
        [
            f"workload best-of-5: {baseline * 1e3:.2f}ms",
            f"recorder ops when enabled: {operations}",
            f"no-op call cost: {per_call * 1e9:.1f}ns",
            f"bounded tax: {tax * 1e3:.4f}ms ({100 * tax / baseline:.3f}% of workload)",
        ],
    )
    emit_json(
        "obs",
        {
            "workload_best_of_5_ms": round(baseline * 1e3, 4),
            "recorder_ops_when_enabled": operations,
            "noop_call_ns": round(per_call * 1e9, 2),
            "bounded_tax_ms": round(tax * 1e3, 5),
            "overhead_pct": round(100 * tax / baseline, 4),
            "guard_pct": 5.0,
        },
        section="disabled_telemetry_overhead",
    )
    assert tax < 0.05 * baseline, (
        f"telemetry tax {tax * 1e3:.3f}ms exceeds 5% of {baseline * 1e3:.3f}ms"
    )


def test_enabled_recorder_records_the_workload():
    with use_recorder(TraceRecorder()) as tracer:
        _workload()
    assert tracer.counter("rlang.determinise_calls") > 0
    assert tracer.histogram("rlang.dfa_states").count > 0


def test_fixpoint_with_tracing_cost(benchmark):
    """Absolute cost of running E9 with full tracing enabled (for the
    instrument panel; not part of the 5% guard)."""
    stages = _ring(8)
    seed = StreamType.of("[a-z]+")

    def run():
        with use_recorder(TraceRecorder()):
            return ring_invariant(stages, seed=seed)

    result = benchmark.pedantic(run, rounds=3)
    assert result.converged
