"""E15: cross-platform incompatibility warnings (§5 "Correctness").

Shape: GNU-only invocations are flagged for macOS targets (and vice
versa); portable scripts are clean on both.
"""

from conftest import emit

from repro.analysis import analyze

SCRIPTS = [
    ("sed-inplace", "sed -i s/a/b/ f.txt\n", {"macos"}),
    ("readlink-f", "readlink -f /x\n", {"macos"}),
    ("date-gnu", "date -d yesterday\n", {"macos"}),
    ("date-bsd", "date -v -1d\n", {"linux"}),
    ("sort-g", "seq 3 | sort -g\n", {"macos"}),
    ("grep-P", "grep -P 'a(?=b)' f\n", {"macos"}),
    ("ls-color", "ls --color f\n", {"macos"}),
    ("ls-G-bsd", "ls -G\n", {"linux"}),
    ("portable-pipeline", "grep x f | sort | head -n 3\n", set()),
    ("portable-files", "mkdir -p /tmp/x\ncp a /tmp/x\nrm -f /tmp/x/a\n", set()),
]


def test_platform_matrix():
    rows = []
    for name, source, expected_broken_on in SCRIPTS:
        broken_on = set()
        for target in ("linux", "macos"):
            report = analyze(source, platform_targets=[target])
            if report.has("platform-flag"):
                broken_on.add(target)
        assert broken_on == expected_broken_on, (name, broken_on)
        status = ",".join(sorted(broken_on)) or "portable"
        rows.append(f"{name:20} breaks on: {status}")
    emit("E15 (platform portability matrix)", rows)


def test_platform_check_cost(benchmark):
    report = benchmark(
        analyze,
        "sed -i s/a/b/ f\nreadlink -f /x\n",
        platform_targets=["linux", "macos"],
    )
    assert report.has("platform-flag")
