"""E9: fixpoint invariant inference on circular dataflow (§4).

Shape: iterations grow roughly with the cycle length (never explode),
and the computed invariant is stable under one more application.
"""

from conftest import emit

from repro.rtypes import (
    StreamType,
    filter_sig,
    identity,
    ring_invariant,
)


def _ring(length):
    stages = [("cat0", identity("cat"))]
    stages += [
        (f"s{i}", filter_sig("[a-z]*", f"grep{i}")) for i in range(1, length)
    ]
    return stages


def test_convergence_scaling():
    rows = []
    for length in [2, 4, 8, 16, 32]:
        result = ring_invariant(_ring(length), seed=StreamType.of("[a-z]+"))
        assert result.converged
        rows.append(
            f"ring length {length:3}: converged in {result.iterations} iterations"
        )
        # iterations stay near-constant: information flows whole-ring per pass
        assert result.iterations <= length + 3
    emit("E9 (fixpoint convergence)", rows)


def test_invariant_is_fixed_point():
    result = ring_invariant(
        [("cat", identity("cat")), ("grep", filter_sig("[a-z]*x[a-z]*", "grep x"))],
        seed=StreamType.of("[a-z]+"),
    )
    assert result.converged
    invariant = result.type_of("grep")
    # applying the filter once more must not change the language
    from repro.rtypes import apply_signature, Signature

    again = apply_signature(filter_sig("[a-z]*x[a-z]*", "grep x"), invariant)
    assert again == invariant


def test_non_convergent_ring_widens():
    from repro.rtypes import prefix_sig

    result = ring_invariant(
        [("cat", identity("cat")), ("sed", prefix_sig(">", "sed"))],
        seed=StreamType.of("[a-z]+"),
        max_iterations=8,
    )
    assert not result.converged
    assert result.widened
    emit(
        "E9b (divergent ring)",
        [f"widened stages: {result.widened} after {result.iterations} iterations"],
    )


def test_ring8_cost(benchmark):
    stages = _ring(8)
    seed = StreamType.of("[a-z]+")
    result = benchmark(ring_invariant, stages, seed)
    assert result.converged


def test_ring32_cost(benchmark):
    stages = _ring(32)
    seed = StreamType.of("[a-z]+")
    result = benchmark.pedantic(ring_invariant, args=(stages, seed), rounds=3)
    assert result.converged
