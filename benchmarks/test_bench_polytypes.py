"""E8: polymorphic regular types vs simple types (§4 "Richer types").

Shape: the hex pipeline — and a family like it — verifies with
polymorphic signatures and FAILS with information-losing simple
signatures; crossover is exactly at stages whose output embeds their
input.
"""

from conftest import emit

from repro.rtypes import (
    StreamType,
    apply_signature,
    check_pipeline,
    identity,
    prefix_sig,
    simple,
    suffix_sig,
)

#: (name, pipeline argvs, simple signature for the middle stage)
CASES = [
    (
        "hex (paper §4)",
        [["grep", "-oE", "[0-9a-f]+"], ["sed", "s/^/0x/"], ["sort", "-g"]],
        simple(".*", "0x.*", label="sed (simple)"),
    ),
    (
        "decimal ids",
        [["grep", "-oE", "[0-9]+"], ["sed", "s/^/+/"], ["sort", "-g"]],
        simple(".*", "\\+.*", label="sed (simple)"),
    ),
    (
        "numbered listing",
        [["grep", "-oE", "[0-9]+"], ["sed", "s/$/ ok/"], ["sort", "-n"]],
        simple(".*", ".* ok", label="sed (simple)"),
    ),
]


def test_poly_vs_simple_table():
    rows = []
    for name, argvs, simple_sig in CASES:
        poly = check_pipeline(argvs)
        simple_result = check_pipeline(
            argvs, signatures=[None, simple_sig, None]
        )
        assert not poly.errors(), (name, [i.message for i in poly.issues])
        assert simple_result.errors(), name
        rows.append(
            f"{name:22} polymorphic: PASS   simple: FAIL "
            f"({simple_result.errors()[0].message[:48]}...)"
        )
    emit("E8 (polymorphic vs simple regular types)", rows)


def test_polymorphic_application_cost(benchmark):
    sig = prefix_sig("0x", "sed")
    input_type = StreamType.of("[0-9a-f]+")
    out = benchmark(apply_signature, sig, input_type)
    assert out.admits("0xff")


def test_bounded_identity_cost(benchmark):
    sig = identity("sort -g", bound="0x[0-9a-f]+.*")
    input_type = StreamType.of("0x[0-9a-f]+")
    benchmark(apply_signature, sig, input_type)


def test_pipeline_end_to_end_cost(benchmark):
    argvs = [["grep", "-oE", "[0-9a-f]+"], ["sed", "s/^/0x/"], ["sort", "-g"]]
    result = benchmark(check_pipeline, argvs)
    assert not result.issues
