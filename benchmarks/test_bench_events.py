"""Event-log fork scaling: forking must not copy the trace.

The engine forks the symbolic state (and with it the fs event log) at
every branch point, so a naive list-copying log makes heavy scripts
O(events x forks).  The segment-chain log forks in O(1): this benchmark
guards the property by timing per-fork cost at two log sizes two orders
of magnitude apart — with copying the ratio tracks the size gap (~1000x),
with sharing it stays flat.
"""

import time

from conftest import emit

from repro.fs import EventLog, FsOp

SMALL = 100
LARGE = 100_000
FORKS = 400


def _filled_log(size: int) -> EventLog:
    log = EventLog()
    for idx in range(size):
        log.record(FsOp.WRITE, f"/tmp/f{idx}", idx)
    return log


def _per_fork_seconds(log: EventLog, forks: int) -> float:
    start = time.perf_counter()
    for _ in range(forks):
        log.fork()
    return (time.perf_counter() - start) / forks


def test_fork_is_size_independent():
    small = _per_fork_seconds(_filled_log(SMALL), FORKS)
    large = _per_fork_seconds(_filled_log(LARGE), FORKS)
    ratio = large / small if small else 1.0
    emit(
        "E-log (event-log fork scaling)",
        [
            f"{SMALL:>7} events: {small * 1e6:8.2f} us/fork",
            f"{LARGE:>7} events: {large * 1e6:8.2f} us/fork",
            f"ratio: {ratio:.1f}x (copying would be ~{LARGE // SMALL}x)",
        ],
    )
    # generous bound: O(1) fork keeps the ratio near 1 even on noisy
    # machines; a per-event copy would push it to ~1000
    assert ratio < 50, f"fork cost scales with log size ({ratio:.1f}x)"


def test_fork_preserves_content():
    log = _filled_log(SMALL)
    child = log.fork()
    child.record(FsOp.READ, "/tmp/extra", None)
    assert len(log) == SMALL
    assert len(child) == SMALL + 1
    assert [e.path for e in child][-1] == "/tmp/extra"
