"""E7: specification mining accuracy and cost (Fig. 4).

Shape: mined specs agree with the hand-written corpus on ≥90% of the
probe matrix per command (100% for rm), and real-binary probing agrees
with model probing wherever binaries exist.
"""

import pytest
from conftest import emit

from repro.miner import (
    ModelProber,
    SubprocessProber,
    compare_specs,
    extract_syntax,
    generate_invocations,
    mine_command,
    probe_all,
)
from repro.specs import default_registry

COMMANDS = ["rm", "mkdir", "touch", "cat", "ln", "cp", "mv"]


def test_mining_agreement_table():
    rows = []
    total_agree = total_all = 0
    for name in COMMANDS:
        spec = mine_command(name)
        reference = default_registry().get(name)
        combos = list(extract_syntax(name).flag_combinations(max_flags=2))
        report = compare_specs(spec, reference, combos)
        if report.total == 0:
            rows.append(f"{name:8} (no comparable predictions)")
            continue
        total_agree += report.agree
        total_all += report.total
        rows.append(
            f"{name:8} agreement {report.agree:3}/{report.total:<3} "
            f"({report.rate:.0%})"
        )
    assert total_all > 0
    overall = total_agree / total_all
    rows.append(f"{'OVERALL':8} {total_agree}/{total_all} ({overall:.0%})")
    assert overall >= 0.9
    emit("E7 (mined vs hand-written specs)", rows)


def test_real_binary_agreement():
    prober = SubprocessProber()
    rows = []
    for name in ["rm", "mkdir", "touch"]:
        if not prober.available(name):
            pytest.skip(f"no {name} binary")
        spec = mine_command(name, prober=prober)
        reference = default_registry().get(name)
        combos = list(extract_syntax(name).flag_combinations(max_flags=2))
        report = compare_specs(spec, reference, combos)
        rows.append(f"{name:8} real-binary agreement {report.rate:.0%}")
        assert report.rate >= 0.9, report.disagreements
    emit("E7b (real-binary probing)", rows)


def test_mine_rm_cost_model(benchmark):
    benchmark(mine_command, "rm")


def test_probe_matrix_cost(benchmark):
    syntax = extract_syntax("rm")
    invocations = generate_invocations(syntax)

    def probe():
        return probe_all(invocations, prober=ModelProber())

    traces = benchmark(probe)
    assert len(traces) == len(invocations)


def test_mine_rm_cost_real_binary(benchmark):
    prober = SubprocessProber()
    if not prober.available("rm"):
        pytest.skip("no rm binary")
    benchmark.pedantic(mine_command, args=("rm",), kwargs={"prober": prober}, rounds=3)
