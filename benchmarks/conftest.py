"""Shared fixtures for the experiment benchmarks (see DESIGN.md §4)."""

import json
import os

import pytest

#: where BENCH_*.json land: the repo root by default, so the perf
#: trajectory is versioned alongside the code that produced it
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FIG1 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
# ... more lines ...
rm -fr "$STEAMROOT"/*
"""

FIG2 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
  rm -fr "$STEAMROOT"/*
else
  echo "Bad script path: $0"; exit 1
fi
"""

FIG3 = FIG2.replace('!= "/"', '= "/"')

FIG5 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"""


@pytest.fixture(scope="session")
def figures():
    return {"fig1": FIG1, "fig2": FIG2, "fig3": FIG3, "fig5": FIG5}


def emit(title, rows):
    """Print an experiment's result rows (shown with `pytest -s`)."""
    print(f"\n### {title}")
    for row in rows:
        print("   " + row)


def emit_json(name, payload, section=None):
    """Merge machine-readable benchmark results into ``BENCH_<name>.json``.

    Human-readable :func:`emit` rows vanish with the terminal; these
    files make the perf trajectory durable — each benchmark run
    overwrites its own section, and the diffs land in version control.
    ``$REPRO_BENCH_DIR`` redirects the output (CI artifacts, scratch
    runs).  Returns the path written.
    """
    directory = os.environ.get("REPRO_BENCH_DIR", REPO_ROOT)
    path = os.path.join(directory, f"BENCH_{name}.json")
    document = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            document = {}
    if section is not None:
        document[section] = payload
    else:
        document.update(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
