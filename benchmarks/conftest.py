"""Shared fixtures for the experiment benchmarks (see DESIGN.md §4)."""

import pytest

FIG1 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
# ... more lines ...
rm -fr "$STEAMROOT"/*
"""

FIG2 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
  rm -fr "$STEAMROOT"/*
else
  echo "Bad script path: $0"; exit 1
fi
"""

FIG3 = FIG2.replace('!= "/"', '= "/"')

FIG5 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"""


@pytest.fixture(scope="session")
def figures():
    return {"fig1": FIG1, "fig2": FIG2, "fig3": FIG3, "fig5": FIG5}


def emit(title, rows):
    """Print an experiment's result rows (shown with `pytest -s`)."""
    print(f"\n### {title}")
    for row in rows:
        print("   " + row)
