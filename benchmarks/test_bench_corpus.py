"""E12: precision/recall of semantic analysis vs the syntactic baseline
over the labelled corpus (§2's comparison, quantified).

Shape: the semantic analyzer strictly dominates — higher precision AND
higher recall; the baseline's false positives are exactly the Fig. 2
class and its false negatives the Fig. 3/5 class.
"""

from conftest import emit

from repro.analysis import analyze
from repro.analysis.corpus import corpus
from repro.lint import lint


def _semantic_predicts_buggy(report):
    return bool(
        report.errors()
        or [d for d in report.warnings() if d.source in ("semantic", "types")]
    )


def _baseline_predicts_buggy(source):
    # the baseline's danger-relevant rule class (SC2115: rm on $var paths)
    return any(d.code == "SC2115" for d in lint(source))


def _score(predictions):
    tp = sum(1 for pred, truth in predictions if pred and truth)
    fp = sum(1 for pred, truth in predictions if pred and not truth)
    fn = sum(1 for pred, truth in predictions if not pred and truth)
    tn = sum(1 for pred, truth in predictions if not pred and not truth)
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return tp, fp, fn, tn, precision, recall


def test_precision_recall_table():
    semantic, baseline = [], []
    for script in corpus():
        report = analyze(script.source, n_args=script.n_args)
        semantic.append((_semantic_predicts_buggy(report), script.buggy))
        baseline.append((_baseline_predicts_buggy(script.source), script.buggy))

    s_tp, s_fp, s_fn, s_tn, s_precision, s_recall = _score(semantic)
    b_tp, b_fp, b_fn, b_tn, b_precision, b_recall = _score(baseline)

    emit(
        f"E12 (labelled corpus, {len(corpus())} scripts)",
        [
            f"{'tool':10} {'TP':>3} {'FP':>3} {'FN':>3} {'TN':>3} "
            f"{'precision':>10} {'recall':>7}",
            f"{'semantic':10} {s_tp:>3} {s_fp:>3} {s_fn:>3} {s_tn:>3} "
            f"{s_precision:>10.2f} {s_recall:>7.2f}",
            f"{'baseline':10} {b_tp:>3} {b_fp:>3} {b_fn:>3} {b_tn:>3} "
            f"{b_precision:>10.2f} {b_recall:>7.2f}",
        ],
    )

    # the paper's dominance shape
    assert s_precision >= b_precision
    assert s_recall > b_recall
    assert s_recall >= 0.9
    assert b_recall <= 0.5  # syntactic linting misses the semantic classes


def test_baseline_fp_is_fig2_class():
    """The baseline's false positives include the guarded-safe family."""
    from repro.analysis.corpus import safe_scripts

    fp_names = [
        s.name for s in safe_scripts() if _baseline_predicts_buggy(s.source)
    ]
    assert "steam-guarded" in fp_names


def test_corpus_analysis_cost(benchmark):
    scripts = corpus()[:10]

    def run():
        return [analyze(s.source, n_args=s.n_args) for s in scripts]

    benchmark(run)


def test_corpus_baseline_cost(benchmark):
    scripts = corpus()[:10]

    def run():
        return [lint(s.source) for s in scripts]

    benchmark(run)
