"""E-optimize: plan construction cost and amortisation guards.

Building an optimization plan is the most expensive query in the
repo: a dependence analysis (symbolic execution), a classification
pass, and one extra race-detector run per candidate rewrite.  Three
properties anchor the subsystem:

1. **Plans amortise** — a warm ``ResultCache`` retrieval of a plan must
   cost far less than building it cold.
2. **Zero symbolic execution warm** — warm retrieval is pure cache
   reads: the ``symex.runs`` counter must not grow at all.
3. **The daemon serves plans warm** — a resident server answering an
   ``optimize`` request from cache must beat the cold in-process build.
"""

import os
import threading
import time

import pytest
from conftest import emit, emit_json

from repro.analysis import ResultCache
from repro.analysis.batch import BatchConfig
from repro.analysis.optimize import (
    OptimizePlan,
    build_plan,
    plan_cache_key,
    run_optimize_batch,
)
from repro.obs import TraceRecorder, use_recorder
from repro.server import AnalysisServer, ServerClient

CORPUS_SIZE = 6


def _script(index):
    # a fan-out the advisor must work for: three independent greps, an
    # aggregation pipeline, plus per-index paths to defeat dedup
    return (
        f"mkdir -p /srv/out{index}\n"
        f"grep ERR{index} /var/log/web{index}.log > /srv/out{index}/web.txt\n"
        f"grep ERR{index} /var/log/db{index}.log > /srv/out{index}/db.txt\n"
        f"grep ERR{index} /var/log/q{index}.log > /srv/out{index}/q.txt\n"
        f"cat /srv/out{index}/web.txt /srv/out{index}/db.txt /srv/out{index}/q.txt"
        f" | sort | uniq -c > /srv/out{index}/summary.txt\n"
    )


@pytest.fixture
def corpus(tmp_path):
    scripts = tmp_path / "corpus"
    scripts.mkdir()
    for index in range(CORPUS_SIZE):
        (scripts / f"s{index:02d}.sh").write_text(_script(index))
    return scripts


@pytest.fixture
def daemon(tmp_path):
    server = AnalysisServer(
        socket_path=str(tmp_path / "optimize.sock"),
        jobs=1,
        cache=ResultCache(str(tmp_path / "server-cache")),
        recorder=TraceRecorder(),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not os.path.exists(server.socket_path):
        if time.monotonic() > deadline:
            pytest.fail("daemon socket never appeared")
        time.sleep(0.01)
    yield server
    server._initiate_shutdown()
    thread.join(timeout=5.0)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_warm_plan_cache_runs_zero_symex(corpus, tmp_path):
    cache = ResultCache(str(tmp_path / "plan-cache"))

    cold_rec = TraceRecorder()
    with use_recorder(cold_rec):
        cold, cold_seconds = _timed(
            lambda: run_optimize_batch([str(corpus)], cache=cache, jobs=1)
        )
    assert cold.misses == CORPUS_SIZE and not cold.degraded

    warm_rec = TraceRecorder()
    with use_recorder(warm_rec):
        warm, warm_seconds = _timed(
            lambda: run_optimize_batch([str(corpus)], cache=cache, jobs=1)
        )

    emit(
        "E-optimize (cold build vs warm plan cache)",
        [
            f"corpus: {CORPUS_SIZE} scripts",
            f"cold build: {cold_seconds * 1e3:.1f}ms",
            f"warm cache: {warm_seconds * 1e3:.1f}ms "
            f"({cold_seconds / max(warm_seconds, 1e-9):.1f}x faster)",
            f"warm symex runs: {warm_rec.counter('symex.runs')}",
        ],
    )
    emit_json(
        "optimize",
        {
            "corpus_files": CORPUS_SIZE,
            "cold_build_ms": round(cold_seconds * 1e3, 3),
            "warm_cache_ms": round(warm_seconds * 1e3, 3),
            "speedup_x": round(cold_seconds / max(warm_seconds, 1e-9), 1),
            "cold_symex_runs": cold_rec.counter("symex.runs"),
            "warm_symex_runs": warm_rec.counter("symex.runs"),
        },
        section="cold_vs_warm_cache",
    )

    # the acceptance bar: warm plan retrieval does zero symbolic execution
    assert warm.hits == CORPUS_SIZE and warm.misses == 0
    assert warm_rec.counter("symex.runs") == 0
    assert cold_rec.counter("symex.runs") > 0
    assert warm.render() == cold.render()
    assert warm_seconds < cold_seconds


def test_warm_server_plan_beats_cold_inline(corpus, daemon):
    client = ServerClient(daemon.socket_path)
    source = (corpus / "s00.sh").read_text()

    served_cold = client.optimize_source(source)  # warms the daemon cache
    inline, inline_seconds = _timed(lambda: build_plan(source).to_dict())

    symex_before = daemon.recorder.counter("symex.runs")
    served_warm, server_seconds = _timed(lambda: client.optimize_source(source))

    emit(
        "E-optimize (cold inline vs warm server)",
        [
            f"cold inline build: {inline_seconds * 1e3:.1f}ms",
            f"warm server plan:  {server_seconds * 1e3:.1f}ms "
            f"({inline_seconds / max(server_seconds, 1e-9):.1f}x faster)",
            f"cache hits: {daemon.recorder.counter('optimize.cache.hit')}",
        ],
    )
    emit_json(
        "optimize",
        {
            "cold_inline_ms": round(inline_seconds * 1e3, 3),
            "warm_server_ms": round(server_seconds * 1e3, 3),
            "speedup_x": round(inline_seconds / max(server_seconds, 1e-9), 1),
            "server_cache_hits": daemon.recorder.counter("optimize.cache.hit"),
        },
        section="cold_inline_vs_warm_server",
    )

    # byte-identical plans across inline, cold-served, and warm-served
    assert served_cold == inline == served_warm
    # warm service did no symbolic execution and hit the plan cache
    assert daemon.recorder.counter("symex.runs") == symex_before
    assert daemon.recorder.counter("optimize.cache.hit") >= 1
    assert server_seconds < inline_seconds


def test_plan_cache_key_tracks_schema(tmp_path):
    """Plan cache entries are salted with the plan schema version: a
    version bump must invalidate every stored plan, never deserialize
    stale shapes."""
    cache = ResultCache(str(tmp_path / "plan-cache"))
    source = _script(0)
    config = BatchConfig()
    plan = build_plan(source)
    key = plan_cache_key(source, config)
    cache.put(key, plan.to_dict())

    hit = cache.get(key, schema=OptimizePlan.SCHEMA_VERSION)
    assert hit is not None
    assert OptimizePlan.from_dict(hit).to_dict() == plan.to_dict()
    assert cache.get(key, schema=OptimizePlan.SCHEMA_VERSION + 1) is None
