"""E13: analysis latency vs script size, and the path-merging ablation.

Shape (paper §4: "avoiding exponential explosion"): with state merging
the explored path count and latency grow near-linearly in script size;
with merging disabled (the ablation) branchy scripts grow much faster.
"""

import time

import pytest
from conftest import emit

from repro.checkers import default_checkers
from repro.symex import Engine


def straightline_script(n_lines):
    lines = []
    for i in range(n_lines // 2):
        lines.append(f"V{i}=value{i}")
        lines.append(f'echo "$V{i}" >/tmp/out{i}.txt')
    return "\n".join(lines) + "\n"


def branchy_script(n_branches):
    """Branches whose effects converge at the join (the common shape of
    feature-probing scripts): without merging each contributes a 2x
    state blow-up; with merging the join collapses them."""
    lines = []
    for i in range(n_branches):
        lines.append(f"if [ -f /flag{i} ]; then echo probe{i}; fi")
    lines.append("echo done")
    return "\n".join(lines) + "\n"


def _run(source, prune):
    engine = Engine(checkers=default_checkers(), prune=prune)
    result = engine.run_script(source)
    return result


@pytest.mark.parametrize("n_lines", [20, 80, 200])
def test_straightline_scaling(benchmark, n_lines):
    source = straightline_script(n_lines)
    engine = Engine(checkers=default_checkers())
    benchmark.pedantic(engine.run_script, args=(source,), rounds=3)


def test_latency_growth_table():
    rows = []
    times = []
    for n_lines in [10, 40, 160, 400]:
        source = straightline_script(n_lines)
        start = time.perf_counter()
        result = _run(source, prune=True)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        rows.append(
            f"{n_lines:4} lines: {elapsed*1e3:8.1f} ms, "
            f"{result.paths_explored} path steps"
        )
    emit("E13 (latency vs script size, straight-line)", rows)
    # near-linear: 40x the lines costs well under 40^2/10 the time
    assert times[-1] < times[0] * 400


def test_pruning_ablation():
    rows = []
    for n_branches in [4, 6, 8, 10]:
        source = branchy_script(n_branches)
        merged = _run(source, prune=True)
        unmerged = _run(source, prune=False)
        rows.append(
            f"{n_branches:2} branches: merged={len(merged.states):4} states "
            f"unmerged={len(unmerged.states):4} states "
            f"(merges performed: {merged.paths_merged})"
        )
        assert len(merged.states) <= len(unmerged.states)
    # the ablation shows the blow-up merging prevents
    final_merged = _run(branchy_script(10), prune=True)
    final_unmerged = _run(branchy_script(10), prune=False)
    assert len(final_unmerged.states) >= 4 * len(final_merged.states)
    emit("E13b (path-merging ablation)", rows)


def test_branchy_with_pruning_cost(benchmark):
    source = branchy_script(8)
    engine = Engine(checkers=default_checkers(), prune=True)
    benchmark.pedantic(engine.run_script, args=(source,), rounds=3)


def test_branchy_without_pruning_cost(benchmark):
    source = branchy_script(8)
    engine = Engine(checkers=default_checkers(), prune=False)
    benchmark.pedantic(engine.run_script, args=(source,), rounds=3)
